//! Keyed counter-based RNG: the determinism contract v2.
//!
//! The simulator's stochastic choices (adaptive tie-breaks, injection
//! tie-breaks) historically came from one serial ChaCha8 stream advanced
//! once per visited ready non-ejecting VC head in arena order — the
//! *draw-stream contract* (DESIGN.md §7). That contract makes results
//! deterministic but couples every draw to the global visit schedule:
//! parked heads must still consume a draw (capping the wake scheduler's
//! win), and shard planners must replay the entire global census just to
//! stay at the right stream position.
//!
//! [`RngMode::Keyed`] replaces the stream with a pure function: each
//! draw is [`mix`]`(seed, cycle, site, id)`, where `site` names the draw
//! class ([`DrawSite`]) and `id` is the draw's dense identity within the
//! site (arena slot index for Phase A, (node, class) queue index for
//! injection). Draws are then order- and position-independent:
//!
//! * parked heads draw **nothing** — skipping a head skips its draw,
//! * shard planners compute draws **only for owned slots** — no RNG
//!   clone, no census replay, no stream-equality asserts,
//! * shard-count invariance holds *by construction*: the sample a head
//!   receives depends only on its identity and the cycle, never on who
//!   computed it or in what order.
//!
//! `Stream` stays the default: every paper figure and every existing
//! golden pin was recorded under the serial stream, and keyed mode —
//! while equally well-distributed — produces a *different* (equally
//! valid) random sequence, so the two modes are separate pin families.
//!
//! The mixer is a dependency-free splitmix64-style permutation chain
//! (Steele et al., "Fast splittable pseudorandom number generators",
//! OOPSLA 2014): each key word is absorbed through one round of the
//! 64-bit finalizer, giving full avalanche between any two distinct
//! `(seed, cycle, site, id)` tuples. It is a statistical-quality mixer,
//! not a cryptographic one — exactly the bar ChaCha8 was clearing.

/// Which serial draw stream / keyed draw family a sample belongs to.
///
/// In `Stream` mode all sites share the single serial stream (the site
/// only labels the draw-volume counters); in `Keyed` mode the site is
/// part of the key, so e.g. Phase A slot 7 and injection queue 7 can
/// never receive the same sample by accident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum DrawSite {
    /// Phase A routing tie-break for an in-network VC head
    /// (`id` = link-major arena slot index).
    PhaseA = 0,
    /// Injection routing tie-break for a source-queue head
    /// (`id` = (node, class) queue index).
    Injection = 1,
    /// Deadlock-freedom mechanism draws (`id` chosen by the mechanism,
    /// e.g. a router or epoch number). Reserved: no built-in mechanism
    /// draws randomness today — the paper's drain directions come from
    /// the precomputed Eulerian circuit — but the site keeps mechanism
    /// randomness off the routing streams the day one does.
    Mechanism = 2,
}

/// Number of [`DrawSite`] variants (sizes the per-site draw counters).
pub const NUM_DRAW_SITES: usize = 3;

impl DrawSite {
    /// Stable label used by the `drain_rng_draws_total{site}` metrics.
    pub fn label(self) -> &'static str {
        match self {
            DrawSite::PhaseA => "phase_a",
            DrawSite::Injection => "injection",
            DrawSite::Mechanism => "mechanism",
        }
    }

    /// Counter-array index of this site.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// All sites, in counter-array order.
    pub const ALL: [DrawSite; NUM_DRAW_SITES] =
        [DrawSite::PhaseA, DrawSite::Injection, DrawSite::Mechanism];
}

/// How the simulator core produces its stochastic tie-break samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RngMode {
    /// Determinism contract v1: one serial ChaCha8 stream, advanced once
    /// per visited ready non-ejecting head in arena order (parked heads
    /// included) and once per non-empty injection queue head. The
    /// default — all paper figures and pre-existing golden pins were
    /// recorded under it.
    #[default]
    Stream,
    /// Determinism contract v2: each draw is the pure function
    /// [`mix`]`(seed, cycle, site, id)`. Parked heads draw nothing and
    /// shard planners draw only for owned slots; shard-count, wake
    /// on/off and fast-forward invariance hold by construction. Its own
    /// golden-pin family (digests differ from `Stream` — a different,
    /// equally valid random sequence).
    Keyed,
}

impl RngMode {
    /// Stable label used by the `drain_rng_draws_total{mode}` metrics
    /// and the `DRAIN_RNG` environment knob.
    pub fn label(self) -> &'static str {
        match self {
            RngMode::Stream => "stream",
            RngMode::Keyed => "keyed",
        }
    }

    /// Parses the `DRAIN_RNG` spelling (`"stream"` / `"keyed"`).
    pub fn parse(s: &str) -> Option<RngMode> {
        match s {
            "stream" => Some(RngMode::Stream),
            "keyed" => Some(RngMode::Keyed),
            _ => None,
        }
    }
}

/// One round of the splitmix64 output permutation: a bijection on `u64`
/// with full avalanche (every input bit flips each output bit with
/// probability ~1/2).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The keyed draw: a pure function of `(seed, cycle, site, id)`.
///
/// Each key word is absorbed through one `splitmix64` round, so the
/// chain is a composition of bijections seeded by the full key — two
/// tuples differing in any word produce unrelated outputs. Cost: four
/// rounds of shift/xor/multiply, comparable to one ChaCha8 block
/// amortised word, with no stream state to carry, clone or replay.
///
/// # Examples
///
/// ```
/// use drain_netsim::rng::{mix, DrawSite};
///
/// // Pure: same key, same sample — in any order, on any thread.
/// let a = mix(17, 1000, DrawSite::PhaseA, 42);
/// assert_eq!(a, mix(17, 1000, DrawSite::PhaseA, 42));
/// // Any key-word change decorrelates the sample.
/// assert_ne!(a, mix(17, 1000, DrawSite::PhaseA, 43));
/// assert_ne!(a, mix(17, 1001, DrawSite::PhaseA, 42));
/// assert_ne!(a, mix(17, 1000, DrawSite::Injection, 42));
/// ```
#[inline]
pub fn mix(seed: u64, cycle: u64, site: DrawSite, id: u64) -> u64 {
    let h = splitmix64(seed);
    let h = splitmix64(h ^ cycle);
    let h = splitmix64(h ^ ((site as u64) << 56) ^ id);
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_round_trip() {
        for mode in [RngMode::Stream, RngMode::Keyed] {
            assert_eq!(RngMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(RngMode::parse("chacha"), None);
        assert_eq!(RngMode::default(), RngMode::Stream);
    }

    #[test]
    fn site_indices_are_dense() {
        for (i, site) in DrawSite::ALL.iter().enumerate() {
            assert_eq!(site.index(), i);
        }
    }

    #[test]
    fn mix_is_pure_and_key_sensitive() {
        let base = mix(0xD4A1, 7, DrawSite::PhaseA, 3);
        assert_eq!(base, mix(0xD4A1, 7, DrawSite::PhaseA, 3));
        assert_ne!(base, mix(0xD4A2, 7, DrawSite::PhaseA, 3));
        assert_ne!(base, mix(0xD4A1, 8, DrawSite::PhaseA, 3));
        assert_ne!(base, mix(0xD4A1, 7, DrawSite::Injection, 3));
        assert_ne!(base, mix(0xD4A1, 7, DrawSite::Mechanism, 3));
        assert_ne!(base, mix(0xD4A1, 7, DrawSite::PhaseA, 4));
    }

    #[test]
    fn mix_has_no_obvious_bias() {
        // Not a statistical test battery — a smoke check that the low
        // bits (used by `sample % n` rotations) are balanced and that
        // nearby keys do not produce nearby outputs.
        let mut ones = [0u32; 64];
        let n = 4096u64;
        for id in 0..n {
            let s = mix(1, 1, DrawSite::PhaseA, id);
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((s >> b) & 1) as u32;
            }
        }
        for &count in &ones {
            // Each bit should be set roughly half the time (±10%).
            assert!(
                (count as f64) > 0.4 * n as f64 && (count as f64) < 0.6 * n as f64,
                "biased bit: {count}/{n}"
            );
        }
    }

    #[test]
    fn mix_low_bits_distinct_across_ids() {
        // `sample % n` rotations read the low bits; consecutive ids must
        // not collide there.
        let mut seen = std::collections::HashSet::new();
        for id in 0..1024u64 {
            seen.insert(mix(9, 123, DrawSite::PhaseA, id) & 0xFFFF);
        }
        // With 1024 draws over 65536 buckets, expect ~1016 distinct
        // (birthday bound); demand well above a degenerate mixer.
        assert!(seen.len() > 950, "low-bit collisions: {}", seen.len());
    }
}
