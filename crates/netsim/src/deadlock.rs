//! Structural deadlock detection (instrumentation oracle).
//!
//! The detector builds the VC wait-for relation — each occupied VC waits on
//! the concrete downstream VC slots its head packet could claim — and
//! computes the set of VCs that can *never* free: the complement of the
//! least fixed point of "can eventually progress" seeded from free buffers
//! and available ejection slots.
//!
//! It is used (a) by the Fig 3 deadlock-likelihood study, (b) by the ideal
//! deadlock-free reference mechanism (which resolves what the detector
//! finds at zero cost), and (c) as pure instrumentation in DRAIN runs to
//! count how many deadlocks actually formed between drains.
//!
//! Protocol-level deadlocks whose cycle passes through endpoint state
//! (MSHRs, directory queues) are not visible structurally; the simulator's
//! progress watchdog (see [`crate::sim`]) catches those.

use crate::routing::RouteCtx;
use crate::state::{SimCore, VcRef};

/// Result of one detector sweep.
#[derive(Clone, Debug, Default)]
pub struct DeadlockReport {
    /// VCs that can never progress (empty = no structural deadlock).
    pub deadlocked: Vec<VcRef>,
}

impl DeadlockReport {
    /// Whether a deadlock was found.
    pub fn is_deadlocked(&self) -> bool {
        !self.deadlocked.is_empty()
    }
}

/// Sweeps the network for structural deadlocks.
///
/// Complexity is O(VCs × candidates) per sweep; run it at a coarse
/// interval (`SimConfig::deadlock_check_interval`).
pub fn detect(core: &SimCore) -> DeadlockReport {
    let vcs: Vec<VcRef> = core.vc_refs().collect();
    let index_of = |r: VcRef| -> usize {
        // Same layout as the core's internal indexing.
        let total = core.config().total_vcs();
        r.link.index() * total + r.vn as usize * core.config().vcs_per_vn + r.vc as usize
    };
    let n = vcs.len();
    // live[i]: this VC slot can eventually become free.
    let mut live = vec![false; n];
    // Wait edges, reversed: for each slot, which occupied VCs are waiting
    // on it.
    let mut waiters: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut worklist: Vec<usize> = Vec::new();
    let mut cands = Vec::new();
    let mut targets = Vec::new();

    for (i, &r) in vcs.iter().enumerate() {
        let st = core.vc(r);
        let Some(pid) = st.occ else {
            live[i] = true;
            worklist.push(i);
            continue;
        };
        let p = core.packet(pid);
        let here = core.topology().link(r.link).dst;
        if p.dest == here {
            // Ejection candidate: progress iff the queue has room now
            // (endpoint consumption liveness is the watchdog's job).
            if core.ejection_has_space(here, p.class) {
                live[i] = true;
                worklist.push(i);
            }
            continue;
        }
        // Wait edges to every concrete VC slot the packet may claim.
        // Liveness must consider every move the packet could eventually
        // make, so pressure-gated candidates (deflection, escape entry)
        // are included by claiming an unbounded blocked time.
        let ctx = RouteCtx {
            cur: here,
            dest: p.dest,
            arrived_via: Some(r.link),
            in_escape: core.config().escape_sticky && r.vc == 0,
            blocked_for: u64::MAX,
            sample: 0,
        };
        cands.clear();
        core.route_candidates(&ctx, &mut cands);
        let vn = core.config().vn_of_class(p.class) as u8;
        let mut any_target = false;
        for &c in &cands {
            targets.clear();
            core.concrete_targets(c, vn, &mut targets);
            for &t in &targets {
                any_target = true;
                waiters[index_of(t)].push(i);
            }
        }
        if !any_target {
            // No route at all (should not happen on connected topologies);
            // treat as deadlocked by leaving it non-live with no hope.
            continue;
        }
    }
    // Propagate liveness backwards through wait edges: if a slot can free,
    // everything waiting on it can progress (claim it eventually).
    while let Some(i) = worklist.pop() {
        // `waiters[i]` lists occupied VCs that have i as a candidate slot.
        let ws = std::mem::take(&mut waiters[i]);
        for w in ws {
            if !live[w] {
                live[w] = true;
                worklist.push(w);
            }
        }
    }
    let deadlocked = vcs
        .iter()
        .enumerate()
        .filter(|&(i, &r)| !live[i] && core.vc(r).occ.is_some())
        .map(|(_, &r)| r)
        .collect();
    DeadlockReport { deadlocked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::mechanism::NoMechanism;
    use crate::routing::FullyAdaptive;
    use crate::sim::Sim;
    use crate::traffic::{SyntheticPattern, SyntheticTraffic};
    use drain_topology::Topology;

    #[test]
    fn empty_network_has_no_deadlock() {
        let topo = Topology::mesh(4, 4);
        let routing = FullyAdaptive::new(&topo);
        let sim = Sim::new(
            topo.clone(),
            SimConfig {
                vns: 1,
                vcs_per_vn: 1,
                num_classes: 1,
                ..SimConfig::default()
            },
            Box::new(routing),
            Box::new(NoMechanism),
            Box::new(SyntheticTraffic::new(
                SyntheticPattern::UniformRandom,
                0.0,
                1,
                7,
            )),
        );
        assert!(!detect(sim.core()).is_deadlocked());
    }

    #[test]
    fn saturated_ring_with_single_vc_deadlocks() {
        // A unidirectional-pressure scenario: a 4-ring, 1 VN × 1 VC,
        // adaptive routing, very high injection of packets that must travel
        // half-way around. With U-turn-free minimal routing on a ring and
        // one VC, cyclic waits form quickly.
        let topo = Topology::ring(4);
        let routing = FullyAdaptive::new(&topo);
        let mut sim = Sim::new(
            topo.clone(),
            SimConfig {
                vns: 1,
                vcs_per_vn: 1,
                num_classes: 1,
                watchdog_threshold: 0,
                ..SimConfig::default()
            },
            Box::new(routing),
            Box::new(NoMechanism),
            Box::new(SyntheticTraffic::new(
                SyntheticPattern::UniformRandom,
                0.9,
                1,
                3,
            )),
        );
        let mut saw_deadlock = false;
        for _ in 0..2000 {
            sim.step();
            if detect(sim.core()).is_deadlocked() {
                saw_deadlock = true;
                break;
            }
        }
        assert!(
            saw_deadlock,
            "expected a structural deadlock on a saturated 1-VC ring"
        );
    }
}
