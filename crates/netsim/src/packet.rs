//! Packets, message classes and the packet slab.

use std::fmt;

use drain_topology::{LinkId, NodeId};

/// Identifier of a live packet (an index into the simulator's packet slab).
///
/// Ids are reused after a packet leaves the network, so they are only
/// meaningful while the packet is live.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u32);

impl fmt::Debug for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Coherence message class (paper: requests / forwards / responses).
///
/// Classes map onto virtual networks (`vn = class % vns`); with a single
/// virtual network all classes share buffers, which is what enables
/// protocol-level deadlock — and what DRAIN makes safe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MessageClass(pub u8);

impl MessageClass {
    /// Coherence requests (GetS/GetM/PutM).
    pub const REQUEST: MessageClass = MessageClass(0);
    /// Directory-generated forwards/invalidations.
    pub const FORWARD: MessageClass = MessageClass(1);
    /// Responses (data, acks) — the protocol's sink class.
    pub const RESPONSE: MessageClass = MessageClass(2);

    /// Index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MessageClass::REQUEST => write!(f, "req"),
            MessageClass::FORWARD => write!(f, "fwd"),
            MessageClass::RESPONSE => write!(f, "resp"),
            MessageClass(c) => write!(f, "class{c}"),
        }
    }
}

/// Where a packet currently is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Location {
    /// Waiting in its source node's per-class injection queue.
    InjectionQueue(NodeId),
    /// Occupying the VC buffer of `link`'s downstream input port.
    Vc {
        /// Input link whose buffer holds the packet.
        link: LinkId,
        /// Virtual network index.
        vn: u8,
        /// VC index within the virtual network (0 = escape).
        vc: u8,
    },
    /// Delivered into the destination's per-class ejection queue.
    EjectionQueue(NodeId),
}

/// A packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Message class (determines the virtual network).
    pub class: MessageClass,
    /// Length in flits (serialization cycles on a link).
    pub len_flits: u32,
    /// Cycle the packet was created/enqueued at the source.
    pub birth_cycle: u64,
    /// Cycle the packet entered the network (won injection), or `u64::MAX`.
    pub inject_cycle: u64,
    /// Current location.
    pub loc: Location,
    /// Hops taken (normal plus drained).
    pub hops: u32,
    /// Hops that did not reduce distance to the destination.
    pub misroutes: u32,
    /// Hops forced by a drain or spin.
    pub forced_hops: u32,
    /// Opaque tag for endpoint models (e.g. coherence transaction ids).
    pub tag: u64,
}

/// Slab of live packets with id reuse.
#[derive(Clone, Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: usize,
}

impl PacketSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a packet, returning its id.
    pub fn insert(&mut self, p: Packet) -> PacketId {
        self.live += 1;
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(p);
            PacketId(i)
        } else {
            self.slots.push(Some(p));
            PacketId((self.slots.len() - 1) as u32)
        }
    }

    /// Removes a packet, returning it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn remove(&mut self, id: PacketId) -> Packet {
        let p = self.slots[id.0 as usize]
            .take()
            .expect("packet id not live");
        self.free.push(id.0);
        self.live -= 1;
        p
    }

    /// Shared access to a live packet.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        self.slots[id.0 as usize].as_ref().expect("packet id not live")
    }

    /// Shared access to a packet, or `None` if `id` is not live (used by
    /// the invariant checker to report dangling ids instead of panicking).
    #[inline]
    pub fn try_get(&self, id: PacketId) -> Option<&Packet> {
        self.slots.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// Mutable access to a live packet.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        self.slots[id.0 as usize].as_mut().expect("packet id not live")
    }

    /// Number of live packets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterator over `(id, packet)` for live packets.
    pub fn iter(&self) -> impl Iterator<Item = (PacketId, &Packet)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (PacketId(i as u32), p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(src: u16, dest: u16) -> Packet {
        Packet {
            src: NodeId(src),
            dest: NodeId(dest),
            class: MessageClass::REQUEST,
            len_flits: 1,
            birth_cycle: 0,
            inject_cycle: u64::MAX,
            loc: Location::InjectionQueue(NodeId(src)),
            hops: 0,
            misroutes: 0,
            forced_hops: 0,
            tag: 0,
        }
    }

    #[test]
    fn slab_insert_remove_reuse() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(dummy(0, 1));
        let b = slab.insert(dummy(1, 2));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).dest, NodeId(1));
        slab.remove(a);
        assert_eq!(slab.len(), 1);
        let c = slab.insert(dummy(2, 3));
        assert_eq!(c, a, "slot should be reused");
        assert_eq!(slab.get(b).dest, NodeId(2));
        assert_eq!(slab.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn slab_get_dead_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(dummy(0, 1));
        slab.remove(a);
        let _ = slab.get(a);
    }

    #[test]
    fn class_constants_are_distinct() {
        assert_ne!(MessageClass::REQUEST, MessageClass::FORWARD);
        assert_ne!(MessageClass::FORWARD, MessageClass::RESPONSE);
        assert_eq!(MessageClass::RESPONSE.index(), 2);
        assert_eq!(format!("{}", MessageClass::REQUEST), "req");
        assert_eq!(format!("{}", MessageClass(5)), "class5");
    }
}
