//! Packets, message classes and the packet slab.

use std::fmt;

use drain_topology::{LinkId, NodeId};

/// Identifier of a live packet (an index into the simulator's packet slab).
///
/// Ids are reused after a packet leaves the network, so they are only
/// meaningful while the packet is live.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u32);

impl fmt::Debug for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Coherence message class (paper: requests / forwards / responses).
///
/// Classes map onto virtual networks (`vn = class % vns`); with a single
/// virtual network all classes share buffers, which is what enables
/// protocol-level deadlock — and what DRAIN makes safe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MessageClass(pub u8);

impl MessageClass {
    /// Coherence requests (GetS/GetM/PutM).
    pub const REQUEST: MessageClass = MessageClass(0);
    /// Directory-generated forwards/invalidations.
    pub const FORWARD: MessageClass = MessageClass(1);
    /// Responses (data, acks) — the protocol's sink class.
    pub const RESPONSE: MessageClass = MessageClass(2);

    /// Index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MessageClass::REQUEST => write!(f, "req"),
            MessageClass::FORWARD => write!(f, "fwd"),
            MessageClass::RESPONSE => write!(f, "resp"),
            MessageClass(c) => write!(f, "class{c}"),
        }
    }
}

/// Where a packet currently is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Location {
    /// Waiting in its source node's per-class injection queue.
    InjectionQueue(NodeId),
    /// Occupying the VC buffer of `link`'s downstream input port.
    Vc {
        /// Input link whose buffer holds the packet.
        link: LinkId,
        /// Virtual network index.
        vn: u8,
        /// VC index within the virtual network (0 = escape).
        vc: u8,
    },
    /// Delivered into the destination's per-class ejection queue.
    EjectionQueue(NodeId),
}

/// A packet in flight.
///
/// All fields are plain values, so `Packet` is `Copy`: the slab hands out
/// whole packets by value on the rare paths that need every field, while
/// the per-cycle hot paths read the per-VC mirrors in
/// [`crate::SimCore`] instead and never touch the slab at all.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Message class (determines the virtual network).
    pub class: MessageClass,
    /// Length in flits (serialization cycles on a link).
    pub len_flits: u32,
    /// Cycle the packet was created/enqueued at the source.
    pub birth_cycle: u64,
    /// Cycle the packet entered the network (won injection), or `u64::MAX`.
    pub inject_cycle: u64,
    /// Current location.
    pub loc: Location,
    /// Hops taken (normal plus drained).
    pub hops: u32,
    /// Hops that did not reduce distance to the destination.
    pub misroutes: u32,
    /// Hops forced by a drain or spin.
    pub forced_hops: u32,
    /// Opaque tag for endpoint models (e.g. coherence transaction ids).
    pub tag: u64,
}

/// Slab of live packets with freelist id reuse.
///
/// Payloads live in one contiguous `Vec<Packet>`; a parallel liveness
/// array distinguishes live slots from retired ones awaiting reuse.
/// Retiring a packet pushes its slot onto the freelist and the next
/// insert pops it, so after the first ramp-up the slab allocates nothing:
/// steady-state traffic recycles slots forever. Ids are only meaningful
/// while their packet is live (see [`PacketId`]).
///
/// Invariant (checked by the recycling property tests): every slot is
/// either live or on the freelist, exactly once —
/// `slot_count() == len() + free_count()`.
#[derive(Clone, Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    live_flags: Vec<bool>,
    free: Vec<u32>,
    live: usize,
}

impl PacketSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a packet, returning its id (a recycled slot when one is
    /// free, a fresh one otherwise).
    pub fn insert(&mut self, p: Packet) -> PacketId {
        self.live += 1;
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = p;
            self.live_flags[i as usize] = true;
            PacketId(i)
        } else {
            self.slots.push(p);
            self.live_flags.push(true);
            PacketId((self.slots.len() - 1) as u32)
        }
    }

    /// Removes a packet, returning it and recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn remove(&mut self, id: PacketId) -> Packet {
        assert!(self.live_flags[id.0 as usize], "packet id not live");
        self.live_flags[id.0 as usize] = false;
        self.free.push(id.0);
        self.live -= 1;
        self.slots[id.0 as usize]
    }

    /// Shared access to a live packet.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        assert!(self.live_flags[id.0 as usize], "packet id not live");
        &self.slots[id.0 as usize]
    }

    /// Shared access to a packet, or `None` if `id` is not live (used by
    /// the invariant checker to report dangling ids instead of panicking).
    #[inline]
    pub fn try_get(&self, id: PacketId) -> Option<&Packet> {
        (*self.live_flags.get(id.0 as usize)?).then(|| &self.slots[id.0 as usize])
    }

    /// Mutable access to a live packet.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        assert!(self.live_flags[id.0 as usize], "packet id not live");
        &mut self.slots[id.0 as usize]
    }

    /// Number of live packets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no packets are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable). Grows monotonically
    /// to the high-water mark of concurrently live packets, then stays
    /// flat — the recycling property tests pin this.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently on the freelist awaiting reuse.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Iterator over `(id, packet)` for live packets.
    pub fn iter(&self) -> impl Iterator<Item = (PacketId, &Packet)> {
        self.slots
            .iter()
            .zip(&self.live_flags)
            .enumerate()
            .filter_map(|(i, (p, &l))| l.then_some((PacketId(i as u32), p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(src: u16, dest: u16) -> Packet {
        Packet {
            src: NodeId(src),
            dest: NodeId(dest),
            class: MessageClass::REQUEST,
            len_flits: 1,
            birth_cycle: 0,
            inject_cycle: u64::MAX,
            loc: Location::InjectionQueue(NodeId(src)),
            hops: 0,
            misroutes: 0,
            forced_hops: 0,
            tag: 0,
        }
    }

    #[test]
    fn slab_insert_remove_reuse() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(dummy(0, 1));
        let b = slab.insert(dummy(1, 2));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).dest, NodeId(1));
        slab.remove(a);
        assert_eq!(slab.len(), 1);
        let c = slab.insert(dummy(2, 3));
        assert_eq!(c, a, "slot should be reused");
        assert_eq!(slab.get(b).dest, NodeId(2));
        assert_eq!(slab.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn slab_get_dead_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(dummy(0, 1));
        slab.remove(a);
        let _ = slab.get(a);
    }

    #[test]
    fn class_constants_are_distinct() {
        assert_ne!(MessageClass::REQUEST, MessageClass::FORWARD);
        assert_ne!(MessageClass::FORWARD, MessageClass::RESPONSE);
        assert_eq!(MessageClass::RESPONSE.index(), 2);
        assert_eq!(format!("{}", MessageClass::REQUEST), "req");
        assert_eq!(format!("{}", MessageClass(5)), "class5");
    }
}
