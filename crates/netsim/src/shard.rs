//! Sharded deterministic allocation kernel.
//!
//! With [`crate::SimConfig::shards`] `> 1` the routers of the topology are
//! partitioned into `K` shards ([`drain_topology::partition::Partition`],
//! balanced BFS blocks) and each cycle's allocation phase is *planned* in
//! parallel — one worker thread per shard, all reading the same frozen
//! `&SimCore` — then *committed* serially at the cycle barrier in a
//! canonical order. Results are bit-identical to the serial kernel at
//! every shard count: same `Stats`, same cycle counts, byte-identical
//! trace streams.
//!
//! # Ownership
//!
//! * A VC buffer sits at the input port of its link's `dst` router; the
//!   slot belongs to that router's shard.
//! * An output link belongs to its `src` router's shard — which is
//!   exactly the shard holding *every* possible requester of that link
//!   (VC heads at `src`'s input ports and `src`'s injection queues), so
//!   link arbitration never crosses a shard boundary.
//! * Injection and ejection queues belong to their node's shard.
//!
//! # Determinism
//!
//! Two RNG contracts exist (see [`crate::rng`]); both make sharded
//! results bit-identical to serial ones, by very different means.
//!
//! Under [`crate::rng::RngMode::Stream`] (the default) the serial kernel
//! draws one RNG sample per visited ready non-ejecting VC head
//! (ascending arena order) and one per non-empty injection-queue head
//! (ascending queue order). To give every shard the samples the serial
//! kernel would have used, each planner clones the cycle-start RNG and
//! replays the *entire* global draw schedule — a cheap
//! ready/non-ejecting predicate per occupied slot — consuming every draw
//! while acting only on its own shard's. All clones therefore end at the
//! same stream position (debug-asserted via `ChaCha8Rng: PartialEq`) and
//! the merge adopts shard 0's clone as the post-cycle RNG.
//!
//! Under [`crate::rng::RngMode::Keyed`] every draw is the pure function
//! `mix(seed, cycle, site, id)`, so the census disappears entirely: a
//! planner sweeps only its own slots — through a per-shard sub-view of
//! the occupancy bitmap ([`ShardMap`]'s slot masks) — computes each
//! owned head's sample in place, and carries no RNG at all. No clone, no
//! replay, no stream-equality assert: shard-count invariance holds by
//! construction, because the sample a head receives depends only on its
//! identity and the cycle.
//!
//! # The barrier merge
//!
//! Plans are pure data: ejection outcomes, link grants and telemetry
//! notes. The merge replays them through the serial kernel's own commit
//! functions in the serial kernel's own order — ejection grants ascending
//! queue id, then link grants ascending link id — so every observable
//! (stats, queue contents, trace event sequence) is identical by
//! construction. A granted move whose target VC belongs to *another*
//! shard is a cross-shard flit: its occupation is deferred through the
//! per-(shard, shard) queues of [`ShardFabric`] and applied after all
//! grants, in canonical `(from, to)` then dense-VC-index order. Deferral
//! is unobservable within the cycle because each output link gets exactly
//! one grant and every grant's target sits on its own output link.
//!
//! Mechanism control (drain/spin/freeze decisions), endpoint models and
//! instrumentation all run serially *at* the cycle barrier on globally
//! merged state — that barrier is the cross-shard coordination point for
//! drain epochs, so `Forced` and `Freeze` cycles bypass the sharded path
//! entirely and need no distributed protocol.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

use drain_topology::{partition::Partition, LinkId, NodeId, Topology};

use crate::metrics::Phase;
use crate::packet::{MessageClass, PacketId};
use crate::rng::{mix, DrawSite, RngMode, NUM_DRAW_SITES};
use crate::routing::Candidate;
use crate::state::{LinkRequest, MoveSource, ParkNote, PendingOccupy, PhaseAOutcome, SimCore};

/// Maximum shard count: the fabric's nonempty-pair index is one `u64`
/// (`8 × 8` ordered pairs).
pub const MAX_SHARDS: usize = 8;

/// Static ownership tables for one (topology, shard count) pairing:
/// which shard owns each router, each link-major VC slot and each
/// output link.
#[derive(Clone, Debug)]
pub struct ShardMap {
    k: usize,
    shard_of_node: Vec<u16>,
    slot_owner: Vec<u16>,
    link_owner: Vec<u16>,
    /// Per shard: a bitmap over the occupancy words with exactly this
    /// shard's owned slots set. Keyed-mode planners sweep
    /// `occ_bits[wi] & slot_mask[shard][wi]` — a per-shard sub-view of
    /// the occupancy bitmap that skips foreign slots wholesale instead
    /// of filtering them bit by bit (the stream census must still walk
    /// the global words: every slot's draw has to be replayed).
    slot_mask: Vec<Vec<u64>>,
    cut_links: usize,
}

impl ShardMap {
    /// Builds the ownership tables from a balanced router partition.
    /// `vcs_per_port` is the link-major stride
    /// ([`crate::SimConfig::total_vcs`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`MAX_SHARDS`].
    pub fn new(topo: &Topology, k: usize, vcs_per_port: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&k),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        let part = Partition::balanced(topo, k);
        let shard_of_node: Vec<u16> = (0..topo.num_nodes())
            .map(|n| part.shard_of(NodeId(n as u16)))
            .collect();
        let m = topo.num_unidirectional_links();
        let link_owner: Vec<u16> = (0..m)
            .map(|li| shard_of_node[topo.link(LinkId(li as u32)).src.index()])
            .collect();
        let slot_owner: Vec<u16> = (0..m * vcs_per_port)
            .map(|idx| shard_of_node[topo.link(LinkId((idx / vcs_per_port) as u32)).dst.index()])
            .collect();
        let words = (m * vcs_per_port).div_ceil(64);
        let mut slot_mask = vec![vec![0u64; words]; k];
        for (idx, &owner) in slot_owner.iter().enumerate() {
            slot_mask[owner as usize][idx / 64] |= 1 << (idx % 64);
        }
        let cut_links = part.cut_links(topo);
        ShardMap {
            k,
            shard_of_node,
            slot_owner,
            link_owner,
            slot_mask,
            cut_links,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.k
    }

    /// Shard owning a router.
    pub fn shard_of_node(&self, n: NodeId) -> u16 {
        self.shard_of_node[n.index()]
    }

    /// Shard owning the VC buffer at link-major arena index `idx`.
    pub fn slot_owner(&self, idx: usize) -> u16 {
        self.slot_owner[idx]
    }

    /// Shard owning an output link (its `src` router's shard).
    pub fn link_owner(&self, l: LinkId) -> u16 {
        self.link_owner[l.index()]
    }

    /// Unidirectional links whose endpoints live in different shards
    /// (the flits that must cross the [`ShardFabric`]).
    pub fn cut_links(&self) -> usize {
        self.cut_links
    }
}

/// Per-(shard, shard) cross-shard flit queues plus a nonempty-pair index.
///
/// A granted move whose resolved target VC belongs to another shard
/// pushes `(target arena index, packet id)` into the `(from, to)` queue;
/// at the cycle barrier [`ShardFabric::drain_in_order`] visits non-empty
/// pairs in ascending `(from, to)` order (one `u64` of pair bits — hence
/// [`MAX_SHARDS`]) and delivers each queue's flits sorted by dense VC
/// index, making delivery order canonical regardless of which thread
/// produced what.
#[derive(Debug)]
pub struct ShardFabric {
    k: usize,
    queues: Vec<Vec<(u32, u32)>>,
    pair_bits: u64,
}

impl ShardFabric {
    /// Creates an empty fabric for `k` shards.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`MAX_SHARDS`].
    pub fn new(k: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&k),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        ShardFabric {
            k,
            queues: (0..k * k).map(|_| Vec::new()).collect(),
            pair_bits: 0,
        }
    }

    /// Enqueues one flit moving from shard `from` to shard `to`: the
    /// packet `pid` landing in the VC at dense arena index `tidx`.
    pub fn push(&mut self, from: u16, to: u16, tidx: u32, pid: u32) {
        let pair = from as usize * self.k + to as usize;
        self.queues[pair].push((tidx, pid));
        self.pair_bits |= 1 << pair;
    }

    /// Whether any flit is queued.
    pub fn is_empty(&self) -> bool {
        self.pair_bits == 0
    }

    /// Total queued flits.
    pub fn len(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Drains every queue in canonical order — ascending `(from, to)`
    /// pair, flits within a pair sorted by dense VC index — invoking
    /// `f(from, to, tidx, pid)` for each flit. The fabric is empty
    /// afterwards.
    pub fn drain_in_order(&mut self, mut f: impl FnMut(u16, u16, u32, u32)) {
        let mut bits = self.pair_bits;
        self.pair_bits = 0;
        while bits != 0 {
            let pair = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.queues[pair].sort_unstable_by_key(|&(tidx, _)| tidx);
            let (from, to) = ((pair / self.k) as u16, (pair % self.k) as u16);
            for &(tidx, pid) in &self.queues[pair] {
                f(from, to, tidx, pid);
            }
            self.queues[pair].clear();
        }
    }
}

/// One shard's pure plan for a cycle: what its routers would commit.
#[derive(Debug)]
pub(crate) struct ShardPlan {
    /// Stream mode: the census-advanced RNG clone (all shards must
    /// agree; shard 0's becomes the post-cycle RNG). Keyed mode carries
    /// `None` — draws are pure functions of `(seed, cycle, site, id)`,
    /// so there is no stream position to replay, agree on, or adopt.
    rng: Option<ChaCha8Rng>,
    /// Per-site samples this plan computed (merged into the core's
    /// `drain_rng_draws_total` counters; in stream mode that includes
    /// the full census replay — the honest O(K × heads) cost).
    draws: [u64; NUM_DRAW_SITES],
    /// Ejection outcomes, ascending queue id (queue ids are wholly owned
    /// by one shard, so ids never collide across plans).
    ejects: Vec<EjectOutcome>,
    /// Winning link grants, ascending link id (one per owned requested
    /// link).
    grants: Vec<(u32, LinkRequest)>,
    /// Phase A credit-stall telemetry notes `(router, count)` (collected
    /// only while telemetry is active; counters are additive so the merge
    /// may apply them in any order).
    stalls: Vec<(u32, u64)>,
    /// Wake-scheduler park notes for owned heads whose routing pass
    /// returned `None`, computed against the frozen pre-commit state (the
    /// serial sweep computes parks in Phase A, before any commit; the
    /// merge must therefore apply these before ejects and grants so
    /// commit-time vacates fire against the new deadlines).
    parks: Vec<ParkNote>,
    /// Parked owned heads skipped this cycle (wake accounting).
    skips: u64,
    /// Blocked owned heads that neither routed nor parked (wake
    /// accounting).
    wake_stalls: u64,
    /// Wall nanoseconds this plan took, measured only on phase-profiler
    /// sampled cycles (0 otherwise); credited to the shard at the merge.
    plan_nanos: u64,
}

/// Outcome of one (node, class) ejection queue's arbitration.
#[derive(Clone, Copy, Debug)]
enum EjectOutcome {
    /// The winning head ejects.
    Grant { q: u32, idx: u32, pid: PacketId },
    /// The queue is full; its would-be ejectors are credit-stalled.
    Full { q: u32, router: u32, count: u64 },
}

impl EjectOutcome {
    fn queue(&self) -> u32 {
        match *self {
            EjectOutcome::Grant { q, .. } | EjectOutcome::Full { q, .. } => q,
        }
    }
}

/// Reusable per-thread scratch for [`plan_shard`] (no steady-state
/// allocation, mirroring the serial kernel's reuse discipline).
#[derive(Default)]
pub(crate) struct PlanScratch {
    cands: Vec<Candidate>,
    reqs: Vec<(u32, LinkRequest)>,
    ejects: Vec<(usize, usize, PacketId)>,
    group: Vec<LinkRequest>,
}

/// Plans one shard's allocation phase against the frozen cycle-start
/// state: the census RNG replay (see the module docs), Phase A routing
/// decisions for owned slots and injection heads, and local Phase B
/// arbitration for owned ejection queues and output links.
pub(crate) fn plan_shard(
    core: &SimCore,
    map: &ShardMap,
    shard: u16,
    scratch: &mut PlanScratch,
) -> ShardPlan {
    let now = core.cycle();
    let telem_on = core.telemetry().active();
    let wake_on = core.config().wake_scheduler;
    // Self-timing for the phase profiler: only on sampled cycles (one
    // bool read through the shared core otherwise), and a pure observer
    // — the measurement never feeds back into the plan.
    let timing = core.prof_active().then(Instant::now);
    let keyed = core.config().rng_mode == RngMode::Keyed;
    let seed = core.config().seed;
    let mut rng = (!keyed).then(|| core.rng_clone());
    let mut draws = [0u64; NUM_DRAW_SITES];
    scratch.reqs.clear();
    scratch.ejects.clear();
    let mut stalls: Vec<(u32, u64)> = Vec::new();
    let mut parks: Vec<ParkNote> = Vec::new();
    let mut skips = 0u64;
    let mut wake_stalls = 0u64;

    if keyed {
        // Keyed Phase A sweep: only this shard's occupied slots, via the
        // per-shard occupancy sub-view. Each routed head's sample is the
        // pure `mix(seed, cycle, PhaseA, idx)` — identical to what the
        // serial keyed sweep computes for the same slot on the same
        // cycle, so no census, no replay, no stream to agree on. Parked
        // heads draw nothing.
        let mask = &map.slot_mask[shard as usize];
        for (wi, (&occ_w, &mask_w)) in core.occ_bits.iter().zip(mask).enumerate() {
            let mut w = occ_w & mask_w;
            while w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                if core.vc_ready_at[idx] > now {
                    continue;
                }
                let here = core.idx_here[idx];
                if core.vc_dest[idx] == here {
                    let q = core.qidx(NodeId(here), MessageClass(core.vc_class[idx]));
                    scratch.ejects.push((q, idx, PacketId(core.vc_occ[idx])));
                    continue;
                }
                if wake_on && core.vc_wake_at[idx] > now {
                    skips += 1;
                    if telem_on {
                        stalls.push((u32::from(here), 1));
                    }
                    continue;
                }
                let sample = mix(seed, now, DrawSite::PhaseA, idx as u64);
                draws[DrawSite::PhaseA.index()] += 1;
                plan_slot_route(
                    core,
                    idx,
                    here,
                    sample,
                    telem_on,
                    scratch,
                    &mut parks,
                    &mut stalls,
                    &mut wake_stalls,
                );
            }
        }
    } else {
        // Stream-mode Phase A census: every occupied slot in ascending
        // arena order — the serial sweep's draw schedule. Non-owned
        // slots still consume their draw (that is the census); owned
        // ones also decide.
        let rng = rng.as_mut().expect("stream mode carries an RNG clone");
        for wi in 0..core.occ_bits.len() {
            let mut w = core.occ_bits[wi];
            while w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                if core.vc_ready_at[idx] > now {
                    continue;
                }
                let here = core.idx_here[idx];
                let owned = map.slot_owner[idx] == shard;
                if core.vc_dest[idx] == here {
                    // Ejecting heads draw nothing in the serial kernel.
                    if owned {
                        let q = core.qidx(NodeId(here), MessageClass(core.vc_class[idx]));
                        scratch.ejects.push((q, idx, PacketId(core.vc_occ[idx])));
                    }
                    continue;
                }
                let sample = rng.gen::<u64>();
                draws[DrawSite::PhaseA.index()] += 1;
                // Parked heads consume their census draw like every other
                // ready non-ejecting head, but are not re-routed — the
                // serial sweep's parked fast path, replayed shard-locally.
                if wake_on && core.vc_wake_at[idx] > now {
                    if owned {
                        skips += 1;
                        if telem_on {
                            stalls.push((u32::from(here), 1));
                        }
                    }
                    continue;
                }
                if !owned {
                    continue;
                }
                plan_slot_route(
                    core,
                    idx,
                    here,
                    sample,
                    telem_on,
                    scratch,
                    &mut parks,
                    &mut stalls,
                    &mut wake_stalls,
                );
            }
        }
    }

    // Injection: every non-empty queue head in ascending (node, class)
    // order, exactly the serial sweep (including its whole-phase
    // `nonempty_inj` gate). Stream mode must draw for *every* head
    // (census); keyed mode skips foreign queues before drawing.
    if core.nonempty_inj > 0 {
        let classes = core.config().num_classes;
        for q in 0..core.inj.len() {
            let Some(&pid) = core.inj[q].front() else {
                continue;
            };
            let node = NodeId((q / classes) as u16);
            let owned = map.shard_of_node[node.index()] == shard;
            if keyed && !owned {
                continue;
            }
            let sample = match rng.as_mut() {
                Some(rng) => rng.gen::<u64>(),
                None => mix(seed, now, DrawSite::Injection, q as u64),
            };
            draws[DrawSite::Injection.index()] += 1;
            if !owned {
                continue;
            }
            let class = MessageClass((q % classes) as u8);
            if let Some((out_link, target)) =
                core.injection_route(node, class, sample, &mut scratch.cands)
            {
                scratch.reqs.push((
                    out_link.0,
                    LinkRequest {
                        source: MoveSource::Injection { node, class },
                        pid,
                        target,
                        blocked_for: 0,
                    },
                ));
            }
        }
    }

    // Local Phase B, ejection: all contenders for an owned queue are
    // owned slots, so arbitration is complete here.
    scratch.ejects.sort_unstable_by_key(|&(q, idx, _)| (q, idx));
    let classes = core.config().num_classes;
    let mut ejects: Vec<EjectOutcome> = Vec::new();
    let mut gi = 0;
    while gi < scratch.ejects.len() {
        let q = scratch.ejects[gi].0;
        let mut ge = gi;
        while ge < scratch.ejects.len() && scratch.ejects[ge].0 == q {
            ge += 1;
        }
        let group = &scratch.ejects[gi..ge];
        let node = NodeId((q / classes) as u16);
        let class = MessageClass((q % classes) as u8);
        if core.ejection_has_space(node, class) {
            let (_, idx, pid) = group[core.eject_winner(q, group)];
            ejects.push(EjectOutcome::Grant {
                q: q as u32,
                idx: idx as u32,
                pid,
            });
        } else if telem_on {
            ejects.push(EjectOutcome::Full {
                q: q as u32,
                router: (q / classes) as u32,
                count: group.len() as u64,
            });
        }
        gi = ge;
    }

    // Local Phase B, links: every requester of an owned link is owned,
    // and the census visited them in the serial sweep's order, so a
    // stable sort by link id reproduces the serial request lists — and
    // therefore the serial winner — exactly.
    scratch.reqs.sort_by_key(|&(li, _)| li);
    let mut grants: Vec<(u32, LinkRequest)> = Vec::new();
    let mut gi = 0;
    while gi < scratch.reqs.len() {
        let li = scratch.reqs[gi].0;
        debug_assert_eq!(map.link_owner[li as usize], shard, "foreign link request");
        scratch.group.clear();
        while gi < scratch.reqs.len() && scratch.reqs[gi].0 == li {
            scratch.group.push(scratch.reqs[gi].1);
            gi += 1;
        }
        let win = core.link_winner(li as usize, &scratch.group);
        grants.push((li, scratch.group[win]));
    }

    ShardPlan {
        rng,
        draws,
        ejects,
        grants,
        stalls,
        parks,
        skips,
        wake_stalls,
        plan_nanos: timing.map_or(0, |t0| t0.elapsed().as_nanos() as u64),
    }
}

/// Phase A decision for one owned, ready, non-ejecting, non-parked slot:
/// the same `phase_a_route_or_park` call the serial sweep makes, with the
/// outcome recorded into the plan instead of committed.
#[allow(clippy::too_many_arguments)]
fn plan_slot_route(
    core: &SimCore,
    idx: usize,
    here: u16,
    sample: u64,
    telem_on: bool,
    scratch: &mut PlanScratch,
    parks: &mut Vec<ParkNote>,
    stalls: &mut Vec<(u32, u64)>,
    wake_stalls: &mut u64,
) {
    let link = LinkId(core.idx_link[idx]);
    let vc = core.idx_vc[idx];
    match core.phase_a_route_or_park(idx, link, vc, sample, &mut scratch.cands) {
        PhaseAOutcome::Route(out_link, target, blocked_for) => scratch.reqs.push((
            out_link.0,
            LinkRequest {
                source: MoveSource::Vc(idx),
                pid: PacketId(core.vc_occ[idx]),
                target,
                blocked_for,
            },
        )),
        outcome => {
            if telem_on {
                stalls.push((u32::from(here), 1));
            }
            match outcome {
                PhaseAOutcome::Park(note) => parks.push(note),
                _ => *wake_stalls += 1,
            }
        }
    }
}

/// Commits the shards' plans against the core in canonical serial order
/// (see the module docs); cross-shard occupations ride `fabric`. Returns
/// the number of flits that crossed a shard boundary this cycle.
fn apply_plans(
    core: &mut SimCore,
    map: &ShardMap,
    plans: Vec<ShardPlan>,
    fabric: &mut ShardFabric,
) -> u64 {
    let mut rng: Option<ChaCha8Rng> = None;
    let mut draws = [0u64; NUM_DRAW_SITES];
    let mut ejects: Vec<EjectOutcome> = Vec::new();
    let mut grants: Vec<(u32, LinkRequest)> = Vec::new();
    let mut stalls: Vec<(u32, u64)> = Vec::new();
    let mut parks: Vec<ParkNote> = Vec::new();
    let mut skips = 0u64;
    let mut wake_stalls = 0u64;
    for (shard, p) in plans.into_iter().enumerate() {
        match (&rng, p.rng) {
            // Stream mode: every clone must have replayed the identical
            // global draw schedule — contract v1's keystone.
            (Some(r), Some(pr)) => debug_assert!(*r == pr, "shard census RNG streams diverged"),
            (None, Some(pr)) => rng = Some(pr),
            // Keyed mode: no stream position exists to compare or adopt
            // — shard-count invariance is the mixer's purity.
            (_, None) => {}
        }
        for (acc, d) in draws.iter_mut().zip(p.draws) {
            *acc += d;
        }
        core.prof_note_shard(shard, p.plan_nanos);
        ejects.extend(p.ejects);
        grants.extend(p.grants);
        stalls.extend(p.stalls);
        parks.extend(p.parks);
        skips += p.skips;
        wake_stalls += p.wake_stalls;
    }
    if let Some(rng) = rng {
        // Stream mode: adopt shard 0's advanced clone as the post-cycle
        // serial stream position.
        core.set_rng(rng);
    }
    core.note_rng_draws(draws);

    // Park notes first — the serial kernel parks in Phase A, before any
    // commit, so commit-time vacates below must fire against the new
    // deadlines. Ascending arena index reproduces the serial sweep's
    // subscription-list insertion order exactly (not required for
    // behaviour — fires are commutative — but it keeps internal wake
    // state bit-identical to the serial kernel's, which the deep
    // validator can then compare without caveats).
    parks.sort_unstable_by_key(|n| n.idx);
    for n in parks {
        core.apply_park(n);
    }
    core.note_wake_skips(skips, wake_stalls);

    // Ejection outcomes ascending queue id (ids are unique across plans).
    ejects.sort_unstable_by_key(EjectOutcome::queue);
    for e in ejects {
        match e {
            EjectOutcome::Grant { idx, pid, .. } => core.commit_eject(idx as usize, pid),
            EjectOutcome::Full { router, count, .. } => {
                core.note_credit_stalls(router as usize, count);
            }
        }
    }

    // Link grants ascending link id (one grant per link, ids unique).
    grants.sort_unstable_by_key(|&(li, _)| li);
    let mut fabric_flits = 0u64;
    for (li, req) in &grants {
        let from = map.link_owner[*li as usize];
        let pending =
            core.commit_move_deferring(req, LinkId(*li), |tidx| map.slot_owner[tidx] != from);
        if let Some(p) = pending {
            fabric.push(from, map.slot_owner[p.tidx as usize], p.tidx, p.pid.0);
            fabric_flits += 1;
        }
    }
    core.prof_mark(Phase::PhaseB);

    // Cross-shard deliveries in canonical (from, to, dense index) order.
    fabric.drain_in_order(|_, _, tidx, pid| {
        core.apply_remote_occupy(PendingOccupy {
            tidx,
            pid: PacketId(pid),
        });
    });
    core.prof_mark(Phase::Fabric);

    // Phase A credit-stall notes (additive counters; order immaterial).
    for (router, n) in stalls {
        core.note_credit_stalls(router as usize, n);
    }
    core.prof_mark(Phase::PhaseB);
    fabric_flits
}

/// The sharded kernel's per-`Sim` runtime: ownership tables, the
/// cross-shard fabric and the persistent worker pool.
pub(crate) struct ShardRuntime {
    map: ShardMap,
    fabric: ShardFabric,
    pool: pool::Pool,
    scratch0: PlanScratch,
    /// Flits that crossed a shard boundary through the fabric so far.
    fabric_flits: u64,
    /// Cycles allocated by the sharded kernel (the hybrid gate may route
    /// low-occupancy cycles to the serial allocator).
    sharded_cycles: u64,
}

impl ShardRuntime {
    /// Builds the runtime for the core's configured shard count (spawns
    /// `shards - 1` worker threads; shard 0 is planned on the caller's
    /// thread).
    pub(crate) fn new(core: &SimCore) -> Self {
        let k = core.config().shards;
        let map = ShardMap::new(core.topology(), k, core.config().total_vcs());
        ShardRuntime {
            map,
            fabric: ShardFabric::new(k),
            pool: pool::Pool::new(k),
            scratch0: PlanScratch::default(),
            fabric_flits: 0,
            sharded_cycles: 0,
        }
    }

    /// Runs one sharded allocation cycle: parallel planning, then the
    /// canonical serial merge. Bit-identical to
    /// `SimCore::allocate_and_move`.
    pub(crate) fn allocate(&mut self, core: &mut SimCore) {
        let plans = self.pool.plan_cycle(core, &self.map, &mut self.scratch0);
        core.prof_mark(Phase::PhaseA);
        self.fabric_flits += apply_plans(core, &self.map, plans, &mut self.fabric);
        self.sharded_cycles += 1;
        debug_assert!(self.fabric.is_empty(), "fabric drained at the barrier");
    }

    /// Flits that crossed a shard boundary through the fabric so far.
    pub(crate) fn fabric_flits(&self) -> u64 {
        self.fabric_flits
    }

    /// Cycles allocated by the sharded kernel so far.
    pub(crate) fn sharded_cycles(&self) -> u64 {
        self.sharded_cycles
    }
}

/// The persistent worker pool. This is the only place in the crate that
/// needs `unsafe`: lifetime-erased pointers hand the frozen cycle state
/// to long-lived worker threads (a scoped-thread-per-cycle design costs
/// more than a whole serial cycle in spawn overhead).
#[allow(unsafe_code)]
mod pool {
    use super::{plan_shard, PlanScratch, ShardMap, ShardPlan};
    use crate::state::SimCore;
    use std::sync::{Arc, Condvar, Mutex};
    use std::thread::JoinHandle;

    // The whole design rests on planning being a read-only, data-race-free
    // view of the core; make the compiler re-check that claim.
    const _: () = {
        const fn assert_sync<T: Sync>() {}
        assert_sync::<SimCore>();
        assert_sync::<ShardMap>();
    };

    /// One planning epoch's inputs, lifetime-erased.
    ///
    /// SAFETY invariant: the pointees outlive the epoch —
    /// [`Pool::plan_cycle`] does not return until every worker has
    /// deposited its plan, and workers never touch a `Job` outside the
    /// epoch that published it. Workers form only shared references
    /// (`SimCore: Sync`, asserted above).
    #[derive(Clone, Copy)]
    struct Job {
        core: *const SimCore,
        map: *const ShardMap,
    }

    // SAFETY: see `Job` — the pointers are used strictly as shared
    // borrows bracketed by the dispatching call.
    unsafe impl Send for Job {}

    struct State {
        epoch: u64,
        job: Option<Job>,
        plans: Vec<Option<ShardPlan>>,
        done_count: usize,
        shutdown: bool,
    }

    struct Shared {
        state: Mutex<State>,
        work: Condvar,
        done: Condvar,
    }

    pub(super) struct Pool {
        shared: Arc<Shared>,
        handles: Vec<JoinHandle<()>>,
    }

    impl Pool {
        /// Spawns `k - 1` workers, for shards `1..k`.
        pub(super) fn new(k: usize) -> Pool {
            let shared = Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    plans: (1..k).map(|_| None).collect(),
                    done_count: 0,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            });
            let handles = (1..k)
                .map(|s| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("drain-shard-{s}"))
                        .spawn(move || worker(&shared, s as u16))
                        .expect("spawn shard worker")
                })
                .collect();
            Pool { shared, handles }
        }

        /// Runs one planning epoch: workers plan shards `1..k` while this
        /// thread plans shard 0; returns all plans ordered by shard id.
        pub(super) fn plan_cycle(
            &self,
            core: &SimCore,
            map: &ShardMap,
            scratch0: &mut PlanScratch,
        ) -> Vec<ShardPlan> {
            {
                let mut st = self.shared.state.lock().expect("pool lock");
                st.job = Some(Job { core, map });
                st.epoch += 1;
                st.done_count = 0;
                self.shared.work.notify_all();
            }
            let plan0 = plan_shard(core, map, 0, scratch0);
            let mut st = self.shared.state.lock().expect("pool lock");
            while st.done_count < st.plans.len() {
                st = self.shared.done.wait(st).expect("pool lock");
            }
            st.job = None;
            let mut plans = Vec::with_capacity(st.plans.len() + 1);
            plans.push(plan0);
            plans.extend(st.plans.iter_mut().map(|p| p.take().expect("worker plan")));
            plans
        }
    }

    impl Drop for Pool {
        fn drop(&mut self) {
            {
                let mut st = self.shared.state.lock().expect("pool lock");
                st.shutdown = true;
                self.shared.work.notify_all();
            }
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }

    fn worker(shared: &Shared, shard: u16) {
        let mut scratch = PlanScratch::default();
        let mut seen = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().expect("pool lock");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch > seen {
                        seen = st.epoch;
                        break st.job.expect("job published with epoch");
                    }
                    st = shared.work.wait(st).expect("pool lock");
                }
            };
            // SAFETY: `plan_cycle` keeps the pointees alive and unmutated
            // until this worker deposits its plan below (the `Job`
            // invariant); only shared references are formed.
            let (core, map) = unsafe { (&*job.core, &*job.map) };
            let plan = plan_shard(core, map, shard, &mut scratch);
            let mut st = shared.state.lock().expect("pool lock");
            st.plans[shard as usize - 1] = Some(plan);
            st.done_count += 1;
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_topology::Topology;

    #[test]
    fn map_assigns_every_slot_and_link() {
        let topo = Topology::mesh(4, 4);
        let map = ShardMap::new(&topo, 4, 6);
        let m = topo.num_unidirectional_links();
        for li in 0..m {
            let l = LinkId(li as u32);
            assert_eq!(map.link_owner(l), map.shard_of_node(topo.link(l).src));
            for s in 0..6 {
                assert_eq!(
                    map.slot_owner(li * 6 + s),
                    map.shard_of_node(topo.link(l).dst)
                );
            }
        }
    }

    /// The per-shard occupancy-word masks partition the slot space
    /// exactly: pairwise disjoint, jointly complete, and each bit agrees
    /// with `slot_owner`. The keyed planners sweep
    /// `occ_bits[wi] & slot_mask[shard][wi]`, so a stray or missing bit
    /// would silently double- or un-route a head.
    #[test]
    fn slot_masks_partition_the_slot_space() {
        for (w, h, k, vcs) in [(4u16, 4u16, 4usize, 6usize), (5, 3, 3, 4), (6, 6, 8, 2), (2, 2, 1, 3)] {
            let topo = Topology::mesh(w, h);
            let map = ShardMap::new(&topo, k, vcs);
            let slots = topo.num_unidirectional_links() * vcs;
            let words = slots.div_ceil(64);
            assert_eq!(map.slot_mask.len(), k);
            for wi in 0..words {
                let mut union = 0u64;
                for shard in 0..k {
                    let m = map.slot_mask[shard][wi];
                    assert_eq!(union & m, 0, "overlapping masks at word {wi} ({w}x{h} k={k})");
                    union |= m;
                }
                let tail = slots - wi * 64;
                let full = if tail >= 64 { u64::MAX } else { (1u64 << tail) - 1 };
                assert_eq!(union, full, "incomplete masks at word {wi} ({w}x{h} k={k})");
            }
            for idx in 0..slots {
                let owner = map.slot_owner(idx) as usize;
                assert_eq!(map.slot_mask[owner][idx / 64] >> (idx % 64) & 1, 1);
            }
        }
    }

    #[test]
    fn fabric_orders_pairs_and_indices() {
        let mut fab = ShardFabric::new(4);
        fab.push(3, 0, 7, 100);
        fab.push(0, 2, 9, 101);
        fab.push(0, 2, 4, 102);
        fab.push(1, 3, 1, 103);
        assert_eq!(fab.len(), 4);
        let mut seen = Vec::new();
        fab.drain_in_order(|from, to, tidx, pid| seen.push((from, to, tidx, pid)));
        assert_eq!(
            seen,
            vec![(0, 2, 4, 102), (0, 2, 9, 101), (1, 3, 1, 103), (3, 0, 7, 100)]
        );
        assert!(fab.is_empty());
        assert_eq!(fab.len(), 0);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn fabric_rejects_too_many_shards() {
        ShardFabric::new(9);
    }
}
