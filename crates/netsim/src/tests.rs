//! Engine-level unit tests: forced moves, freeze semantics, placement and
//! allocation invariants that the mechanism implementations rely on.

use crate::mechanism::{ControlAction, ForcedKind, ForcedMove, Mechanism, NoMechanism};
use crate::routing::FullyAdaptive;
use crate::traffic::{InjectionEvent, SyntheticPattern, SyntheticTraffic, TraceTraffic};
use crate::{MessageClass, Sim, SimConfig, VcRef};
use drain_topology::{NodeId, Topology};

fn quiet_sim(topo: &Topology, config: SimConfig) -> Sim {
    Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::with_deflection(topo, None)),
        Box::new(NoMechanism),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 0)),
    )
}

fn single_vc_config() -> SimConfig {
    SimConfig {
        vns: 1,
        vcs_per_vn: 1,
        num_classes: 1,
        watchdog_threshold: 0,
        ..SimConfig::default()
    }
}

#[test]
fn placed_packet_routes_to_destination() {
    let topo = Topology::mesh(3, 3);
    let mut sim = quiet_sim(&topo, single_vc_config());
    let link = topo.link_between(NodeId(0), NodeId(1)).unwrap();
    sim.core_mut().place_packet(
        VcRef { link, vn: 0, vc: 0 },
        NodeId(0),
        NodeId(8),
        MessageClass::REQUEST,
        1,
    );
    sim.run(50);
    assert_eq!(sim.stats().ejected, 1);
    assert_eq!(sim.core().packets_in_network(), 0);
    // 1 -> 8 is 3 hops on the mesh.
    assert_eq!(sim.stats().hops, 3);
}

#[test]
#[should_panic(expected = "occupied")]
fn double_placement_rejected() {
    let topo = Topology::mesh(3, 3);
    let mut sim = quiet_sim(&topo, single_vc_config());
    let link = topo.link_between(NodeId(0), NodeId(1)).unwrap();
    let r = VcRef { link, vn: 0, vc: 0 };
    sim.core_mut()
        .place_packet(r, NodeId(0), NodeId(8), MessageClass::REQUEST, 1);
    sim.core_mut()
        .place_packet(r, NodeId(0), NodeId(7), MessageClass::REQUEST, 1);
}

/// A mechanism that freezes forever after cycle `from`.
struct FreezeAfter(u64);
impl Mechanism for FreezeAfter {
    fn name(&self) -> &str {
        "freeze-after"
    }
    fn control(&mut self, core: &mut crate::SimCore) -> ControlAction {
        if core.cycle() >= self.0 {
            ControlAction::Freeze
        } else {
            ControlAction::Normal
        }
    }
}

#[test]
fn freeze_stops_all_movement() {
    let topo = Topology::mesh(3, 3);
    let mut sim = Sim::new(
        topo.clone(),
        single_vc_config(),
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(FreezeAfter(20)),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.3, 1, 5)),
    );
    sim.run(20);
    let moved_before = sim.stats().hops;
    assert!(moved_before > 0, "sanity: traffic moved before the freeze");
    let in_net = sim.core().packets_in_network();
    sim.run(100);
    assert_eq!(sim.stats().hops, moved_before, "no hops while frozen");
    assert_eq!(sim.core().packets_in_network(), in_net);
}

/// A mechanism that emits one forced move at a scripted cycle.
struct ForceOnce {
    at: u64,
    mv: ForcedMove,
    done: bool,
}
impl Mechanism for ForceOnce {
    fn name(&self) -> &str {
        "force-once"
    }
    fn control(&mut self, core: &mut crate::SimCore) -> ControlAction {
        if !self.done && core.cycle() == self.at {
            self.done = true;
            ControlAction::Forced(vec![self.mv], ForcedKind::Drain)
        } else {
            ControlAction::Freeze // isolate the forced move
        }
    }
}

#[test]
fn forced_move_relocates_packet() {
    let topo = Topology::mesh(3, 3);
    let from_link = topo.link_between(NodeId(0), NodeId(1)).unwrap();
    let to_link = topo.link_between(NodeId(1), NodeId(2)).unwrap();
    let mv = ForcedMove {
        from: VcRef { link: from_link, vn: 0, vc: 0 },
        to: VcRef { link: to_link, vn: 0, vc: 0 },
    };
    let mut sim = Sim::new(
        topo.clone(),
        single_vc_config(),
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(ForceOnce { at: 3, mv, done: false }),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 0)),
    );
    let pid = sim.core_mut().place_packet(
        VcRef { link: from_link, vn: 0, vc: 0 },
        NodeId(0),
        NodeId(6),
        MessageClass::REQUEST,
        1,
    );
    sim.run(10);
    let p = sim.core().packet(pid);
    assert_eq!(
        p.loc,
        crate::Location::Vc { link: to_link, vn: 0, vc: 0 }
    );
    assert_eq!(p.forced_hops, 1);
    assert_eq!(p.hops, 1);
    // Moving 1 -> 2 while heading for 6 is a misroute.
    assert_eq!(p.misroutes, 1);
    assert_eq!(sim.stats().drains, 1);
}

#[test]
fn forced_move_ejects_at_destination() {
    let topo = Topology::mesh(3, 3);
    let from_link = topo.link_between(NodeId(0), NodeId(1)).unwrap();
    let to_link = topo.link_between(NodeId(1), NodeId(2)).unwrap();
    let mv = ForcedMove {
        from: VcRef { link: from_link, vn: 0, vc: 0 },
        to: VcRef { link: to_link, vn: 0, vc: 0 },
    };
    let mut sim = Sim::new(
        topo.clone(),
        single_vc_config(),
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(ForceOnce { at: 3, mv, done: false }),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 0)),
    );
    // Destination is router 2 = head of the forced hop: must eject.
    sim.core_mut().place_packet(
        VcRef { link: from_link, vn: 0, vc: 0 },
        NodeId(0),
        NodeId(2),
        MessageClass::REQUEST,
        1,
    );
    sim.run(10);
    assert_eq!(sim.stats().ejected, 1);
    assert_eq!(sim.core().packets_in_network(), 0);
}

#[test]
fn cyclic_forced_moves_swap_ring_occupants() {
    // Fill a 4-cycle of buffers and rotate them one hop — the drain/spin
    // permutation primitive.
    let topo = Topology::mesh(3, 3);
    let ring = [(0u16, 1u16), (1, 4), (4, 3), (3, 0)];
    let links: Vec<_> = ring
        .iter()
        .map(|&(a, b)| topo.link_between(NodeId(a), NodeId(b)).unwrap())
        .collect();
    let moves: Vec<ForcedMove> = (0..4)
        .map(|i| ForcedMove {
            from: VcRef { link: links[i], vn: 0, vc: 0 },
            to: VcRef { link: links[(i + 1) % 4], vn: 0, vc: 0 },
        })
        .collect();
    struct ForceSet {
        at: u64,
        moves: Vec<ForcedMove>,
        done: bool,
    }
    impl Mechanism for ForceSet {
        fn name(&self) -> &str {
            "force-set"
        }
        fn control(&mut self, core: &mut crate::SimCore) -> ControlAction {
            if !self.done && core.cycle() == self.at {
                self.done = true;
                ControlAction::Forced(self.moves.clone(), ForcedKind::Spin)
            } else {
                ControlAction::Freeze
            }
        }
    }
    let mut sim = Sim::new(
        topo.clone(),
        single_vc_config(),
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(ForceSet { at: 2, moves, done: false }),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 0)),
    );
    let mut pids = Vec::new();
    for &l in &links {
        // Destinations far away so nobody ejects during the rotation.
        pids.push(sim.core_mut().place_packet(
            VcRef { link: l, vn: 0, vc: 0 },
            NodeId(0),
            NodeId(8),
            MessageClass::REQUEST,
            1,
        ));
    }
    sim.run(5);
    assert_eq!(sim.stats().spins, 1);
    for (i, &pid) in pids.iter().enumerate() {
        let p = sim.core().packet(pid);
        assert_eq!(
            p.loc,
            crate::Location::Vc { link: links[(i + 1) % 4], vn: 0, vc: 0 },
            "packet {i} rotated one slot"
        );
    }
}

#[test]
fn trace_traffic_injects_on_schedule() {
    let topo = Topology::mesh(3, 3);
    let events = vec![
        InjectionEvent {
            cycle: 5,
            src: NodeId(0),
            dest: NodeId(8),
            class: MessageClass::REQUEST,
            len_flits: 1,
        },
        InjectionEvent {
            cycle: 10,
            src: NodeId(8),
            dest: NodeId(0),
            class: MessageClass::REQUEST,
            len_flits: 5,
        },
    ];
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            num_classes: 1,
            vns: 1,
            vcs_per_vn: 2,
            ..SimConfig::default()
        },
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(NoMechanism),
        Box::new(TraceTraffic::new(events)),
    );
    sim.run(4);
    assert_eq!(sim.stats().generated, 0);
    sim.run(2);
    assert_eq!(sim.stats().generated, 1);
    let outcome = sim.run(200);
    assert_eq!(outcome, crate::RunOutcome::WorkloadFinished);
    assert_eq!(sim.stats().ejected, 2);
}

#[test]
fn serialization_throttles_long_packets() {
    // With 5-flit packets, a single link sustains at most 1/5 packets per
    // cycle; check accepted throughput respects serialization.
    let topo = Topology::ring(3);
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            num_classes: 1,
            vns: 1,
            vcs_per_vn: 2,
            watchdog_threshold: 0,
            ..SimConfig::default()
        },
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(NoMechanism),
        Box::new(SyntheticTraffic::new(SyntheticPattern::Neighbor, 1.0, 5, 3)),
    );
    sim.warmup_and_measure(500, 2_000);
    let thpt = sim.stats().throughput(sim.core().cycle(), 3);
    assert!(thpt > 0.05, "some traffic flows: {thpt}");
    assert!(thpt <= 0.21, "serialization caps neighbor traffic: {thpt}");
}

#[test]
fn ejection_queue_capacity_backpressures() {
    // An endpoint that never consumes: the ejection queue fills to its
    // capacity and the network backs up, but nothing is lost.
    struct NoConsume;
    impl crate::traffic::Endpoints for NoConsume {
        fn name(&self) -> &str {
            "no-consume"
        }
        fn pre_cycle(&mut self, _core: &mut crate::SimCore) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let topo = Topology::mesh(3, 3);
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            num_classes: 1,
            vns: 1,
            vcs_per_vn: 2,
            ej_queue_capacity: 2,
            watchdog_threshold: 0,
            ..SimConfig::default()
        },
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(NoMechanism),
        Box::new(NoConsume),
    );
    // Script packets toward one node.
    for i in 0..6u16 {
        let src = NodeId(i);
        sim.core_mut()
            .try_enqueue_packet(src, NodeId(8), MessageClass::REQUEST, 1, 0);
    }
    sim.run(200);
    assert_eq!(
        sim.core().ejection_len(NodeId(8), MessageClass::REQUEST),
        2,
        "queue fills to capacity and holds"
    );
    assert_eq!(sim.stats().ejected, 2);
    let live = sim.core().live_packets();
    assert_eq!(live, 6, "undelivered packets remain live in the network");
}

// ---------------------------------------------------------------------
// Observability: event bus wiring and the flight recorder
// ---------------------------------------------------------------------

/// A saturated 1-VC ring with U-turn-free minimal routing deadlocks fast
/// (same scenario as the detector's own test); with tracing, a flight
/// recorder directory and a progress horizon in no-panic mode, the run
/// must stop with a violation and leave a replayable dump whose final
/// event is the invariant violation carrying the sim seed.
#[test]
fn flight_recorder_dumps_on_invariant_violation() {
    use crate::trace::{TraceConfig, TraceEvent};

    let dir = std::env::temp_dir().join(format!("drain-flightrec-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let topo = Topology::ring(4);
    let config = SimConfig {
        vns: 1,
        vcs_per_vn: 1,
        num_classes: 1,
        watchdog_threshold: 0,
        seed: 0xF11E,
        checks: crate::CheckConfig::full()
            .with_progress_horizon(2_000)
            .no_panic(),
        trace: TraceConfig::events_on().with_flight_recorder(&dir),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(NoMechanism),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.9, 1, 3)),
    );
    let outcome = sim.run(20_000);
    assert_eq!(outcome, crate::RunOutcome::InvariantViolation);
    let v = sim.violation().expect("violation recorded");
    assert_eq!(v.seed, 0xF11E);
    let path = sim.flight_record().expect("flight record written").to_owned();
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("\"flightrec\":\"v1\""));
    assert!(header.contains("\"seed\":61726"), "header: {header}");
    let last = text.lines().last().expect("non-empty dump");
    match TraceEvent::parse_jsonl(last) {
        Ok(TraceEvent::InvariantViolation { seed, kind, .. }) => {
            assert_eq!(seed, 0xF11E);
            assert_eq!(kind, v.kind);
        }
        other => panic!("final dump line should be the violation, got {other:?} from {last}"),
    }
    // Every event line in the dump must parse (snapshot/header lines are
    // the only non-event lines and carry their own discriminators).
    for line in text.lines().skip(1) {
        if line.starts_with("{\"snapshot\"") {
            continue;
        }
        TraceEvent::parse_jsonl(line).unwrap_or_else(|e| panic!("bad dump line {line}: {e}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The watchdog trip emits a trace event and dumps exactly one flight
/// record per run.
#[test]
fn watchdog_trip_emits_event_and_dump() {
    use crate::trace::{TraceConfig, TraceEvent, TraceSink};

    let dir = std::env::temp_dir().join(format!("drain-watchdog-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let topo = Topology::ring(4);
    let config = SimConfig {
        watchdog_threshold: 500,
        trace: TraceConfig::events_on().with_flight_recorder(&dir),
        ..single_vc_config()
    };
    let mut sim = Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(NoMechanism),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.9, 1, 3)),
    );
    sim.set_trace_sink(TraceSink::Memory(Vec::new()));
    sim.run(5_000);
    assert!(sim.stats().watchdog_deadlock, "saturated 1-VC ring wedges");
    let events = sim.core_mut().tracer_mut().take_memory().unwrap();
    let trips: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::WatchdogTrip { .. }))
        .collect();
    assert_eq!(trips.len(), 1, "watchdog trip recorded once");
    assert!(sim.flight_record().is_some());
    let dumps = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(dumps, 1, "one dump per run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hot-path emission: a tiny traced run produces matched inject/eject
/// pairs plus VC-alloc and link-traverse events consistent with stats.
#[test]
fn traced_run_matches_stats() {
    use crate::trace::{TraceEvent, TraceSink};

    let topo = Topology::mesh(2, 2);
    let mut sim = quiet_sim(&topo, single_vc_config());
    sim.set_trace_sink(TraceSink::Memory(Vec::new()));
    for i in 0..3u16 {
        sim.core_mut()
            .try_enqueue_packet(NodeId(i), NodeId(3 - i % 2), MessageClass::REQUEST, 1, 0);
    }
    sim.run(100);
    let stats_ejected = sim.stats().ejected;
    let stats_hops = sim.stats().hops;
    assert!(stats_ejected > 0);
    let events = sim.core_mut().tracer_mut().take_memory().unwrap();
    let count = |f: fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    assert_eq!(count(|e| matches!(e, TraceEvent::Inject { .. })), sim.stats().injected);
    assert_eq!(count(|e| matches!(e, TraceEvent::Eject { .. })), stats_ejected);
    assert_eq!(count(|e| matches!(e, TraceEvent::LinkTraverse { .. })), stats_hops);
    assert_eq!(count(|e| matches!(e, TraceEvent::VcAlloc { .. })), stats_hops);
}

/// Telemetry sampling: cadence, occupancy accounting and sample bounding
/// on a live simulation.
#[test]
fn telemetry_samples_on_cadence() {
    use crate::trace::TraceConfig;

    let topo = Topology::mesh(4, 4);
    let config = SimConfig {
        trace: TraceConfig::default().with_telemetry(64),
        ..single_vc_config()
    };
    let mut sim = Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(NoMechanism),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.1, 1, 11)),
    );
    sim.run(640);
    let samples: Vec<_> = sim.core().telemetry().samples().cloned().collect();
    assert_eq!(samples.len(), 10, "one sample per 64-cycle window");
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.cycle, 64 * (i as u64 + 1) - 1, "samples on window boundaries");
        assert_eq!(s.routers.len(), 16);
        assert_eq!(s.link_flits.len(), topo.num_unidirectional_links());
    }
    let total_flits: u64 = samples.iter().map(|s| s.total_flits()).sum();
    assert!(total_flits > 0, "uniform traffic moves flits");
    assert!(total_flits <= sim.stats().flit_hops);
}
