//! Unified metrics registry, kernel phase profiler, and exposition
//! encoders.
//!
//! Before this module the simulator's numbers were scattered:
//! [`crate::Stats`] counts packets and latency, [`crate::WakeCounters`]
//! counts scheduler events, fast-forward accounting lives on
//! [`crate::Sim`], shard fabric traffic on the shard runtime, check-tier
//! sweeps nowhere at all. [`MetricsSnapshot`] unifies every family under
//! one stable `drain_` namespace as named counters / gauges / histograms
//! that can be merged across sweep workers and exported as Prometheus
//! text exposition or flat JSONL (the same hand-written, dependency-free
//! discipline as [`crate::trace`]).
//!
//! Two cost regimes, mirroring [`crate::telemetry`]:
//!
//! * **Collection is pull-based.** A snapshot reads counters the kernel
//!   maintains anyway; nothing new runs in the hot path, so building one
//!   is O(families) at scrape time and free the rest of the time.
//! * **The phase profiler is push-based but sampled.** When
//!   [`MetricsConfig::profile_period`] is non-zero, every `period`-th
//!   cycle is wall-clock-attributed per phase ([`Phase`]) and per shard.
//!   Disabled (`period == 0`, the default) it costs one predictable
//!   branch per call site, the same `active()` discipline the telemetry
//!   sampler uses.
//!
//! # Determinism contract
//!
//! Nothing here feeds back into simulation state: the profiler reads
//! [`std::time::Instant`] and writes only its own accumulators, and a
//! snapshot borrows the core immutably. Enabling metrics or the profiler
//! therefore cannot shift an RNG draw, a visit order, or a `Stats`
//! counter — golden pins, golden traces and the shard differentials hold
//! byte-identically with profiling on (the differential tests in the
//! bench crate prove it at K ∈ {1, 4}).

use std::fmt::Write as _;
use std::time::Instant;

/// Metrics configuration, part of [`crate::SimConfig`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Kernel phase-profiler sampling cadence in cycles: every
    /// `profile_period`-th stepped cycle gets per-phase wall-time
    /// attribution. `0` (the default) disables the profiler entirely.
    pub profile_period: u64,
}

impl MetricsConfig {
    /// The cadence used when a harness asks for "profiling on" without
    /// picking a number: dense enough for stable shares, sparse enough
    /// that `Instant` reads stay invisible next to a cycle's work.
    pub const DEFAULT_PROFILE_PERIOD: u64 = 64;

    /// Profiler enabled at the given cadence.
    pub fn profiled(period: u64) -> Self {
        MetricsConfig {
            profile_period: period,
        }
    }
}

// ---------------------------------------------------------------------
// Histogram snapshots
// ---------------------------------------------------------------------

/// Number of cumulative `le` buckets in a [`HistogramSnapshot`]: bounds
/// `2^k - 1` for `k ∈ 0..=31`, plus `+Inf`.
pub const HIST_BUCKETS: usize = 33;

/// A fixed-size, heap-free digest of a [`crate::stats::LatencyHistogram`] (or
/// any other sample distribution): total count and sum, observed max,
/// and cumulative counts at power-of-two bounds.
///
/// This is the cheap scrape representation: building one is a single
/// pass over the source histogram's buckets into a stack array — no
/// clone of the 2048-entry exact array per scrape — and merging two is
/// elementwise addition, so sweep workers can aggregate snapshots
/// without touching the originals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest observed sample (not exported in Prometheus text format,
    /// which has no standard slot for it; JSONL exposition carries it).
    pub max: u64,
    /// Cumulative counts: `le[k]` is the number of samples `<= 2^k - 1`
    /// for `k < 32`; `le[32]` is the `+Inf` bucket and equals `count`.
    pub le: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            le: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// The upper bound of bucket `k` (`u64::MAX` encodes `+Inf`).
    pub fn bound(k: usize) -> u64 {
        if k >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Records one sample (used when a distribution is accumulated
    /// directly in snapshot form, e.g. per-job queue-wait times).
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        // `v <= 2^k - 1` iff `bit_length(v) <= k`.
        let first = (u64::BITS - v.leading_zeros()) as usize;
        for b in self.le.iter_mut().skip(first.min(HIST_BUCKETS - 1)) {
            *b += 1;
        }
    }

    /// Merges another snapshot's samples into this one. Elementwise
    /// addition plus a max — exactly associative (the proptest in the
    /// bench crate pins this), so sweep workers may combine partial
    /// snapshots in any grouping.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.le.iter_mut().zip(&other.le) {
            *a += b;
        }
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `p`-quantile from the cumulative buckets: the upper
    /// bound of the first bucket reaching the target rank, clamped to
    /// the observed max. Coarser than
    /// [`crate::stats::LatencyHistogram::quantile`] (which keeps exact counts
    /// below 2048) — use the source histogram when precision matters.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (((self.count as f64) * p).ceil() as u64).max(1);
        for (k, &c) in self.le.iter().enumerate() {
            if c >= target {
                return Self::bound(k).min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

/// Metric family kind, mirroring the Prometheus data model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotonically increasing integer count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Sample distribution ([`HistogramSnapshot`]).
    Histogram,
}

impl MetricKind {
    /// Stable lowercase name, as emitted in `# TYPE` lines.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One metric value.
// Histogram digests are ~280 bytes against the 8-byte scalar variants,
// but a registry holds tens of samples and is rebuilt per scrape —
// boxing would trade that stack space for an allocation per histogram
// on every snapshot (and cost `Copy`).
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram digest.
    Histogram(HistogramSnapshot),
}

/// One sample of a family: a label set plus a value.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricSample {
    /// Label pairs, in insertion order (empty for unlabeled samples).
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// A named metric family: every sample shares the name, kind and help
/// string and differs only in labels.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricFamily {
    /// Fully-qualified metric name (stable `drain_` namespace).
    pub name: String,
    /// One-line description (the `# HELP` text).
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Samples, in insertion order.
    pub samples: Vec<MetricSample>,
}

/// A registry snapshot: every family collected from one source (a
/// simulation, a sweep engine), mergeable across sources and encodable
/// as Prometheus text exposition or flat JSONL.
///
/// Merge semantics per kind: counters and histograms **accumulate**
/// (exact u64 arithmetic, associative in any grouping — sweep workers
/// rely on this); gauges are **right-biased** (the merged-in value wins,
/// also associative). Families are matched by name, samples by label
/// set.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsSnapshot {
    families: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected families, in registration order.
    pub fn families(&self) -> &[MetricFamily] {
        &self.families
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Looks a family up by name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    fn family_mut(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut MetricFamily {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert_eq!(
                self.families[i].kind, kind,
                "metric {name} re-registered with a different kind"
            );
            return &mut self.families[i];
        }
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn upsert(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: MetricValue,
    ) {
        let fam = self.family_mut(name, help, kind);
        let pos = fam.samples.iter().position(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        });
        match pos {
            Some(i) => merge_value(&mut fam.samples[i].value, &value),
            None => fam.samples.push(MetricSample {
                labels: labels
                    .iter()
                    .map(|&(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value,
            }),
        }
    }

    /// Registers (or accumulates into) an unlabeled counter.
    pub fn counter(&mut self, name: &str, help: &str, v: u64) {
        self.upsert(name, help, MetricKind::Counter, &[], MetricValue::Counter(v));
    }

    /// Registers (or accumulates into) a labeled counter sample.
    pub fn counter_labeled(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        self.upsert(name, help, MetricKind::Counter, labels, MetricValue::Counter(v));
    }

    /// Registers (or overwrites) an unlabeled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, v: f64) {
        self.upsert(name, help, MetricKind::Gauge, &[], MetricValue::Gauge(v));
    }

    /// Registers (or overwrites) a labeled gauge sample.
    pub fn gauge_labeled(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        self.upsert(name, help, MetricKind::Gauge, labels, MetricValue::Gauge(v));
    }

    /// Registers (or merges into) an unlabeled histogram.
    pub fn histogram(&mut self, name: &str, help: &str, h: HistogramSnapshot) {
        self.upsert(name, help, MetricKind::Histogram, &[], MetricValue::Histogram(h));
    }

    /// The value of an unlabeled counter, when present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.family(name)?.samples.first()?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of a labeled counter sample, when present.
    pub fn counter_value_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let fam = self.family(name)?;
        let s = fam.samples.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        })?;
        match s.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of an unlabeled gauge, when present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.family(name)?.samples.first()?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Merges another snapshot into this one (see the type docs for the
    /// per-kind semantics). Families and samples unknown on this side
    /// are appended in the other side's order, so merging is
    /// deterministic given deterministic inputs.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for fam in &other.families {
            for s in &fam.samples {
                let labels: Vec<(&str, &str)> = s
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                self.upsert(&fam.name, &fam.help, fam.kind, &labels, s.value);
            }
        }
    }

    // -----------------------------------------------------------------
    // Prometheus text exposition
    // -----------------------------------------------------------------

    /// Encodes the snapshot as Prometheus text exposition format
    /// (`text/plain; version=0.0.4`): `# HELP` / `# TYPE` headers per
    /// family, histogram expansion into `_bucket{le=...}` / `_sum` /
    /// `_count` series. Deterministic: same snapshot, same bytes.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.name());
            for s in &fam.samples {
                match &s.value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(out, "{}{} {}", fam.name, label_str(&s.labels, &[]), v);
                    }
                    MetricValue::Gauge(v) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            fam.name,
                            label_str(&s.labels, &[]),
                            fmt_f64(*v)
                        );
                    }
                    MetricValue::Histogram(h) => {
                        for (k, &c) in h.le.iter().enumerate() {
                            let le = if k == HIST_BUCKETS - 1 {
                                "+Inf".to_string()
                            } else {
                                HistogramSnapshot::bound(k).to_string()
                            };
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                fam.name,
                                label_str(&s.labels, &[("le", &le)]),
                                c
                            );
                        }
                        let _ =
                            writeln!(out, "{}_sum{} {}", fam.name, label_str(&s.labels, &[]), h.sum);
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            fam.name,
                            label_str(&s.labels, &[]),
                            h.count
                        );
                    }
                }
            }
        }
        out
    }

    /// Parses text exposition produced by
    /// [`MetricsSnapshot::to_prometheus`] back into a snapshot
    /// (histograms are reassembled from their `_bucket`/`_sum`/`_count`
    /// series; the non-standard `max` is not carried by the wire format
    /// and parses back as the largest non-empty bucket bound). The
    /// round-trip test pins `encode(parse(encode(s))) == encode(s)`.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line.
    pub fn parse_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::new();
        let mut cur_kind = MetricKind::Gauge;
        let mut cur_name = String::new();
        let mut cur_help = String::new();
        // Histogram accumulation state for the family being parsed.
        let mut hist: Option<(Vec<(String, String)>, HistogramSnapshot)> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |m: &str| format!("line {}: {m}: {raw}", ln + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
                cur_name = name.to_string();
                cur_help = unescape_help(help);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').ok_or_else(|| err("bad TYPE"))?;
                if name != cur_name {
                    cur_name = name.to_string();
                    cur_help.clear();
                }
                cur_kind = match kind {
                    "counter" => MetricKind::Counter,
                    "gauge" => MetricKind::Gauge,
                    "histogram" => MetricKind::Histogram,
                    other => return Err(err(&format!("unknown kind {other}"))),
                };
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (key, value) = line.rsplit_once(' ').ok_or_else(|| err("no value"))?;
            let (name, labels) = parse_labels(key).map_err(|m| err(&m))?;
            match cur_kind {
                MetricKind::Counter => {
                    let v: u64 = value.parse().map_err(|_| err("bad counter value"))?;
                    let l: Vec<(&str, &str)> =
                        labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                    snap.upsert(&name, &cur_help, cur_kind, &l, MetricValue::Counter(v));
                }
                MetricKind::Gauge => {
                    let v: f64 = value.parse().map_err(|_| err("bad gauge value"))?;
                    let l: Vec<(&str, &str)> =
                        labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                    snap.upsert(&name, &cur_help, cur_kind, &l, MetricValue::Gauge(v));
                }
                MetricKind::Histogram => {
                    let v: u64 = value.parse().map_err(|_| err("bad histogram value"))?;
                    if name == format!("{cur_name}_bucket") {
                        let le = labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .map(|(_, v)| v.clone())
                            .ok_or_else(|| err("bucket without le"))?;
                        let rest: Vec<(String, String)> = labels
                            .iter()
                            .filter(|(k, _)| k != "le")
                            .cloned()
                            .collect();
                        let (_, h) = hist.get_or_insert_with(|| (rest.clone(), HistogramSnapshot::default()));
                        let k = if le == "+Inf" {
                            HIST_BUCKETS - 1
                        } else {
                            let bound: u64 = le.parse().map_err(|_| err("bad le"))?;
                            (0..HIST_BUCKETS - 1)
                                .find(|&k| HistogramSnapshot::bound(k) == bound)
                                .ok_or_else(|| err("le off the 2^k - 1 grid"))?
                        };
                        h.le[k] = v;
                    } else if name == format!("{cur_name}_sum") {
                        if let Some((_, h)) = hist.as_mut() {
                            h.sum = v;
                        }
                    } else if name == format!("{cur_name}_count") {
                        let (lbls, mut h) = hist.take().unwrap_or_default();
                        h.count = v;
                        // Best-effort max: the largest non-empty bound.
                        h.max = (0..HIST_BUCKETS - 1)
                            .rev()
                            .find(|&k| h.le[k] < h.count)
                            .map(|k| HistogramSnapshot::bound(k + 1))
                            .unwrap_or(0);
                        let l: Vec<(&str, &str)> =
                            lbls.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                        snap.upsert(
                            &cur_name,
                            &cur_help,
                            MetricKind::Histogram,
                            &l,
                            MetricValue::Histogram(h),
                        );
                    } else {
                        return Err(err("unexpected histogram series"));
                    }
                }
            }
        }
        Ok(snap)
    }

    // -----------------------------------------------------------------
    // JSONL exposition
    // -----------------------------------------------------------------

    /// Encodes the snapshot as one flat JSONL object, mergeable into the
    /// telemetry stream the harness already writes: `{"kind":"metrics",
    /// "cycle":N, "<series>":value, ...}`. Labeled samples use their
    /// exposition key (`name{k="v"}`) as the JSON key; histograms expand
    /// to `_count`/`_sum`/`_max`/`_p50`/`_p99`.
    pub fn to_jsonl(&self, cycle: u64) -> String {
        let mut out = String::from("{\"kind\":\"metrics\"");
        let _ = write!(out, ",\"cycle\":{cycle}");
        for fam in &self.families {
            for s in &fam.samples {
                let key = format!("{}{}", fam.name, label_str(&s.labels, &[]));
                match &s.value {
                    MetricValue::Counter(v) => {
                        let _ = write!(out, ",{}:{}", json_str(&key), v);
                    }
                    MetricValue::Gauge(v) => {
                        let _ = write!(out, ",{}:{}", json_str(&key), fmt_f64(*v));
                    }
                    MetricValue::Histogram(h) => {
                        let _ = write!(out, ",{}:{}", json_str(&format!("{key}_count")), h.count);
                        let _ = write!(out, ",{}:{}", json_str(&format!("{key}_sum")), h.sum);
                        let _ = write!(out, ",{}:{}", json_str(&format!("{key}_max")), h.max);
                        let _ = write!(
                            out,
                            ",{}:{}",
                            json_str(&format!("{key}_p50")),
                            h.quantile(0.5)
                        );
                        let _ = write!(
                            out,
                            ",{}:{}",
                            json_str(&format!("{key}_p99")),
                            h.quantile(0.99)
                        );
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

fn merge_value(into: &mut MetricValue, from: &MetricValue) {
    match (into, from) {
        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
        (into, from) => panic!("metric kind mismatch merging {from:?} into {into:?}"),
    }
}

/// Formats labels as `{k="v",...}` (empty string when there are none);
/// `extra` pairs are appended after the sample's own labels.
fn label_str(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Parses `name` or `name{k="v",...}` into (name, labels).
fn parse_labels(key: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(brace) = key.find('{') else {
        return Ok((key.to_string(), Vec::new()));
    };
    let name = key[..brace].to_string();
    let body = key[brace + 1..]
        .strip_suffix('}')
        .ok_or("unterminated label set")?;
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without =")?;
        let k = rest[..eq].to_string();
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        // Scan to the closing quote, honouring backslash escapes.
        let mut val = String::new();
        let mut chars = after.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => val.push('\n'),
                    Some((_, e)) => val.push(e),
                    None => return Err("dangling escape".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => val.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((k, val));
        rest = after[end + 1..].strip_prefix(',').unwrap_or(&after[end + 1..]);
    }
    Ok((name, labels))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(e) => out.push(e),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Formats an `f64` so it parses back exactly ({} is Rust's shortest
/// round-trip form) while keeping integral values integral-looking.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Minimal JSON string encoder for controlled metric keys.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Kernel phase profiler
// ---------------------------------------------------------------------

/// Number of attributed phases (see [`Phase`]).
pub const NUM_PHASES: usize = 8;

/// One phase of the per-cycle engine, for wall-time attribution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Endpoint models: traffic generation, delivery consumption.
    Endpoints = 0,
    /// Mechanism control (drain/spin/freeze decisions) plus the
    /// structural deadlock detector and watchdog instrumentation.
    Mechanism = 1,
    /// Phase A: routing, parking, and wake bookkeeping (serial sweep or
    /// the sharded planners including their barrier).
    PhaseA = 2,
    /// Phase B: ejection and link grants, commits (serial or the
    /// sharded barrier merge).
    PhaseB = 3,
    /// Cross-shard fabric drain at the cycle barrier.
    Fabric = 4,
    /// Forced permutation cycles (drains, spins).
    Forced = 5,
    /// Runtime invariant checks.
    Checks = 6,
    /// Telemetry sampling.
    Telemetry = 7,
}

impl Phase {
    /// Every phase, in attribution order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Endpoints,
        Phase::Mechanism,
        Phase::PhaseA,
        Phase::PhaseB,
        Phase::Fabric,
        Phase::Forced,
        Phase::Checks,
        Phase::Telemetry,
    ];

    /// Stable label, used in the `phase` label of
    /// `drain_profile_phase_nanos_total`.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Endpoints => "endpoints",
            Phase::Mechanism => "mechanism",
            Phase::PhaseA => "phase_a",
            Phase::PhaseB => "phase_b",
            Phase::Fabric => "fabric",
            Phase::Forced => "forced",
            Phase::Checks => "checks",
            Phase::Telemetry => "telemetry",
        }
    }
}

/// Scoped wall-time attribution per cycle phase and per shard, sampled
/// every [`MetricsConfig::profile_period`] cycles.
///
/// The driver brackets each sampled cycle with
/// [`PhaseProfiler::begin_cycle`] / [`PhaseProfiler::end_cycle`] and
/// drops a [`PhaseProfiler::mark`] at each phase boundary; `mark`
/// attributes the wall time elapsed since the previous mark to the named
/// phase. Unsampled cycles (and the disabled profiler) cost one bool
/// check per call site. Shard planners report their own plan wall time
/// through [`PhaseProfiler::note_shard`].
///
/// Determinism: the profiler reads the wall clock and writes only its
/// own accumulators — simulation state, RNG draws and `Stats` are
/// untouched, so results are byte-identical with profiling on or off.
#[derive(Debug)]
pub struct PhaseProfiler {
    period: u64,
    active: bool,
    mark_at: Instant,
    cycle_start: Instant,
    phase_nanos: [u64; NUM_PHASES],
    shard_nanos: [u64; 8],
    cycle_nanos: u64,
    sampled: u64,
}

impl PhaseProfiler {
    /// A profiler sampling every `period` cycles (0 = disabled).
    pub fn new(period: u64) -> Self {
        let now = Instant::now();
        PhaseProfiler {
            period,
            active: false,
            mark_at: now,
            cycle_start: now,
            phase_nanos: [0; NUM_PHASES],
            shard_nanos: [0; 8],
            cycle_nanos: 0,
            sampled: 0,
        }
    }

    /// Whether the profiler is configured at all (any cadence).
    pub fn enabled(&self) -> bool {
        self.period > 0
    }

    /// The sampling cadence (0 = disabled).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Whether the current cycle is being attributed. Hot paths guard
    /// their marks behind this (one bool read).
    #[inline(always)]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Opens a cycle: decides whether `cycle` is sampled and stamps the
    /// phase clock. One branch when disabled.
    #[inline]
    pub fn begin_cycle(&mut self, cycle: u64) {
        if self.period == 0 {
            return;
        }
        self.active = cycle.is_multiple_of(self.period);
        if self.active {
            let now = Instant::now();
            self.cycle_start = now;
            self.mark_at = now;
        }
    }

    /// Attributes the wall time since the previous mark to `phase` and
    /// restamps the clock. One branch when the cycle is not sampled.
    #[inline]
    pub fn mark(&mut self, phase: Phase) {
        if !self.active {
            return;
        }
        let now = Instant::now();
        self.phase_nanos[phase as usize] +=
            now.duration_since(self.mark_at).as_nanos() as u64;
        self.mark_at = now;
    }

    /// Credits `nanos` of planning wall time to `shard` (reported by the
    /// sharded kernel's workers for sampled cycles).
    #[inline]
    pub fn note_shard(&mut self, shard: usize, nanos: u64) {
        if self.active {
            self.shard_nanos[shard.min(7)] += nanos;
        }
    }

    /// Closes a sampled cycle: accounts total cycle wall time.
    #[inline]
    pub fn end_cycle(&mut self) {
        if !self.active {
            return;
        }
        self.active = false;
        self.cycle_nanos += self.cycle_start.elapsed().as_nanos() as u64;
        self.sampled += 1;
    }

    /// Sampled cycles so far.
    pub fn sampled_cycles(&self) -> u64 {
        self.sampled
    }

    /// Total wall nanoseconds across sampled cycles.
    pub fn cycle_nanos(&self) -> u64 {
        self.cycle_nanos
    }

    /// Accumulated wall nanoseconds attributed to `phase`.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase as usize]
    }

    /// Accumulated planning wall nanoseconds credited to `shard`.
    pub fn shard_nanos(&self, shard: usize) -> u64 {
        self.shard_nanos.get(shard).copied().unwrap_or(0)
    }

    /// Sampled-cycle wall time not attributed to any phase (cycle
    /// bookkeeping, the marks themselves).
    pub fn other_nanos(&self) -> u64 {
        self.cycle_nanos
            .saturating_sub(self.phase_nanos.iter().sum())
    }

    /// Per-phase share of sampled-cycle wall time, plus an `"other"`
    /// row; the shares sum to 1.0 by construction (empty when nothing
    /// was sampled).
    pub fn shares(&self) -> Vec<(&'static str, f64)> {
        if self.cycle_nanos == 0 {
            return Vec::new();
        }
        let total = self.cycle_nanos as f64;
        let mut out: Vec<(&'static str, f64)> = Phase::ALL
            .iter()
            .map(|&p| (p.name(), self.phase_nanos[p as usize] as f64 / total))
            .collect();
        out.push(("other", self.other_nanos() as f64 / total));
        out
    }

    /// Registers the profiler's accumulators into a snapshot under the
    /// `drain_profile_` namespace (`shards` bounds the per-shard series;
    /// pass 1 to omit it for serial runs).
    pub fn collect(&self, out: &mut MetricsSnapshot, shards: usize) {
        if !self.enabled() {
            return;
        }
        out.counter(
            "drain_profile_sampled_cycles_total",
            "Cycles the phase profiler attributed",
            self.sampled,
        );
        out.counter(
            "drain_profile_cycle_nanos_total",
            "Total wall nanoseconds across sampled cycles",
            self.cycle_nanos,
        );
        for &p in &Phase::ALL {
            out.counter_labeled(
                "drain_profile_phase_nanos_total",
                "Wall nanoseconds attributed per cycle phase over sampled cycles",
                &[("phase", p.name())],
                self.phase_nanos[p as usize],
            );
        }
        out.counter_labeled(
            "drain_profile_phase_nanos_total",
            "Wall nanoseconds attributed per cycle phase over sampled cycles",
            &[("phase", "other")],
            self.other_nanos(),
        );
        if shards > 1 {
            for s in 0..shards.min(8) {
                let label = s.to_string();
                out.counter_labeled(
                    "drain_profile_shard_plan_nanos_total",
                    "Planning wall nanoseconds per shard over sampled cycles",
                    &[("shard", label.as_str())],
                    self.shard_nanos[s],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_snapshot_records_and_quantiles() {
        let mut h = HistogramSnapshot::default();
        for v in [0u64, 1, 2, 3, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 5106);
        assert_eq!(h.max, 5000);
        assert_eq!(h.le[0], 1, "one zero sample at le=0");
        assert_eq!(h.le[1], 2, "0 and 1 at le=1");
        assert_eq!(h.le[2], 4, "0..=3 at le=3");
        assert_eq!(h.le[HIST_BUCKETS - 1], 6, "+Inf sees everything");
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(1.0) <= h.max);
    }

    #[test]
    fn histogram_snapshot_merge_matches_joint_recording() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        let mut joint = HistogramSnapshot::default();
        for v in [1u64, 7, 130] {
            a.record(v);
            joint.record(v);
        }
        for v in [2u64, 9000] {
            b.record(v);
            joint.record(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn registry_accumulates_counters_and_overwrites_gauges() {
        let mut s = MetricsSnapshot::new();
        s.counter("drain_x_total", "x", 3);
        s.counter("drain_x_total", "x", 4);
        assert_eq!(s.counter_value("drain_x_total"), Some(7));
        s.gauge("drain_g", "g", 1.5);
        s.gauge("drain_g", "g", 2.5);
        assert_eq!(s.gauge_value("drain_g"), Some(2.5));
        s.counter_labeled("drain_l_total", "l", &[("k", "a")], 1);
        s.counter_labeled("drain_l_total", "l", &[("k", "b")], 2);
        s.counter_labeled("drain_l_total", "l", &[("k", "a")], 10);
        assert_eq!(
            s.counter_value_labeled("drain_l_total", &[("k", "a")]),
            Some(11)
        );
        assert_eq!(
            s.counter_value_labeled("drain_l_total", &[("k", "b")]),
            Some(2)
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_conflicts() {
        let mut s = MetricsSnapshot::new();
        s.counter("drain_x", "x", 1);
        s.gauge("drain_x", "x", 1.0);
    }

    #[test]
    fn merge_is_associative_on_counters() {
        let build = |v: u64| {
            let mut s = MetricsSnapshot::new();
            s.counter("drain_a_total", "a", v);
            s.counter_labeled("drain_b_total", "b", &[("k", "x")], v * 2);
            s
        };
        let (a, b, c) = (build(1), build(10), build(100));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.counter_value("drain_a_total"), Some(111));
    }

    #[test]
    fn prometheus_encoding_shape() {
        let mut s = MetricsSnapshot::new();
        s.counter("drain_x_total", "packets seen", 42);
        s.gauge_labeled("drain_g", "a gauge", &[("shard", "0")], 0.5);
        let mut h = HistogramSnapshot::default();
        h.record(3);
        h.record(500);
        s.histogram("drain_h_cycles", "latency", h);
        let text = s.to_prometheus();
        assert!(text.contains("# HELP drain_x_total packets seen"));
        assert!(text.contains("# TYPE drain_x_total counter"));
        assert!(text.contains("drain_x_total 42"));
        assert!(text.contains("drain_g{shard=\"0\"} 0.5"));
        assert!(text.contains("drain_h_cycles_bucket{le=\"3\"} 1"));
        assert!(text.contains("drain_h_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("drain_h_cycles_sum 503"));
        assert!(text.contains("drain_h_cycles_count 2"));
    }

    #[test]
    fn prometheus_round_trip_is_stable() {
        let mut s = MetricsSnapshot::new();
        s.counter("drain_x_total", "counts with spaces in help", 7);
        s.gauge("drain_rate", "a fractional gauge", 0.125);
        s.counter_labeled("drain_wake_events_total", "wake", &[("event", "parks")], 5);
        s.counter_labeled("drain_wake_events_total", "wake", &[("event", "skips")], 9);
        let mut h = HistogramSnapshot::default();
        for v in [1u64, 2, 3, 4096] {
            h.record(v);
        }
        s.histogram("drain_lat_cycles", "latency", h);
        let once = s.to_prometheus();
        let parsed = MetricsSnapshot::parse_prometheus(&once).expect("parses");
        assert_eq!(parsed.to_prometheus(), once, "encode∘parse is identity on encodings");
        assert_eq!(parsed.counter_value("drain_x_total"), Some(7));
        assert_eq!(
            parsed.counter_value_labeled("drain_wake_events_total", &[("event", "skips")]),
            Some(9)
        );
    }

    #[test]
    fn jsonl_line_is_flat_and_tagged() {
        let mut s = MetricsSnapshot::new();
        s.counter("drain_x_total", "x", 3);
        let mut h = HistogramSnapshot::default();
        h.record(10);
        s.histogram("drain_h", "h", h);
        let line = s.to_jsonl(1234);
        assert!(line.starts_with("{\"kind\":\"metrics\",\"cycle\":1234"));
        assert!(line.contains("\"drain_x_total\":3"));
        assert!(line.contains("\"drain_h_count\":1"));
        assert!(line.contains("\"drain_h_max\":10"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn profiler_disabled_is_inert() {
        let mut p = PhaseProfiler::new(0);
        p.begin_cycle(0);
        assert!(!p.active());
        p.mark(Phase::PhaseA);
        p.end_cycle();
        assert_eq!(p.sampled_cycles(), 0);
        assert_eq!(p.cycle_nanos(), 0);
        let mut out = MetricsSnapshot::new();
        p.collect(&mut out, 4);
        assert!(out.is_empty(), "disabled profiler registers nothing");
    }

    #[test]
    fn profiler_samples_on_cadence_and_shares_sum_to_one() {
        let mut p = PhaseProfiler::new(4);
        for cycle in 0..8u64 {
            p.begin_cycle(cycle);
            assert_eq!(p.active(), cycle % 4 == 0);
            std::hint::black_box((0..100).sum::<u64>());
            p.mark(Phase::PhaseA);
            std::hint::black_box((0..100).sum::<u64>());
            p.mark(Phase::PhaseB);
            p.end_cycle();
        }
        assert_eq!(p.sampled_cycles(), 2);
        assert!(p.cycle_nanos() >= p.phase_nanos(Phase::PhaseA) + p.phase_nanos(Phase::PhaseB));
        let total: f64 = p.shares().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1.0, got {total}");
        let mut out = MetricsSnapshot::new();
        p.collect(&mut out, 2);
        assert_eq!(
            out.counter_value("drain_profile_sampled_cycles_total"),
            Some(2)
        );
        assert!(out.family("drain_profile_shard_plan_nanos_total").is_some());
    }
}
