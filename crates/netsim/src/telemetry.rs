//! Periodic telemetry sampling: per-router and per-link time series.
//!
//! Where [`crate::trace`] records individual events, this module records
//! *rates*: every [`crate::trace::TraceConfig::telemetry_period`] cycles
//! the core snapshots per-router VC occupancy, injection/ejection queue
//! depths and credit-stall counts, plus per-link flit counts, as one
//! [`TelemetrySample`]. Samples accumulate in a bounded in-memory series
//! (oldest dropped first) that harness binaries export as JSONL.
//!
//! Cost model: the only per-event work while sampling is active is two
//! counter increments in the allocation hot path (link flits, credit
//! stalls), both behind an `active()` flag that is false by default; the
//! O(VCs + routers) sweep happens only on sample boundaries.
//!
//! Sampling coexists with idle fast-forward: a jump that elides one or
//! more sample boundaries emits a *single* sample stamped at the last
//! elided boundary (the network is frozen across the jump, so that one
//! sample describes every skipped window exactly — the delta counters
//! are all zero for the idle stretch). Successive sample stamps are
//! therefore always boundary cycles, but may skip windows; consumers
//! should key on [`TelemetrySample::cycle`], not assume a fixed stride.

use std::collections::VecDeque;

use crate::trace::TraceConfig;

/// One router's state at a sample boundary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterTelemetry {
    /// VC buffers (across this router's input ports) currently occupied.
    pub occupied_vcs: u32,
    /// Packets waiting in the node's injection queues (all classes).
    pub inj_depth: u32,
    /// Packets parked in the node's ejection queues (all classes).
    pub ej_depth: u32,
    /// Credit stalls charged to this router during the sample window: a
    /// resident packet (or granted ejection) that could not even *request*
    /// a move because every feasible downstream buffer or the ejection
    /// queue was full. Losing arbitration is not a stall.
    pub credit_stalls: u64,
}

/// One telemetry sample: the network's state over one sampling window.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySample {
    /// Cycle the sample was taken at (the window's last cycle).
    pub cycle: u64,
    /// 1-based sample index.
    pub window: u64,
    /// Per-router series, indexed by node id.
    pub routers: Vec<RouterTelemetry>,
    /// Flits serialized per unidirectional link during the window.
    pub link_flits: Vec<u64>,
}

impl TelemetrySample {
    /// Per-link utilization (flits per cycle, in `[0, 1]`) over a window of
    /// `period` cycles.
    pub fn link_utilization(&self, period: u64) -> Vec<f64> {
        let p = period.max(1) as f64;
        self.link_flits.iter().map(|&f| f as f64 / p).collect()
    }

    /// Total flit-link traversals in the window.
    pub fn total_flits(&self) -> u64 {
        self.link_flits.iter().sum()
    }
}

/// The sampler: cumulative hot-path counters plus the bounded sample
/// series. Owned by [`crate::SimCore`].
#[derive(Clone, Debug)]
pub struct Telemetry {
    period: u64,
    capacity: usize,
    /// Cumulative flits serialized per link (all time).
    link_flits: Vec<u64>,
    /// Cumulative credit stalls per router (all time).
    credit_stalls: Vec<u64>,
    /// Cumulative values at the previous sample boundary (for deltas).
    prev_link_flits: Vec<u64>,
    prev_credit_stalls: Vec<u64>,
    samples: VecDeque<TelemetrySample>,
    taken: u64,
    dropped: u64,
    /// Recycled per-router scratch vectors: samples evicted from the
    /// bounded series donate their `routers` allocation back here so
    /// steady-state sampling allocates nothing.
    router_pool: Vec<Vec<RouterTelemetry>>,
}

impl Telemetry {
    /// Builds a sampler for a network with the given link and router
    /// counts. A zero `telemetry_period` leaves it inactive (no hot-path
    /// counting, no samples).
    pub fn new(config: &TraceConfig, num_links: usize, num_routers: usize) -> Self {
        let active = config.telemetry_period > 0;
        let links = if active { num_links } else { 0 };
        let routers = if active { num_routers } else { 0 };
        Telemetry {
            period: config.telemetry_period,
            capacity: config.telemetry_capacity.max(1),
            link_flits: vec![0; links],
            credit_stalls: vec![0; routers],
            prev_link_flits: vec![0; links],
            prev_credit_stalls: vec![0; routers],
            samples: VecDeque::new(),
            taken: 0,
            dropped: 0,
            router_pool: Vec::new(),
        }
    }

    /// Whether sampling is on. Hot paths must count only behind this.
    #[inline(always)]
    pub fn active(&self) -> bool {
        self.period > 0
    }

    /// The sampling period in cycles (0 = inactive).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Charges `flits` serialized on `link` to the current window.
    #[inline]
    pub(crate) fn note_link_flits(&mut self, link: usize, flits: u64) {
        self.link_flits[link] += flits;
    }

    /// Charges one credit stall to `router` in the current window.
    #[inline]
    pub(crate) fn note_credit_stalls(&mut self, router: usize, n: u64) {
        self.credit_stalls[router] += n;
    }

    /// Hands out a zeroed per-router scratch vector of length `n`,
    /// reusing an allocation recycled from an evicted sample when one is
    /// available. Pass it back via [`Telemetry::push_sample`].
    pub(crate) fn checkout_routers(&mut self, n: usize) -> Vec<RouterTelemetry> {
        let mut v = self.router_pool.pop().unwrap_or_default();
        v.clear();
        v.resize(n, RouterTelemetry::default());
        v
    }

    /// Closes the current window: computes per-link / per-router deltas
    /// since the previous boundary and appends a sample assembled from
    /// them plus the caller-provided occupancy/queue sweeps.
    pub(crate) fn push_sample(
        &mut self,
        cycle: u64,
        mut routers: Vec<RouterTelemetry>,
    ) -> &TelemetrySample {
        self.taken += 1;
        let link_flits: Vec<u64> = self
            .link_flits
            .iter()
            .zip(&self.prev_link_flits)
            .map(|(&now, &prev)| now - prev)
            .collect();
        self.prev_link_flits.copy_from_slice(&self.link_flits);
        for (r, (&now, &prev)) in routers
            .iter_mut()
            .zip(self.credit_stalls.iter().zip(&self.prev_credit_stalls))
        {
            r.credit_stalls = now - prev;
        }
        self.prev_credit_stalls.copy_from_slice(&self.credit_stalls);
        if self.samples.len() == self.capacity {
            if let Some(evicted) = self.samples.pop_front() {
                self.router_pool.push(evicted.routers);
            }
            self.dropped += 1;
        }
        self.samples.push_back(TelemetrySample {
            cycle,
            window: self.taken,
            routers,
            link_flits,
        });
        self.samples.back().expect("just pushed")
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TelemetrySample> {
        self.samples.iter()
    }

    /// Takes the retained samples, leaving the series empty (counters and
    /// delta baselines are kept, so sampling continues seamlessly).
    pub fn take_samples(&mut self) -> Vec<TelemetrySample> {
        self.samples.drain(..).collect()
    }

    /// Total samples taken (including any dropped from the bounded series).
    pub fn samples_taken(&self) -> u64 {
        self.taken
    }

    /// Samples dropped due to the capacity bound.
    pub fn samples_dropped(&self) -> u64 {
        self.dropped
    }

    /// Cumulative credit stalls charged to `router` (all time).
    pub fn total_credit_stalls(&self, router: usize) -> u64 {
        self.credit_stalls.get(router).copied().unwrap_or(0)
    }

    /// Cumulative flits serialized on `link` (all time).
    pub fn total_link_flits(&self, link: usize) -> u64 {
        self.link_flits.get(link).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(period: u64, capacity: usize) -> TraceConfig {
        TraceConfig {
            telemetry_period: period,
            telemetry_capacity: capacity,
            ..TraceConfig::default()
        }
    }

    fn empty_routers(n: usize) -> Vec<RouterTelemetry> {
        (0..n)
            .map(|_| RouterTelemetry {
                occupied_vcs: 0,
                inj_depth: 0,
                ej_depth: 0,
                credit_stalls: 0,
            })
            .collect()
    }

    #[test]
    fn inactive_by_default() {
        let t = Telemetry::new(&TraceConfig::default(), 8, 4);
        assert!(!t.active());
        assert_eq!(t.samples().count(), 0);
    }

    #[test]
    fn deltas_reset_each_window() {
        let mut t = Telemetry::new(&config(10, 16), 2, 2);
        t.note_link_flits(0, 5);
        t.note_credit_stalls(1, 3);
        let s1 = t.push_sample(9, empty_routers(2)).clone();
        assert_eq!(s1.link_flits, vec![5, 0]);
        assert_eq!(s1.routers[1].credit_stalls, 3);
        t.note_link_flits(0, 2);
        t.note_link_flits(1, 7);
        let s2 = t.push_sample(19, empty_routers(2)).clone();
        assert_eq!(s2.link_flits, vec![2, 7], "second window sees only its own flits");
        assert_eq!(s2.routers[1].credit_stalls, 0);
        assert_eq!(s2.window, 2);
        assert_eq!(t.total_link_flits(0), 7);
    }

    #[test]
    fn series_is_bounded() {
        let mut t = Telemetry::new(&config(1, 3), 1, 1);
        for c in 0..10 {
            t.push_sample(c, empty_routers(1));
        }
        assert_eq!(t.samples().count(), 3);
        assert_eq!(t.samples_taken(), 10);
        assert_eq!(t.samples_dropped(), 7);
        let first = t.samples().next().unwrap();
        assert_eq!(first.cycle, 7, "oldest samples dropped first");
    }

    #[test]
    fn utilization_normalizes_by_period() {
        let mut t = Telemetry::new(&config(10, 4), 2, 1);
        t.note_link_flits(0, 5);
        let s = t.push_sample(9, empty_routers(1)).clone();
        let u = s.link_utilization(10);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
        assert_eq!(s.total_flits(), 5);
    }
}
