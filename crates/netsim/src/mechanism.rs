//! Deadlock-freedom mechanism hook.
//!
//! A [`Mechanism`] is consulted once per cycle, *before* normal allocation,
//! and steers the whole network through a [`ControlAction`]:
//!
//! * `Normal` — routers allocate and move packets as usual;
//! * `Freeze` — no new grants this cycle (DRAIN's pre-drain credit freeze,
//!   or the serialization tail of a forced movement);
//! * `Forced` — an atomic set of forced one-hop movements that overrides
//!   the allocators (a DRAIN drain step or a SPIN spin).
//!
//! DRAIN itself is implemented in the `drain-core` crate and the reactive
//! baselines in `drain-baselines`; this module only defines the interface
//! plus [`NoMechanism`] (used for plain escape-VC runs and the Fig 3
//! deadlock-likelihood study).

use crate::state::{SimCore, VcRef};

/// Why a forced movement happened (statistics attribution).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForcedKind {
    /// A periodic DRAIN drain-window hop.
    Drain,
    /// One hop of a DRAIN full drain.
    FullDrain,
    /// A SPIN coordinated spin.
    Spin,
}

impl ForcedKind {
    /// Stable short name (used in trace events and reports).
    pub fn name(self) -> &'static str {
        match self {
            ForcedKind::Drain => "drain",
            ForcedKind::FullDrain => "full-drain",
            ForcedKind::Spin => "spin",
        }
    }

    /// Inverse of [`ForcedKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "drain" => Some(ForcedKind::Drain),
            "full-drain" => Some(ForcedKind::FullDrain),
            "spin" => Some(ForcedKind::Spin),
            _ => None,
        }
    }
}

/// One forced one-hop movement: the packet in `from` traverses `to.link`
/// and lands in `to` (or ejects on arrival at its destination).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ForcedMove {
    /// Source VC (must be occupied).
    pub from: VcRef,
    /// Target VC; `to.link` must depart from `from.link`'s head router.
    pub to: VcRef,
}

/// Per-cycle network-level control decision.
#[derive(Clone, Debug)]
pub enum ControlAction {
    /// Routers allocate normally.
    Normal,
    /// No grants this cycle (in-flight serialization still completes).
    Freeze,
    /// Apply these movements atomically; normal allocation is suspended.
    Forced(Vec<ForcedMove>, ForcedKind),
}

/// A deadlock-freedom scheme plugged into the simulator.
pub trait Mechanism: Send {
    /// Short name for reports (e.g. `"drain"`, `"spin"`, `"escape-vc"`).
    fn name(&self) -> &str;

    /// Inspects the network and decides this cycle's control action. May
    /// mutate mechanism-internal state (epoch counters, probes) and core
    /// statistics.
    fn control(&mut self, core: &mut SimCore) -> ControlAction;

    /// The earliest future cycle at which this mechanism could act or
    /// observe anything, assuming the network stays idle meanwhile
    /// (idle-cycle fast-forward, see [`crate::SimConfig::fast_forward`]).
    ///
    /// Returning `t > core.cycle()` promises the mechanism's `control`
    /// calls for every cycle in `(now, t)` would all return
    /// [`ControlAction::Normal`] without mutating any per-call state; the
    /// driver compensates the skipped calls via
    /// [`Mechanism::on_cycles_skipped`]. The conservative default — the
    /// current cycle — disables fast-forward for mechanisms that did not
    /// opt in (e.g. SPIN's per-call rotation counter).
    fn idle_until(&self, core: &SimCore) -> u64 {
        core.cycle()
    }

    /// Informs the mechanism that the driver fast-forwarded over `cycles`
    /// cycles, i.e. that many `control` calls were elided. Mechanisms
    /// whose [`Mechanism::idle_until`] horizon is derived from a per-call
    /// countdown (DRAIN's epoch counter) rebase it here.
    fn on_cycles_skipped(&mut self, _cycles: u64) {}
}

/// The do-nothing mechanism: always [`ControlAction::Normal`].
///
/// Used for the escape-VC baseline (whose deadlock freedom is entirely in
/// the routing function) and for deliberately deadlock-prone runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMechanism;

impl NoMechanism {
    /// Creates the mechanism.
    pub fn new() -> Self {
        NoMechanism
    }
}

impl Mechanism for NoMechanism {
    fn name(&self) -> &str {
        "none"
    }

    fn control(&mut self, _core: &mut SimCore) -> ControlAction {
        ControlAction::Normal
    }

    fn idle_until(&self, _core: &SimCore) -> u64 {
        u64::MAX
    }
}
