//! The simulator's mutable state and its allocation engine.
//!
//! [`SimCore`] owns everything a cycle touches: the topology, VC buffers,
//! link timers, injection/ejection queues, the packet slab, the routing
//! function, statistics and the RNG. The driver in [`crate::sim`] sequences
//! endpoints → mechanism → allocation each cycle; mechanisms and endpoint
//! models receive `&mut SimCore` and use the accessors here.
//!
//! # Memory layout
//!
//! VC state is a struct-of-arrays arena: one contiguous per-field buffer
//! (`occ`, `ready_at`, `free_at`, `entered_at`) indexed by the link-major
//! VC id, plus *hot mirrors* of the occupant's immutable fields (`dest`,
//! `class`, `len_flits`) copied in when a packet occupies the slot. The
//! per-cycle allocation sweep reads only these arrays — never the packet
//! slab, which grows with the live population (megabytes under
//! saturation) and would turn every visit into a cache miss. Packet
//! payloads live in a [`PacketSlab`] freelist slab; in steady state no
//! per-packet heap allocation happens at all. See DESIGN.md, "Kernel
//! memory layout", for the ownership rules and the invariants guarding
//! each buffer.
//!
//! Timing model (virtual cut-through, single packet per VC — Table II):
//!
//! * A grant at cycle `t` moves the packet's occupancy to the downstream VC
//!   immediately; it becomes eligible for allocation there at
//!   `t + link_latency + router_latency`.
//! * The traversed link is busy until `t + len_flits` (serialization), and
//!   the vacated VC can accept a new packet only from `t + len_flits`
//!   (the tail must fully drain).
//! * One grant per output link per cycle; one ejection per (node, class)
//!   per cycle.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::sync::Arc;

use drain_topology::{distance::DistanceMap, IntoSharedTopology, LinkId, NodeId, Topology};

use crate::config::SimConfig;
use crate::mechanism::{ForcedKind, ForcedMove};
use crate::metrics::{Phase, PhaseProfiler};
use crate::packet::{Location, MessageClass, Packet, PacketId, PacketSlab};
use crate::rng::{mix, DrawSite, RngMode, NUM_DRAW_SITES};
use crate::routing::{Candidate, RouteCtx, Routing, TargetVc, WakeProfile};
use crate::stats::{Stats, WakeCounters};
use crate::telemetry::Telemetry;
use crate::trace::{TraceEvent, Tracer};

/// Reference to one VC buffer: the input port of `link`'s head router,
/// virtual network `vn`, VC `vc` (0 = escape).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VcRef {
    /// Input link whose buffer this is.
    pub link: LinkId,
    /// Virtual network index.
    pub vn: u8,
    /// VC index within the VN (0 = escape).
    pub vc: u8,
}

/// By-value snapshot of one VC buffer's state.
///
/// The simulator keeps VC state in struct-of-arrays buffers (see the
/// module docs); this struct is the gathered view handed to checkers,
/// mechanisms and diagnostics by [`SimCore::vc`]. It is a copy — mutating
/// it does not touch the simulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct VcState {
    /// Occupying packet, if any.
    pub occ: Option<PacketId>,
    /// Cycle from which the occupant may be allocated onward.
    pub ready_at: u64,
    /// Cycle from which an empty buffer may accept a new packet.
    pub free_at: u64,
    /// Cycle the current occupant arrived (for timeout counters).
    pub entered_at: u64,
}

/// Sentinel in the `vc_occ` array for an empty VC.
const EMPTY: u32 = u32::MAX;

/// Outcome info for a delivered packet, handed to ejection-queue consumers.
#[derive(Clone, Debug)]
pub struct Delivered {
    /// The packet, removed from the network.
    pub packet: Packet,
    /// Its id while it was live (now retired).
    pub id: PacketId,
}

/// Where a granted link request moves its packet *from*. `pub(crate)` so
/// shard workers (see [`crate::shard`]) can stage requests identical to
/// the serial sweep's.
#[derive(Clone, Copy, Debug)]
pub(crate) enum MoveSource {
    /// A VC buffer, by link-major arena index.
    Vc(usize),
    /// The head of a per-(node, class) injection queue.
    Injection { node: NodeId, class: MessageClass },
}

/// One pending request for an output link.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LinkRequest {
    pub(crate) source: MoveSource,
    pub(crate) pid: PacketId,
    pub(crate) target: TargetVc,
    /// How long the requester has been waiting (age-based arbitration).
    pub(crate) blocked_for: u64,
}

/// One wake-list entry: slot `slot` (link-major VC index) subscribed to
/// vacates on an output link, `j` being that link's position among the
/// slot's router's out-links (the bit it holds in `sub_mask[slot]`).
#[derive(Clone, Copy, Debug)]
struct WakeSub {
    slot: u32,
    j: u8,
}

/// Park-profitability gate window (cycles). At each boundary the core
/// compares the window's parks against the visits they saved (skips) and
/// stops parking when a park buys fewer than [`GATE_MIN_SKIPS_PER_PARK`]
/// skips — on workloads whose blocked episodes last only a cycle or two
/// (a healthy mesh past saturation) the park/wake bookkeeping costs more
/// than the routing it skips. Parking choice never affects results (a
/// `Stall` is exactly the dense scan's behaviour), so the gate is purely
/// a speed knob; it re-probes every [`GATE_PROBE_PERIOD`]-th window.
const GATE_WINDOW: u64 = 2_048;
/// A gated-off scheduler re-enables parking every this many windows to
/// re-measure profitability (workload phases change).
const GATE_PROBE_PERIOD: u64 = 8;
/// Minimum skips a park must earn in a window to keep parking on.
const GATE_MIN_SKIPS_PER_PARK: u64 = 2;
/// Windows with fewer parks than this are too quiet to judge (and cost
/// nothing): the gate stays on.
const GATE_MIN_PARKS: u64 = 64;

/// A parking decision for one blocked head, computed against pre-commit
/// state by [`SimCore::phase_a_route_or_park`] (`&self`, shared with the
/// shard planners) and applied by [`SimCore::apply_park`]. `subs` is a
/// bitmask over the head router's out-link positions to subscribe to.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ParkNote {
    pub(crate) idx: u32,
    pub(crate) wake_at: u64,
    pub(crate) subs: u32,
}

/// Outcome of one fused Phase A routing + parking decision
/// ([`SimCore::phase_a_route_or_park`]).
#[derive(Clone, Copy, Debug)]
pub(crate) enum PhaseAOutcome {
    /// Request this output link (target-VC kind, `blocked_for` age).
    Route(LinkId, TargetVc, u64),
    /// No feasible move; park the head under this note.
    Park(ParkNote),
    /// No feasible move; the head stays active and is re-routed next
    /// cycle (dense mode, unparkable routing, or a park whose wake would
    /// fire before it could skip a single visit).
    Stall,
}

/// A granted move whose target-VC occupation was deferred because the
/// target slot belongs to another shard: the flit crosses the shard
/// boundary through the [`crate::shard::ShardFabric`] queues and is
/// applied by [`SimCore::apply_remote_occupy`] at the cycle barrier.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingOccupy {
    /// Link-major arena index of the resolved target VC.
    pub(crate) tidx: u32,
    /// The moving packet.
    pub(crate) pid: PacketId,
}

/// The simulator state plus allocation engine.
pub struct SimCore {
    topo: Arc<Topology>,
    config: SimConfig,
    routing: Box<dyn Routing>,
    dmap: DistanceMap,
    /// VC arena, link-major: index `link * total_vcs + vn * vcs_per_vn +
    /// vc` into each of the struct-of-arrays buffers below. Occupant id,
    /// or [`EMPTY`]. (`pub(crate)` fields below are read-shared with the
    /// shard workers of [`crate::shard`] during the planning phase.)
    pub(crate) vc_occ: Vec<u32>,
    /// Cycle from which the occupant may be allocated onward.
    pub(crate) vc_ready_at: Vec<u64>,
    /// Cycle from which an empty buffer may accept a new packet.
    vc_free_at: Vec<u64>,
    /// Cycle the current occupant arrived.
    vc_entered_at: Vec<u64>,
    /// Hot mirror of the occupant's destination (valid while occupied).
    pub(crate) vc_dest: Vec<u16>,
    /// Hot mirror of the occupant's message class (valid while occupied).
    pub(crate) vc_class: Vec<u8>,
    /// Hot mirror of the occupant's length in flits (valid while occupied).
    vc_len: Vec<u32>,
    /// Per unidirectional link: number of occupied VCs at its input port
    /// (lets the allocation sweep skip whole links).
    link_occ: Vec<u32>,
    /// Occupancy bitmap over link-major VC indices: bit `i % 64` of word
    /// `i / 64` is set iff index `i` is occupied.
    pub(crate) occ_bits: Vec<u64>,
    /// Per unidirectional link: busy (serializing) until this cycle.
    link_busy: Vec<u64>,
    /// Per (node, class) injection queues.
    pub(crate) inj: Vec<VecDeque<PacketId>>,
    /// Per (node, class) ejection queues.
    ej: Vec<VecDeque<PacketId>>,
    /// Live packets.
    packets: PacketSlab,
    /// Statistics.
    pub stats: Stats,
    /// Current cycle.
    cycle: u64,
    /// Active-VC index, dense half: the link-major array index of every
    /// occupied VC, in arbitrary order (swap-remove keeps vacate O(1)).
    active: Vec<u32>,
    /// Active-VC index, slot half: `active_pos[idx]` is the position of
    /// `idx` inside `active`, or `u32::MAX` when the VC is empty.
    active_pos: Vec<u32>,
    /// Cached `config.total_vcs()` (the link-major stride).
    pub(crate) stride: usize,
    /// Number of non-empty injection queues (skips the Phase A injection
    /// sweep and gates fast-forward).
    pub(crate) nonempty_inj: usize,
    /// Hot mirror of each injection queue head's destination (valid while
    /// the queue is non-empty) — the Phase A injection sweep reads this
    /// instead of dereferencing the packet slab.
    pub(crate) inj_head_dest: Vec<u16>,
    /// Packets parked in ejection queues (counter form of
    /// [`SimCore::ejection_backlog`]).
    ej_backlog: usize,
    rng: ChaCha8Rng,
    /// Per-[`DrawSite`] tie-break samples produced so far (either mode;
    /// surfaced as `drain_rng_draws_total{site,mode}`). In stream mode
    /// under the sharded kernel this counts every census replay draw —
    /// the honest O(shards × heads) cost keyed mode removes.
    rng_draws: [u64; NUM_DRAW_SITES],
    /// Bitmap over (node, class) ejection-queue indices with at least one
    /// parked packet (lets consumers pop deliveries without sweeping
    /// every queue; ascending bit order is the sweep order).
    ej_bits: Vec<u64>,
    /// Decode table: owning link of each link-major VC index (avoids a
    /// runtime division in the Phase A sweep).
    pub(crate) idx_link: Vec<u32>,
    /// Decode table: VC-within-VN of each link-major VC index.
    pub(crate) idx_vc: Vec<u8>,
    /// Decode table: router at which each link-major VC index sits (the
    /// dst node of its link). Built for the shard planners' census sweep;
    /// the serial hot path keeps decoding through `idx_link` + the
    /// topology.
    pub(crate) idx_here: Vec<u16>,
    /// Scratch buffers reused across cycles.
    cand_buf: Vec<Candidate>,
    req_buf: Vec<Vec<LinkRequest>>,
    /// Bitmap over links with at least one pending request this cycle;
    /// ascending set-bit order replaces sorting a link list.
    req_bits: Vec<u64>,
    /// Ejection-request scratch.
    eject_buf: Vec<(usize, usize, PacketId)>,
    /// Wake scheduler: per-VC wake deadline. `0` = fresh/active (route on
    /// visit); `> now` = parked (Phase A skips routing; in stream mode the
    /// head still consumes its serial RNG draw, in keyed mode it draws
    /// nothing); `0 < v <= now` = woken, routes on the next visit.
    /// `pub(crate)` read-only for the shard planners' census.
    pub(crate) vc_wake_at: Vec<u64>,
    /// Wake scheduler: per-output-link subscriber lists, fired (drained)
    /// by [`SimCore::vacate_slot`] on that link's input buffers.
    wake_subs: Vec<Vec<WakeSub>>,
    /// Wake scheduler: per-slot bitmask over the slot's router's out-link
    /// positions `j` with a live entry in that link's `wake_subs` list.
    /// Invariant: bit `j` set ⟺ exactly one `(slot, j)` entry exists —
    /// a *slot* property that survives occupant turnover, so stale
    /// entries never accumulate and re-parking never duplicates them.
    sub_mask: Vec<u32>,
    /// Wake scheduler: slots vacated this cycle whose link has
    /// subscribers, awaiting the end-of-cycle [`SimCore::flush_wakes`].
    /// Deferring the fire past the commit phase suppresses wakes for
    /// slots re-occupied in the same cycle: a transient free interval
    /// inside one cycle is invisible to Phase A, so never firing for it
    /// is exact and saves the whole spurious wake→route→re-park round
    /// trip.
    pending_fires: Vec<u32>,
    /// Park-profitability gate (see [`GATE_WINDOW`]): `false` suspends
    /// *new* parks (already-parked heads still wake normally).
    park_gate: bool,
    /// Next cycle at which the gate re-evaluates.
    gate_next: u64,
    /// `wake.parks` at the last gate evaluation.
    gate_parks: u64,
    /// `wake.skips` at the last gate evaluation.
    gate_skips: u64,
    /// Routing wake profile, cached at construction (the routing function
    /// never changes afterwards).
    wake_profile: WakeProfile,
    /// Wake scheduler accounting (outside `Stats`: see [`WakeCounters`]).
    wake: WakeCounters,
    /// Structured event bus (see [`crate::trace`]).
    tracer: Tracer,
    /// Telemetry sampler (see [`crate::telemetry`]).
    telem: Telemetry,
    /// Kernel phase profiler (see [`crate::metrics`]). Pure observer:
    /// reads the wall clock, writes only its own accumulators.
    prof: PhaseProfiler,
}

impl SimCore {
    /// Builds a core for `topo` with the given routing function.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`SimConfig::validate`]).
    pub fn new(
        topo: impl IntoSharedTopology,
        config: SimConfig,
        routing: Box<dyn Routing>,
    ) -> Self {
        config.validate();
        let topo = topo.into_shared();
        let dmap = DistanceMap::new(&topo);
        let m = topo.num_unidirectional_links();
        let n = topo.num_nodes();
        let total_vcs = config.total_vcs();
        let classes = config.num_classes;
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let tracer = Tracer::new(&config.trace);
        let telem = Telemetry::new(&config.trace, m, n);
        let prof = PhaseProfiler::new(config.metrics.profile_period);
        let slots = m * total_vcs;
        SimCore {
            vc_occ: vec![EMPTY; slots],
            vc_ready_at: vec![0; slots],
            vc_free_at: vec![0; slots],
            vc_entered_at: vec![0; slots],
            vc_dest: vec![0; slots],
            vc_class: vec![0; slots],
            vc_len: vec![0; slots],
            link_occ: vec![0; m],
            occ_bits: vec![0; slots.div_ceil(64)],
            link_busy: vec![0; m],
            inj: (0..n * classes).map(|_| VecDeque::new()).collect(),
            ej: (0..n * classes).map(|_| VecDeque::new()).collect(),
            packets: PacketSlab::new(),
            stats: Stats::new(),
            cycle: 0,
            active: Vec::new(),
            active_pos: vec![u32::MAX; slots],
            stride: total_vcs,
            nonempty_inj: 0,
            inj_head_dest: vec![0; n * classes],
            ej_backlog: 0,
            rng,
            rng_draws: [0; NUM_DRAW_SITES],
            ej_bits: vec![0; (n * classes).div_ceil(64)],
            idx_link: (0..slots).map(|i| (i / total_vcs) as u32).collect(),
            idx_vc: (0..slots)
                .map(|i| ((i % total_vcs) % config.vcs_per_vn) as u8)
                .collect(),
            idx_here: (0..slots)
                .map(|i| topo.link(LinkId((i / total_vcs) as u32)).dst.0)
                .collect(),
            cand_buf: Vec::new(),
            req_buf: (0..m).map(|_| Vec::new()).collect(),
            req_bits: vec![0; m.div_ceil(64)],
            eject_buf: Vec::new(),
            vc_wake_at: vec![0; slots],
            wake_subs: (0..m).map(|_| Vec::new()).collect(),
            sub_mask: vec![0; slots],
            pending_fires: Vec::new(),
            park_gate: true,
            gate_next: GATE_WINDOW,
            gate_parks: 0,
            gate_skips: 0,
            wake_profile: routing.wake_profile(),
            wake: WakeCounters::default(),
            tracer,
            telem,
            prof,
            dmap,
            topo,
            config,
            routing,
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Shared handle to the topology (components that keep their own
    /// reference — routing functions, drain paths — clone this instead of
    /// deep-copying the graph).
    pub fn shared_topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Forces the idle-cycle fast-forward gate on or off (see
    /// [`SimConfig::fast_forward`]).
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.config.fast_forward = enabled;
    }

    /// Reconfigures the shard count mid-assembly and forces the sharded
    /// path at any occupancy (`shard_min_active = 0`) so differential
    /// tests exercise it even on lightly loaded networks. Results are
    /// bit-identical at every shard count; tests exist to prove it.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds [`crate::shard::MAX_SHARDS`].
    pub(crate) fn set_shards(&mut self, shards: usize) {
        self.config.shards = shards;
        self.config.shard_min_active = 0;
        self.config.validate();
    }

    /// The routing function's name.
    pub fn routing_name(&self) -> &str {
        self.routing.name()
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of packets currently inside VC buffers.
    pub fn packets_in_network(&self) -> usize {
        self.active.len()
    }

    /// Number of live packets anywhere (queues + network).
    pub fn live_packets(&self) -> usize {
        self.packets.len()
    }

    /// Distance map used for misroute accounting and adaptive routing.
    pub fn distance_map(&self) -> &DistanceMap {
        &self.dmap
    }

    /// The structured event bus (captured events, emission counters).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable event bus (install sinks, drain the memory sink).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Whether event tracing is enabled. Hot paths use this as the guard
    /// and construct events only behind it.
    #[inline(always)]
    pub fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Emits one trace event (no-op when tracing is disabled). Intended
    /// for mechanisms and drivers; core hot paths emit directly behind
    /// [`SimCore::trace_enabled`].
    #[inline]
    pub fn trace_emit(&mut self, event: TraceEvent) {
        self.tracer.push(event);
    }

    /// The telemetry sampler (retained samples, cumulative counters).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telem
    }

    /// Mutable telemetry sampler (drain the sample series).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telem
    }

    /// The kernel phase profiler (sampled wall-time attribution; see
    /// [`crate::metrics::PhaseProfiler`]).
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.prof
    }

    /// Reconfigures the phase profiler's sampling cadence (0 disables;
    /// accumulated attribution is reset). Profiling is a pure observer,
    /// so flipping it mid-run cannot perturb results.
    pub fn set_profile_period(&mut self, period: u64) {
        self.config.metrics.profile_period = period;
        self.prof = PhaseProfiler::new(period);
    }

    /// Whether the current cycle is being phase-profiled (shard planners
    /// read this through the shared `&SimCore` to decide whether to time
    /// themselves).
    #[inline(always)]
    pub(crate) fn prof_active(&self) -> bool {
        self.prof.active()
    }

    /// Opens the profiler's view of `cycle` (no-op unless profiling).
    #[inline]
    pub(crate) fn prof_begin_cycle(&mut self, cycle: u64) {
        self.prof.begin_cycle(cycle);
    }

    /// Attributes wall time since the last mark to `phase` (no-op unless
    /// the cycle is sampled).
    #[inline]
    pub(crate) fn prof_mark(&mut self, phase: Phase) {
        self.prof.mark(phase);
    }

    /// Closes the profiler's view of the cycle.
    #[inline]
    pub(crate) fn prof_end_cycle(&mut self) {
        self.prof.end_cycle();
    }

    /// Credits `nanos` of planning wall time to `shard` (reported by the
    /// sharded kernel's merge for sampled cycles).
    #[inline]
    pub(crate) fn prof_note_shard(&mut self, shard: usize, nanos: u64) {
        self.prof.note_shard(shard, nanos);
    }

    /// Credits `n` credit-stall observations to `router` (the shard merge
    /// applies the workers' Phase A stall notes through this; counters
    /// are additive so apply order is immaterial).
    pub(crate) fn note_credit_stalls(&mut self, router: usize, n: u64) {
        self.telem.note_credit_stalls(router, n);
    }

    #[inline]
    pub(crate) fn vc_index(&self, r: VcRef) -> usize {
        r.link.index() * self.stride + r.vn as usize * self.config.vcs_per_vn + r.vc as usize
    }

    /// The [`VcRef`] addressed by a link-major VC array index (inverse of
    /// the layout used by [`SimCore::occupied_vc_indices`]).
    pub fn vc_ref_of_index(&self, idx: usize) -> VcRef {
        let rem = idx % self.stride;
        VcRef {
            link: LinkId((idx / self.stride) as u32),
            vn: (rem / self.config.vcs_per_vn) as u8,
            vc: (rem % self.config.vcs_per_vn) as u8,
        }
    }

    /// Link-major array indices of every occupied VC, in arbitrary order.
    ///
    /// This is the live active-VC index: O(occupied) to walk instead of
    /// O(links × VCs). Callers that need the dense sweep's deterministic
    /// order must sort a copy ascending (link-major indices sort exactly
    /// like the `link, vn, vc` loop nest). Map entries back to buffers
    /// with [`SimCore::vc_ref_of_index`].
    pub fn occupied_vc_indices(&self) -> &[u32] {
        &self.active
    }

    /// Occupancy bitmap over link-major VC indices: bit `i % 64` of word
    /// `i / 64` is set iff the VC at index `i` is occupied.
    ///
    /// The bitmap *is* the dense sweep order in O(occupied/64) words:
    /// iterating set bits ascending visits occupied buffers exactly as the
    /// `link, vn, vc` loop nest would, with no copying or sorting. SPIN's
    /// suspect scan uses this for its circular timeout sweep; gather the
    /// per-VC fields with [`SimCore::vc_state_of_index`].
    pub fn occupied_vc_bitmap(&self) -> &[u64] {
        &self.occ_bits
    }

    /// Cross-validates the occupancy indexes against the dense VC arena:
    /// every occupied VC must appear exactly once in the active index, the
    /// per-link occupancy counts and the occupancy bitmap must agree with
    /// the arena, and the hot mirrors (`dest`, `class`, `len_flits`) must
    /// match the occupant in the packet slab. Used by the deep invariant
    /// sweep.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch found.
    pub fn validate_active_index(&self) -> Result<(), String> {
        let occupied = self.vc_occ.iter().filter(|&&o| o != EMPTY).count();
        if occupied != self.active.len() {
            return Err(format!(
                "active index holds {} entries but {} VCs are occupied",
                self.active.len(),
                occupied
            ));
        }
        for (idx, &occ) in self.vc_occ.iter().enumerate() {
            let pos = self.active_pos[idx];
            match (occ != EMPTY, pos != u32::MAX) {
                (true, false) => {
                    return Err(format!(
                        "occupied VC {:?} missing from active index",
                        self.vc_ref_of_index(idx)
                    ));
                }
                (false, true) => {
                    return Err(format!(
                        "empty VC {:?} present in active index",
                        self.vc_ref_of_index(idx)
                    ));
                }
                (true, true) => {
                    if self.active.get(pos as usize) != Some(&(idx as u32)) {
                        return Err(format!(
                            "active index slot mismatch for VC {:?} (pos {})",
                            self.vc_ref_of_index(idx),
                            pos
                        ));
                    }
                }
                (false, false) => {}
            }
            if (self.occ_bits[idx / 64] >> (idx % 64)) & 1 != u64::from(occ != EMPTY) {
                return Err(format!(
                    "occupancy bitmap disagrees with arena at VC {:?}",
                    self.vc_ref_of_index(idx)
                ));
            }
            if occ != EMPTY {
                let Some(p) = self.packets.try_get(PacketId(occ)) else {
                    return Err(format!(
                        "VC {:?} holds dead packet id p{occ}",
                        self.vc_ref_of_index(idx)
                    ));
                };
                if (p.dest.0, p.class.0, p.len_flits)
                    != (self.vc_dest[idx], self.vc_class[idx], self.vc_len[idx])
                {
                    return Err(format!(
                        "stale hot mirror at VC {:?}: mirror (dest {}, class {}, len {}) \
                         vs packet (dest {}, class {}, len {})",
                        self.vc_ref_of_index(idx),
                        self.vc_dest[idx],
                        self.vc_class[idx],
                        self.vc_len[idx],
                        p.dest.0,
                        p.class.0,
                        p.len_flits,
                    ));
                }
            }
        }
        for li in 0..self.link_occ.len() {
            let base = li * self.stride;
            let count = self.vc_occ[base..base + self.stride]
                .iter()
                .filter(|&&o| o != EMPTY)
                .count() as u32;
            if count != self.link_occ[li] {
                return Err(format!(
                    "link {li} occupancy count {} but {count} VCs are occupied",
                    self.link_occ[li]
                ));
            }
        }
        Ok(())
    }

    /// Registers `idx` as occupied in every occupancy index (active list,
    /// per-link count, bitmap).
    #[inline]
    fn activate(&mut self, idx: usize) {
        debug_assert_eq!(self.active_pos[idx], u32::MAX, "VC already indexed");
        self.active_pos[idx] = self.active.len() as u32;
        self.active.push(idx as u32);
        self.link_occ[idx / self.stride] += 1;
        self.occ_bits[idx / 64] |= 1 << (idx % 64);
    }

    /// Removes `idx` from every occupancy index (swap-remove, O(1)).
    #[inline]
    fn deactivate(&mut self, idx: usize) {
        let pos = self.active_pos[idx] as usize;
        debug_assert_eq!(self.active[pos], idx as u32, "active index corrupted");
        self.active_pos[idx] = u32::MAX;
        let last = self.active.pop().expect("active list is non-empty");
        if pos < self.active.len() {
            self.active[pos] = last;
            self.active_pos[last as usize] = pos as u32;
        }
        self.link_occ[idx / self.stride] -= 1;
        self.occ_bits[idx / 64] &= !(1 << (idx % 64));
    }

    /// Marks `idx` occupied by `pid` and fills the hot mirrors from the
    /// packet slab (the one slab read per occupation; every later sweep
    /// visit reads only the arena). `free_at` is left untouched — an
    /// occupied buffer's drain deadline belongs to its previous tenant.
    #[inline]
    fn occupy_slot(&mut self, idx: usize, pid: PacketId, ready_at: u64, entered_at: u64) {
        let p = self.packets.get(pid);
        let (dest, class, len) = (p.dest.0, p.class.0, p.len_flits);
        self.vc_occ[idx] = pid.0;
        self.vc_ready_at[idx] = ready_at;
        self.vc_entered_at[idx] = entered_at;
        self.vc_dest[idx] = dest;
        self.vc_class[idx] = class;
        self.vc_len[idx] = len;
        // A new tenant starts fresh: any previous tenant's park deadline is
        // meaningless for it. Its subscription *entries* (sub_mask bits)
        // deliberately survive — they are slot properties; a stale one
        // fires at most one spurious wake and removes itself.
        self.vc_wake_at[idx] = 0;
        self.activate(idx);
    }

    /// Marks `idx` empty, accepting new packets from `free_at` (tail
    /// serialization). Every vacate in the simulator funnels through
    /// here, so queueing the slot for the end-of-cycle wake flush is
    /// exhaustive: no freeing event can bypass the parked subscribers.
    #[inline]
    fn vacate_slot(&mut self, idx: usize, free_at: u64) {
        self.vc_occ[idx] = EMPTY;
        self.vc_free_at[idx] = free_at;
        self.deactivate(idx);
        let li = self.idx_link[idx] as usize;
        if !self.wake_subs[li].is_empty() {
            self.pending_fires.push(idx as u32);
        }
    }

    /// End-of-cycle wake flush: fires the subscriber list of every link
    /// that had a slot vacate this cycle *and still holds it empty now*.
    /// A slot re-occupied by a later commit in the same cycle never
    /// presents a free buffer to any Phase A sweep, so skipping its fire
    /// is exact — its own eventual vacate re-queues the link. The
    /// delivered deadline is `max(min free_at, link_busy)`: every grant
    /// has committed by flush time and `link_busy` only moves forward, so
    /// no subscriber can use the link any earlier. Must run before the
    /// per-cycle validators (`validate_wake_parking` assumes no fire is
    /// in flight). Sorting makes the fire order — and thus the exact
    /// internal wake state — independent of commit order, which is what
    /// keeps the serial and sharded kernels bit-identical here.
    pub(crate) fn flush_wakes(&mut self) {
        if self.pending_fires.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending_fires);
        pending.sort_unstable();
        let mut i = 0;
        while i < pending.len() {
            let li = self.idx_link[pending[i] as usize] as usize;
            // Same-link slots are index-adjacent (link-major arena), so
            // one sorted run = one link.
            let mut free_at = u64::MAX;
            while i < pending.len() && self.idx_link[pending[i] as usize] as usize == li {
                let idx = pending[i] as usize;
                if self.vc_occ[idx] == EMPTY {
                    free_at = free_at.min(self.vc_free_at[idx]);
                }
                i += 1;
            }
            if free_at != u64::MAX {
                self.fire_wakes(li, free_at.max(self.link_busy[li]));
            }
        }
        pending.clear();
        self.pending_fires = pending;
    }

    /// Fires every subscription on output link `li`: the freed slot
    /// accepts new packets from `wake_at`, so each subscriber's wake
    /// deadline drops to at most that cycle (`min` — events only ever
    /// *advance* wakes; a fresh/active slot stays at 0). Entries are
    /// consumed: a wake is one-shot, re-parking re-subscribes.
    fn fire_wakes(&mut self, li: usize, wake_at: u64) {
        let mut subs = std::mem::take(&mut self.wake_subs[li]);
        self.wake.wakes += subs.len() as u64;
        for s in subs.drain(..) {
            self.sub_mask[s.slot as usize] &= !(1u32 << s.j);
            let w = &mut self.vc_wake_at[s.slot as usize];
            *w = (*w).min(wake_at);
        }
        // Hand the (empty) allocation back for reuse.
        self.wake_subs[li] = subs;
    }

    /// Snapshot of one VC buffer's state (see [`VcState`]).
    pub fn vc(&self, r: VcRef) -> VcState {
        self.vc_state_of_index(self.vc_index(r))
    }

    /// Snapshot of the VC at link-major array index `idx` (pairs with
    /// [`SimCore::occupied_vc_indices`] / [`SimCore::occupied_vc_bitmap`]
    /// without a round-trip through [`VcRef`]).
    pub fn vc_state_of_index(&self, idx: usize) -> VcState {
        let occ = self.vc_occ[idx];
        VcState {
            occ: (occ != EMPTY).then_some(PacketId(occ)),
            ready_at: self.vc_ready_at[idx],
            free_at: self.vc_free_at[idx],
            entered_at: self.vc_entered_at[idx],
        }
    }

    /// Shared access to a live packet.
    pub fn packet(&self, id: PacketId) -> &Packet {
        self.packets.get(id)
    }

    /// Shared access to a packet, or `None` if `id` is not live (used by
    /// the invariant checker to diagnose dangling ids gracefully).
    pub fn try_packet(&self, id: PacketId) -> Option<&Packet> {
        self.packets.try_get(id)
    }

    /// Iterator over all VC references of the network.
    pub fn vc_refs(&self) -> impl Iterator<Item = VcRef> + '_ {
        let vns = self.config.vns as u8;
        let vcs = self.config.vcs_per_vn as u8;
        self.topo.link_ids().flat_map(move |link| {
            (0..vns).flat_map(move |vn| (0..vcs).map(move |vc| VcRef { link, vn, vc }))
        })
    }

    #[inline]
    pub(crate) fn qidx(&self, node: NodeId, class: MessageClass) -> usize {
        node.index() * self.config.num_classes + class.index()
    }

    /// Snapshot of the RNG at its current stream position. In stream
    /// mode, shard planners clone the cycle-start RNG, replay the full
    /// global draw schedule (consuming every draw, using only their own
    /// shard's), and the merge asserts all clones ended at the same
    /// position (see [`crate::shard`]). Keyed mode never calls this —
    /// there is no stream position to keep.
    pub(crate) fn rng_clone(&self) -> ChaCha8Rng {
        debug_assert_eq!(
            self.config.rng_mode,
            RngMode::Stream,
            "keyed mode must not clone the serial stream"
        );
        self.rng.clone()
    }

    /// Replaces the RNG with `rng` — the stream-mode merge step adopts
    /// shard 0's advanced clone so the stream position matches the
    /// serial kernel's.
    pub(crate) fn set_rng(&mut self, rng: ChaCha8Rng) {
        self.rng = rng;
    }

    /// One tie-break sample for `site`, identity `id` (see
    /// [`crate::rng`]): the next serial stream draw in stream mode, the
    /// pure `mix(seed, cycle, site, id)` in keyed mode. The identity is
    /// ignored by the stream — order of calls is its key — and the
    /// stream is untouched by keyed mode.
    #[inline]
    pub(crate) fn draw_sample(&mut self, site: DrawSite, id: u64) -> u64 {
        self.rng_draws[site.index()] += 1;
        match self.config.rng_mode {
            RngMode::Stream => self.rng.gen::<u64>(),
            RngMode::Keyed => mix(self.config.seed, self.cycle, site, id),
        }
    }

    /// Per-[`DrawSite`] tie-break samples produced so far, in
    /// [`DrawSite::ALL`] order (either mode; the sharded stream-mode
    /// kernel counts every census replay draw).
    pub fn rng_draw_counts(&self) -> [u64; NUM_DRAW_SITES] {
        self.rng_draws
    }

    /// Credits `draws` per-site samples computed outside the core (the
    /// shard planners work against a frozen `&SimCore`).
    pub(crate) fn note_rng_draws(&mut self, draws: [u64; NUM_DRAW_SITES]) {
        for (acc, d) in self.rng_draws.iter_mut().zip(draws) {
            *acc += d;
        }
    }

    /// A tie-break sample for a deadlock-freedom mechanism's stochastic
    /// choice, keyed by a mechanism-chosen identity (e.g. a router or
    /// epoch number). Rides the serial stream in stream mode — calling
    /// it shifts the draw schedule of everything after it, which is the
    /// coupling [`RngMode::Keyed`] exists to remove — and the dedicated
    /// [`DrawSite::Mechanism`] key family in keyed mode, where it is
    /// schedule-free. No built-in mechanism draws randomness today; the
    /// hook keeps future mechanism randomness off the routing streams.
    pub fn mechanism_sample(&mut self, id: u64) -> u64 {
        self.draw_sample(DrawSite::Mechanism, id)
    }

    /// Free slots in a node's per-class injection queue.
    pub fn injection_space(&self, node: NodeId, class: MessageClass) -> usize {
        self.config
            .inj_queue_capacity
            .saturating_sub(self.inj[self.qidx(node, class)].len())
    }

    /// Occupancy of a node's per-class injection queue.
    pub fn injection_len(&self, node: NodeId, class: MessageClass) -> usize {
        self.inj[self.qidx(node, class)].len()
    }

    /// Occupancy of a node's per-class ejection queue.
    pub fn ejection_len(&self, node: NodeId, class: MessageClass) -> usize {
        self.ej[self.qidx(node, class)].len()
    }

    /// Total packets currently parked in ejection queues (delivered but
    /// not yet consumed by the endpoint model).
    pub fn ejection_backlog(&self) -> usize {
        self.ej_backlog
    }

    /// Packet ids waiting in a node's per-class injection queue, head
    /// first (invariant checker and diagnostics).
    pub fn injection_queue(
        &self,
        node: NodeId,
        class: MessageClass,
    ) -> impl Iterator<Item = PacketId> + '_ {
        self.inj[self.qidx(node, class)].iter().copied()
    }

    /// Packet ids parked in a node's per-class ejection queue, head first
    /// (invariant checker and diagnostics).
    pub fn ejection_queue(
        &self,
        node: NodeId,
        class: MessageClass,
    ) -> impl Iterator<Item = PacketId> + '_ {
        self.ej[self.qidx(node, class)].iter().copied()
    }

    /// Iterator over `(id, packet)` for every live packet, wherever it is
    /// (queues or network).
    pub fn live_packet_iter(&self) -> impl Iterator<Item = (PacketId, &Packet)> {
        self.packets.iter()
    }

    /// Cycle until which `l` is serializing a packet (busy).
    pub fn link_busy_until(&self, l: LinkId) -> u64 {
        self.link_busy[l.index()]
    }

    /// Whether the per-class ejection queue has room for one more packet.
    pub fn ejection_has_space(&self, node: NodeId, class: MessageClass) -> bool {
        self.ej[self.qidx(node, class)].len() < self.config.ej_queue_capacity
    }

    /// Creates a packet in `src`'s injection queue. Returns `None` (and
    /// creates nothing) when the queue is full or `src == dest`.
    pub fn try_enqueue_packet(
        &mut self,
        src: NodeId,
        dest: NodeId,
        class: MessageClass,
        len_flits: u32,
        tag: u64,
    ) -> Option<PacketId> {
        if src == dest || self.injection_space(src, class) == 0 {
            return None;
        }
        let pid = self.packets.insert(Packet {
            src,
            dest,
            class,
            len_flits,
            birth_cycle: self.cycle,
            inject_cycle: u64::MAX,
            loc: Location::InjectionQueue(src),
            hops: 0,
            misroutes: 0,
            forced_hops: 0,
            tag,
        });
        let q = self.qidx(src, class);
        if self.inj[q].is_empty() {
            self.nonempty_inj += 1;
            self.inj_head_dest[q] = dest.0;
        }
        self.inj[q].push_back(pid);
        self.stats.generated += 1;
        Some(pid)
    }

    /// Enqueues a packet bypassing the injection-queue capacity bound.
    ///
    /// For control messages whose population is bounded elsewhere (e.g.
    /// coherence unblocks, at most one per MSHR): real designs provision
    /// reserved slots for them so that consuming the sink class can never
    /// block. Returns `None` only when `src == dest`.
    pub fn force_enqueue_packet(
        &mut self,
        src: NodeId,
        dest: NodeId,
        class: MessageClass,
        len_flits: u32,
        tag: u64,
    ) -> Option<PacketId> {
        if src == dest {
            return None;
        }
        let pid = self.packets.insert(Packet {
            src,
            dest,
            class,
            len_flits,
            birth_cycle: self.cycle,
            inject_cycle: u64::MAX,
            loc: Location::InjectionQueue(src),
            hops: 0,
            misroutes: 0,
            forced_hops: 0,
            tag,
        });
        let q = self.qidx(src, class);
        if self.inj[q].is_empty() {
            self.nonempty_inj += 1;
            self.inj_head_dest[q] = dest.0;
        }
        self.inj[q].push_back(pid);
        self.stats.generated += 1;
        Some(pid)
    }

    /// Peeks the head of a node's per-class ejection queue.
    pub fn peek_ejection(&self, node: NodeId, class: MessageClass) -> Option<&Packet> {
        self.ej[self.qidx(node, class)]
            .front()
            .map(|&pid| self.packets.get(pid))
    }

    /// Consumes the head of a node's per-class ejection queue, retiring the
    /// packet from the network.
    pub fn pop_ejection(&mut self, node: NodeId, class: MessageClass) -> Option<Delivered> {
        let q = self.qidx(node, class);
        let pid = self.ej[q].pop_front()?;
        if self.ej[q].is_empty() {
            self.ej_bits[q / 64] &= !(1u64 << (q % 64));
        }
        self.ej_backlog -= 1;
        let packet = self.packets.remove(pid);
        Some(Delivered { packet, id: pid })
    }

    /// Consumes the head of the lowest-indexed non-empty ejection queue
    /// (ascending (node, class) order — the same order as sweeping
    /// [`SimCore::pop_ejection`] over every node and class, so endpoint
    /// models that drain everything each cycle retire packets in the
    /// identical sequence without visiting empty queues).
    pub fn pop_next_ejection(&mut self) -> Option<Delivered> {
        let wi = self.ej_bits.iter().position(|&w| w != 0)?;
        let q = wi * 64 + self.ej_bits[wi].trailing_zeros() as usize;
        let node = NodeId((q / self.config.num_classes) as u16);
        let class = MessageClass((q % self.config.num_classes) as u8);
        self.pop_ejection(node, class)
    }

    /// Routing candidates for an explicit context (used by allocation, the
    /// deadlock detector and SPIN probes). Results are appended to `out`.
    pub fn route_candidates(&self, ctx: &RouteCtx, out: &mut Vec<Candidate>) {
        self.routing.candidates(ctx, out);
    }

    /// Concrete downstream VC slots a candidate may claim, in preference
    /// order (non-escape before escape for [`TargetVc::Any`]).
    pub fn concrete_targets(&self, cand: Candidate, vn: u8, out: &mut Vec<VcRef>) {
        let vcs = self.config.vcs_per_vn as u8;
        match cand.target {
            TargetVc::EscapeOnly => out.push(VcRef {
                link: cand.link,
                vn,
                vc: 0,
            }),
            TargetVc::NonEscapeOnly => {
                for vc in 1..vcs {
                    out.push(VcRef {
                        link: cand.link,
                        vn,
                        vc,
                    });
                }
            }
            TargetVc::Any => {
                for vc in 1..vcs {
                    out.push(VcRef {
                        link: cand.link,
                        vn,
                        vc,
                    });
                }
                out.push(VcRef {
                    link: cand.link,
                    vn,
                    vc: 0,
                });
            }
        }
    }

    /// Whether the VC buffer can accept a new packet right now.
    #[inline]
    pub fn vc_is_free(&self, r: VcRef) -> bool {
        let idx = self.vc_index(r);
        self.vc_occ[idx] == EMPTY && self.vc_free_at[idx] <= self.cycle
    }

    /// Whether the link can start a new serialization right now.
    #[inline]
    pub fn link_is_free(&self, l: LinkId) -> bool {
        self.link_busy[l.index()] <= self.cycle
    }

    /// The routing context for the packet occupying `vcref` (None if the VC
    /// is empty).
    pub fn ctx_for_vc(&self, r: VcRef, sample: u64) -> Option<RouteCtx> {
        let idx = self.vc_index(r);
        if self.vc_occ[idx] == EMPTY {
            return None;
        }
        let cur = self.topo.link(r.link).dst;
        Some(RouteCtx {
            cur,
            dest: NodeId(self.vc_dest[idx]),
            arrived_via: Some(r.link),
            in_escape: self.config.escape_sticky && r.vc == 0,
            blocked_for: self
                .cycle
                .saturating_sub(self.vc_entered_at[idx].max(self.vc_ready_at[idx])),
            sample,
        })
    }

    // ------------------------------------------------------------------
    // Per-cycle engine
    // ------------------------------------------------------------------

    /// Advances the cycle counter (called by the driver after all phases).
    pub(crate) fn advance_cycle(&mut self) {
        self.cycle += 1;
        if self.config.wake_scheduler && self.cycle >= self.gate_next {
            self.gate_tick();
        }
    }

    /// Park-profitability gate boundary (see [`GATE_WINDOW`]). Runs on
    /// the core in both the serial and the sharded drivers, on committed
    /// counters only, so the gate trajectory is identical everywhere the
    /// stepped cycles are. Idle fast-forward may skip boundaries — the
    /// `>=` catch-up in [`SimCore::advance_cycle`] re-evaluates on the
    /// next stepped cycle; an idle window has no parks to judge anyway.
    #[cold]
    fn gate_tick(&mut self) {
        let w = self.cycle / GATE_WINDOW;
        if self.park_gate {
            let dp = self.wake.parks - self.gate_parks;
            let ds = self.wake.skips - self.gate_skips;
            self.park_gate = dp < GATE_MIN_PARKS || ds >= GATE_MIN_SKIPS_PER_PARK * dp;
        } else {
            self.park_gate = w.is_multiple_of(GATE_PROBE_PERIOD);
        }
        self.gate_parks = self.wake.parks;
        self.gate_skips = self.wake.skips;
        self.gate_next = (w + 1) * GATE_WINDOW;
    }

    /// The earliest future cycle at which the *network* could act, or
    /// `None` when the current cycle cannot be skipped.
    ///
    /// `Some(t)` promises that running the per-cycle engine for every
    /// cycle in `(now, t)` would be a pure no-op: no RNG draw, no state
    /// change, no stat update. That holds exactly when
    ///
    /// * every observer needing per-cycle ticks is off (fast-forward gate,
    ///   tracing, per-cycle invariant checks). Telemetry sampling is *not*
    ///   on this list: the network is frozen across an idle jump, so the
    ///   driver emits one boundary sample stamped at the last elided
    ///   window boundary instead (see [`SimCore::telemetry_note_jump`]) —
    ///   exact, and without giving up the jump,
    /// * all injection queues are empty (a queued head re-routes — and in
    ///   stream mode draws one serial RNG sample — every cycle) and no
    ///   ejection backlog remains (endpoint models consume deliveries on
    ///   per-cycle ticks),
    /// * no occupied VC is allocation-eligible before `t` (an eligible
    ///   but blocked VC has `ready_at <= now`, which yields `None` — so
    ///   congested cycles are never skipped).
    ///
    /// An empty network returns `Some(u64::MAX)`; mechanism and endpoint
    /// horizons bound the actual jump (see [`crate::sim::Sim::run`]).
    ///
    /// Sharding note: because every shard's plan is merged into this one
    /// global state at the cycle barrier before the driver asks, the
    /// minimum below already *is* the minimum idle horizon across all
    /// shards — no per-shard computation is needed, and fast-forward
    /// composes with the sharded kernel unchanged.
    pub(crate) fn net_idle_until(&self) -> Option<u64> {
        if !self.config.fast_forward
            || self.tracer.enabled()
            || self.config.checks.any_per_cycle()
        {
            return None;
        }
        if self.nonempty_inj > 0 || self.ej_backlog > 0 {
            return None;
        }
        let mut t = u64::MAX;
        for &idx in &self.active {
            t = t.min(self.vc_ready_at[idx as usize]);
        }
        (t > self.cycle).then_some(t)
    }

    /// Jumps the clock forward to `t` (idle-cycle fast-forward). Only
    /// legal when [`SimCore::net_idle_until`] proved the skipped cycles
    /// are no-ops.
    pub(crate) fn fast_forward_to(&mut self, t: u64) {
        debug_assert!(t > self.cycle);
        self.cycle = t;
    }

    /// Takes a telemetry sample when the current cycle closes a sampling
    /// window. Called by the driver once per cycle; the O(VCs + routers)
    /// sweep runs only on window boundaries.
    pub(crate) fn telemetry_tick(&mut self) {
        if !self.telem.active() {
            return;
        }
        if !(self.cycle + 1).is_multiple_of(self.telem.period()) {
            return;
        }
        self.telemetry_sample_at(self.cycle);
    }

    /// Emits the telemetry sample an idle fast-forward jump to `t` would
    /// otherwise elide. The jump skips cycles `(now, t)`; any sampling
    /// boundary inside that stretch would have sampled *this exact
    /// state* (the jump is only legal because nothing changes), so one
    /// sample stamped at the last elided boundary is exact — the delta
    /// counters compress the idle stretch into a single flat window.
    /// Called by the driver *before* the clock jumps.
    pub(crate) fn telemetry_note_jump(&mut self, t: u64) {
        if !self.telem.active() {
            return;
        }
        let period = self.telem.period();
        // Boundaries are cycles s with (s + 1) % period == 0. Cycle t
        // itself is stepped normally, so the elided range is [cycle, t).
        // The last boundary below t:
        let last = (t / period) * period;
        if last == 0 {
            return;
        }
        let s = last - 1;
        if s >= self.cycle && s < t {
            self.telemetry_sample_at(s);
        }
    }

    /// Sweeps occupancy and queue depths into one telemetry sample
    /// stamped `stamp` (the state sweep reads the *current* state; the
    /// stamp may predate `self.cycle` only when the state is provably
    /// unchanged since, as in [`SimCore::telemetry_note_jump`]).
    fn telemetry_sample_at(&mut self, stamp: u64) {
        let n = self.topo.num_nodes();
        // A recycled scratch vector — sampling allocates nothing in steady
        // state (see [`Telemetry::checkout_routers`]).
        let mut routers = self.telem.checkout_routers(n);
        // VC buffers sit at the input of their link's destination router;
        // only occupied ones contribute, so walk the active index.
        for &idx in &self.active {
            let link = LinkId(idx / self.stride as u32);
            routers[self.topo.link(link).dst.index()].occupied_vcs += 1;
        }
        for (q, queue) in self.inj.iter().enumerate() {
            routers[q / self.config.num_classes].inj_depth += queue.len() as u32;
        }
        for (q, queue) in self.ej.iter().enumerate() {
            routers[q / self.config.num_classes].ej_depth += queue.len() as u32;
        }
        self.telem.push_sample(stamp, routers);
    }

    /// Normal allocation: gathers requests, arbitrates one grant per output
    /// link and one ejection per (node, class), and commits the moves.
    pub(crate) fn allocate_and_move(&mut self) {
        // Phase A: VC requests, visiting occupied buffers in ascending
        // link-major index order — the exact order of the former dense
        // `link, vn, vc` loop nest, so RNG draws and trace events land on
        // identical buffers in identical sequence. Ascending set-bit
        // iteration over the occupancy bitmap IS that order, and visits
        // exactly the occupied slots: a half-empty stride (baseline
        // configs idle 2 of 3 VNs under single-class traffic) costs
        // nothing. Phase A only registers requests — occupancy, and
        // therefore the bitmap, cannot change mid-sweep. The idx → (link,
        // vc) decode reads two precomputed tables instead of dividing by
        // the runtime stride.
        let mut eject_reqs = std::mem::take(&mut self.eject_buf);
        eject_reqs.clear();
        for wi in 0..self.occ_bits.len() {
            let mut w = self.occ_bits[wi];
            while w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let link = LinkId(self.idx_link[idx]);
                let vc = self.idx_vc[idx];
                self.phase_a_vc(idx, link, vc, &mut eject_reqs);
            }
        }
        // Phase A: injection requests (head of each per-class queue);
        // skipped wholesale when every queue is empty. Ascending queue
        // index IS ascending (node, class) order.
        if self.nonempty_inj > 0 {
            for q in 0..self.inj.len() {
                let Some(&pid) = self.inj[q].front() else {
                    continue;
                };
                let node = NodeId((q / self.config.num_classes) as u16);
                let class = MessageClass((q % self.config.num_classes) as u8);
                debug_assert_eq!(
                    NodeId(self.inj_head_dest[q]),
                    self.packets.get(pid).dest,
                    "stale head mirror"
                );
                let sample = self.draw_sample(DrawSite::Injection, q as u64);
                let mut cands = std::mem::take(&mut self.cand_buf);
                let routed = self.injection_route(node, class, sample, &mut cands);
                self.cand_buf = cands;
                if let Some((link, target)) = routed {
                    self.register_request(
                        link,
                        LinkRequest {
                            source: MoveSource::Injection { node, class },
                            pid,
                            target,
                            blocked_for: 0,
                        },
                    );
                }
            }
        }
        self.prof.mark(Phase::PhaseA);

        // Phase B: ejection grants — one per (node, class) queue with space.
        eject_reqs.sort_unstable_by_key(|&(q, idx, _)| (q, idx));
        let mut gi = 0;
        while gi < eject_reqs.len() {
            let q = eject_reqs[gi].0;
            let mut ge = gi;
            while ge < eject_reqs.len() && eject_reqs[ge].0 == q {
                ge += 1;
            }
            let group = &eject_reqs[gi..ge];
            // Oldest-first ejection grant.
            let ej_len = self.ej[q].len();
            if ej_len >= self.config.ej_queue_capacity {
                // Deliverable packets blocked on a full ejection queue are
                // credit-stalled at the destination router.
                if self.telem.active() {
                    self.telem
                        .note_credit_stalls(q / self.config.num_classes, group.len() as u64);
                }
            } else {
                let (_, idx, pid) = group[self.eject_winner(q, group)];
                self.commit_eject(idx, pid);
            }
            gi = ge;
        }
        self.eject_buf = eject_reqs;

        // Phase B: link grants — one per output link, oldest requester
        // first (age-based arbitration bounds worst-case blocking, as in
        // real NoC allocators); rotation breaks ties. Only links that
        // received a request are visited, in ascending id order (the
        // former dense sweep's order: ascending set-bit iteration needs
        // no sort).
        for wi in 0..self.req_bits.len() {
            let mut w = self.req_bits[wi];
            self.req_bits[wi] = 0;
            while w != 0 {
                let li = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let reqs = std::mem::take(&mut self.req_buf[li]);
                let req = reqs[self.link_winner(li, &reqs)];
                self.commit_move(&req, LinkId(li as u32));
                let mut reqs = reqs;
                reqs.clear();
                self.req_buf[li] = reqs;
            }
        }
        self.prof.mark(Phase::PhaseB);
    }

    /// Phase A body for one occupied VC buffer: eject request, or a routed
    /// move request. Stream mode draws one serial sample per visited ready
    /// non-ejecting head (the contract-v1 draw schedule); keyed mode draws
    /// `mix(seed, cycle, PhaseA, idx)` only for heads that actually route.
    /// Reads only the VC arena and its hot mirrors; the packet slab is
    /// never touched here.
    #[inline]
    fn phase_a_vc(
        &mut self,
        idx: usize,
        link: LinkId,
        vc: u8,
        eject_reqs: &mut Vec<(usize, usize, PacketId)>,
    ) {
        let now = self.cycle;
        let pid = PacketId(self.vc_occ[idx]);
        if self.vc_ready_at[idx] > now {
            return;
        }
        let here = self.topo.link(link).dst;
        if NodeId(self.vc_dest[idx]) == here {
            let class = MessageClass(self.vc_class[idx]);
            eject_reqs.push((self.qidx(here, class), idx, pid));
            return;
        }
        // Stream mode's determinism contract: every visited ready
        // non-ejecting head consumes exactly one serial draw — parked or
        // not — so the wake scheduler never shifts the draw schedule.
        // Keyed mode's draws are position-free, so a parked head's draw
        // is simply never computed (the arithmetic the stream contract
        // forced the wake scheduler to keep paying).
        let keyed = self.config.rng_mode == RngMode::Keyed;
        let mut sample = if keyed {
            0
        } else {
            self.draw_sample(DrawSite::PhaseA, idx as u64)
        };
        // Parked fast path: a head whose last routing pass proved no
        // feasible move, with a wake deadline still in the future, routes
        // the same `None` the dense scan would recompute — skip the ctx
        // build, the routing call and the feasibility walk entirely. This
        // is the saturated-regime cost the wake scheduler removes.
        if self.vc_wake_at[idx] > now {
            self.wake.skips += 1;
            if self.telem.active() {
                self.telem.note_credit_stalls(here.index(), 1);
            }
            return;
        }
        if keyed {
            sample = self.draw_sample(DrawSite::PhaseA, idx as u64);
        }
        let mut cands = std::mem::take(&mut self.cand_buf);
        match self.phase_a_route_or_park(idx, link, vc, sample, &mut cands) {
            PhaseAOutcome::Route(out_link, target, blocked_for) => self.register_request(
                out_link,
                LinkRequest {
                    source: MoveSource::Vc(idx),
                    pid,
                    target,
                    blocked_for,
                },
            ),
            // A resident packet that cannot even request a move is
            // credit-stalled at its current router; the fused walk may
            // have decided to park it until its answer can change.
            outcome => {
                if self.telem.active() {
                    self.telem.note_credit_stalls(here.index(), 1);
                }
                match outcome {
                    PhaseAOutcome::Park(note) => self.apply_park(note),
                    _ => self.wake.stalls += 1,
                }
            }
        }
        self.cand_buf = cands;
    }

    /// Pure Phase A routing decision for the ready, non-ejecting head at
    /// arena index `idx`, given its tie-break `sample`: which output link
    /// it requests, with what target-VC kind and age — or `None` when
    /// every feasible next hop lacks buffer or link credit this cycle.
    ///
    /// Takes `&self` so both the serial sweep and the shard planners (see
    /// [`crate::shard`]) make *the same call*: sharded decisions cannot
    /// drift from serial ones.
    pub(crate) fn phase_a_route(
        &self,
        idx: usize,
        link: LinkId,
        vc: u8,
        sample: u64,
        cands: &mut Vec<Candidate>,
    ) -> Option<(LinkId, TargetVc, u64)> {
        let now = self.cycle;
        let dest = NodeId(self.vc_dest[idx]);
        debug_assert_eq!(
            dest,
            self.packets.get(PacketId(self.vc_occ[idx])).dest,
            "stale dest mirror"
        );
        let here = self.topo.link(link).dst;
        let in_escape = self.config.escape_sticky && vc == 0;
        let blocked_for = now.saturating_sub(self.vc_entered_at[idx].max(self.vc_ready_at[idx]));
        let ctx = RouteCtx {
            cur: here,
            dest,
            arrived_via: Some(link),
            in_escape,
            blocked_for,
            sample,
        };
        let class = MessageClass(self.vc_class[idx]);
        let vn = self.config.vn_of_class(class) as u8;
        debug_assert_eq!(
            vn,
            ((idx % self.stride) / self.config.vcs_per_vn) as u8,
            "packet must sit in its class VN"
        );
        // Escape VCs are a last resort: only packets blocked for
        // the configured patience may fall back into one
        // (packets already in an escape VC must continue there).
        let allow_escape = in_escape
            || self.escape_always_allowed()
            || blocked_for >= self.config.escape_entry_patience;
        self.choose_feasible(&ctx, vn, allow_escape, cands)
            .map(|(l, t)| (l, t, blocked_for))
    }

    /// Pure Phase A routing decision for the head of the `(node, class)`
    /// injection queue, given its tie-break `sample`. Shared between the
    /// serial sweep and the shard planners, like
    /// [`SimCore::phase_a_route`].
    ///
    /// Source-queue waiting is ordinary queueing, not deadlock pressure:
    /// a waiting injection holds no network resource, so it neither
    /// deflects nor claims the escape VC (it can always keep waiting for
    /// a non-escape buffer). The head's destination comes from the hot
    /// mirror, not the slab: under backpressure every queue is non-empty
    /// and the slab spans megabytes.
    pub(crate) fn injection_route(
        &self,
        node: NodeId,
        class: MessageClass,
        sample: u64,
        cands: &mut Vec<Candidate>,
    ) -> Option<(LinkId, TargetVc)> {
        let q = self.qidx(node, class);
        let ctx = RouteCtx {
            cur: node,
            dest: NodeId(self.inj_head_dest[q]),
            arrived_via: None,
            in_escape: false,
            blocked_for: 0,
            sample,
        };
        let vn = self.config.vn_of_class(class) as u8;
        let allow_escape = self.escape_always_allowed();
        self.choose_feasible(&ctx, vn, allow_escape, cands)
    }

    /// Whether escape-VC entry needs no patience: non-sticky configs have
    /// no escape distinction, and single-VC VNs have nothing else to use.
    #[inline]
    fn escape_always_allowed(&self) -> bool {
        !self.config.escape_sticky
            || self.config.vcs_per_vn == 1
            || self.config.escape_entry_patience == 0
    }

    /// Finds the first routing candidate with a free link and a free
    /// target VC. `allow_escape` gates fallback into escape VCs (entry
    /// patience). `cands` is caller-provided scratch (cleared here).
    fn choose_feasible(
        &self,
        ctx: &RouteCtx,
        vn: u8,
        allow_escape: bool,
        cands: &mut Vec<Candidate>,
    ) -> Option<(LinkId, TargetVc)> {
        cands.clear();
        self.routing.candidates(ctx, cands);
        for cand in cands.iter() {
            let target = match (cand.target, allow_escape) {
                (TargetVc::Any, false) => TargetVc::NonEscapeOnly,
                (TargetVc::EscapeOnly, false) => continue,
                (t, _) => t,
            };
            if !self.link_is_free(cand.link) {
                continue;
            }
            let downgraded = Candidate {
                link: cand.link,
                target,
            };
            if self.resolve_target_vc(downgraded, vn).is_some() {
                return Some((cand.link, target));
            }
        }
        None
    }

    /// Fused Phase A routing + parking decision for the ready,
    /// non-ejecting head at `idx`: the first feasible candidate in
    /// rotated order — exactly [`SimCore::phase_a_route`]'s answer — or,
    /// when every candidate is infeasible, a parking decision folded out
    /// of the *same* walk (no second pass over the candidate set: the
    /// failure walk has already touched every link clock and target slot
    /// the wake decision needs).
    ///
    /// Parking is declined (`Stall`) when unsound — an
    /// [`WakeProfile::Unstable`] routing, or a router too wide for the
    /// 32-bit subscription mask — and when it is sound but *worthless*: a
    /// wake deadline of `now + 1` fires before the next visit could skip
    /// anything, so the park would be pure bookkeeping. That last rule
    /// carries the saturated-regime win: with single-cycle link
    /// serialization, any candidate with an empty-but-infeasible slot
    /// yields a `now + 1` deadline, so heads only ever park when every
    /// eligible candidate slot is occupied — the parks that sleep until a
    /// vacate actually fires.
    ///
    /// Soundness argument (missed wakes are impossible):
    ///
    /// * The candidate *set* is frozen while the packet stays put except
    ///   at known `blocked_for` thresholds (routing widening, escape-entry
    ///   patience); `blocked_for`'s base is frozen while occupied, so each
    ///   uncrossed threshold converts to an exact timed wake.
    /// * Per candidate, feasibility needs a free link and a free target
    ///   VC. `link_busy`/`vc_free_at` only ever move a *known* deadline
    ///   (timed wake at the max of both for empty slots); occupied slots
    ///   can free only through [`SimCore::vacate_slot`], which fires this
    ///   link's subscriptions. State changes in the other direction
    ///   (occupations, busier links) only delay feasibility and are
    ///   re-checked on wake.
    ///
    /// The feasibility half must stay behaviourally identical to
    /// [`SimCore::phase_a_route`] (same downgrade, same link/slot checks,
    /// same first-match order). That duplication is deliberate:
    /// `validate_wake_parking` re-routes parked heads through the
    /// *independent* `choose_feasible` walk, so any drift between the two
    /// shows up as a missed-wake violation in the deep sweeps and
    /// proptests, not as silent divergence.
    ///
    /// Takes `&self` against pre-commit state and is shared with the
    /// shard planners (like [`SimCore::phase_a_route`]); the merge must
    /// apply all park notes before any Phase B commit, mirroring the
    /// serial Phase A → Phase B order.
    pub(crate) fn phase_a_route_or_park(
        &self,
        idx: usize,
        link: LinkId,
        vc: u8,
        sample: u64,
        cands: &mut Vec<Candidate>,
    ) -> PhaseAOutcome {
        let now = self.cycle;
        let dest = NodeId(self.vc_dest[idx]);
        debug_assert_eq!(
            dest,
            self.packets.get(PacketId(self.vc_occ[idx])).dest,
            "stale dest mirror"
        );
        let here = self.topo.link(link).dst;
        let in_escape = self.config.escape_sticky && vc == 0;
        let base = self.vc_entered_at[idx].max(self.vc_ready_at[idx]);
        let blocked_for = now.saturating_sub(base);
        let ctx = RouteCtx {
            cur: here,
            dest,
            arrived_via: Some(link),
            in_escape,
            blocked_for,
            sample,
        };
        let class = MessageClass(self.vc_class[idx]);
        let vn = self.config.vn_of_class(class) as u8;
        debug_assert_eq!(
            vn,
            ((idx % self.stride) / self.config.vcs_per_vn) as u8,
            "packet must sit in its class VN"
        );
        let patience = self.config.escape_entry_patience;
        let allow_escape = in_escape || self.escape_always_allowed() || blocked_for >= patience;
        cands.clear();
        self.routing.candidates(&ctx, cands);

        let out_links = self.topo.out_links(here);
        let mut parkable = self.config.wake_scheduler
            && self.park_gate
            && !matches!(self.wake_profile, WakeProfile::Unstable)
            && out_links.len() <= 32;
        let mut wake_at = u64::MAX;
        if parkable {
            if let WakeProfile::WidensAt(t) = self.wake_profile {
                if blocked_for < t {
                    wake_at = base + t;
                }
            }
            if !allow_escape {
                // Escape targets unlock when `blocked_for` reaches the
                // patience threshold (both the skipped `EscapeOnly`
                // candidates and the `Any` → `NonEscapeOnly` downgrade).
                wake_at = wake_at.min(base + patience);
            }
        }
        let vcs = self.config.vcs_per_vn as u8;
        let mut subs: u32 = 0;
        for cand in cands.iter() {
            let target = match (cand.target, allow_escape) {
                (TargetVc::Any, false) => TargetVc::NonEscapeOnly,
                (TargetVc::EscapeOnly, false) => continue,
                (t, _) => t,
            };
            let li = cand.link.index();
            let link_busy = self.link_busy[li];
            if link_busy <= now
                && self
                    .resolve_target_vc(
                        Candidate {
                            link: cand.link,
                            target,
                        },
                        vn,
                    )
                    .is_some()
            {
                return PhaseAOutcome::Route(cand.link, target, blocked_for);
            }
            if !parkable {
                continue;
            }
            // Infeasible candidate: fold it into the wake decision.
            let (lo, hi) = match target {
                TargetVc::EscapeOnly => (0u8, 1u8),
                TargetVc::NonEscapeOnly => (1, vcs),
                TargetVc::Any => (0, vcs),
            };
            let slot0 = li * self.stride + vn as usize * self.config.vcs_per_vn;
            let mut any_occupied = false;
            for tvc in lo..hi {
                let s = slot0 + tvc as usize;
                if self.vc_occ[s] != EMPTY {
                    any_occupied = true;
                } else {
                    // Empty but infeasible: claimable no earlier than
                    // when both the link and the buffer tail free up.
                    wake_at = wake_at.min(link_busy.max(self.vc_free_at[s]));
                }
            }
            if any_occupied {
                match out_links.iter().position(|&l| l == cand.link) {
                    Some(j) => subs |= 1u32 << j,
                    // A candidate that is not an out-link of `here` would
                    // break the subscription invariant; never park on it.
                    None => {
                        debug_assert!(false, "candidate {:?} not an out-link", cand.link);
                        parkable = false;
                    }
                }
            }
        }
        if !parkable {
            return PhaseAOutcome::Stall;
        }
        debug_assert!(
            wake_at > now,
            "an infeasible move cannot become feasible this cycle"
        );
        // A wake at `now + 1` fires before the next visit could skip
        // anything — the park would be pure overhead. Stay active.
        if wake_at <= now + 1 {
            return PhaseAOutcome::Stall;
        }
        PhaseAOutcome::Park(ParkNote {
            idx: idx as u32,
            wake_at,
            subs,
        })
    }

    /// Applies a park note: records the wake deadline and inserts the
    /// subscription entries this slot does not already hold (the
    /// `sub_mask` invariant makes the dedup exact, so entry counts stay
    /// bounded by the router degree no matter how often the slot
    /// re-parks).
    pub(crate) fn apply_park(&mut self, note: ParkNote) {
        let idx = note.idx as usize;
        if self.vc_wake_at[idx] != 0 {
            // The head had parked before and this visit's wake failed to
            // unblock it.
            self.wake.spurious_wakes += 1;
        }
        self.vc_wake_at[idx] = note.wake_at;
        let mut fresh = note.subs & !self.sub_mask[idx];
        self.sub_mask[idx] |= note.subs;
        if fresh != 0 {
            let out_links = self.topo.out_links(NodeId(self.idx_here[idx]));
            while fresh != 0 {
                let j = fresh.trailing_zeros() as u8;
                fresh &= fresh - 1;
                let li = out_links[j as usize].index();
                self.wake_subs[li].push(WakeSub {
                    slot: note.idx,
                    j,
                });
            }
        }
        self.wake.parks += 1;
    }

    /// Conservative wake-all: every parked head's deadline drops to `now`
    /// so the next Phase A sweep re-routes it. Used around events the
    /// subscription graph does not model (mechanism-forced permutations).
    /// Subscription entries stay in place — the `sub_mask` invariant is a
    /// slot property, and a later fire on a woken slot is a no-op `min`.
    pub(crate) fn wake_all(&mut self) {
        if !self.config.wake_scheduler {
            return;
        }
        let now = self.cycle;
        for &idx in &self.active {
            let w = &mut self.vc_wake_at[idx as usize];
            *w = (*w).min(now);
        }
        self.wake.wake_alls += 1;
    }

    /// Wake-scheduler accounting since construction (or the last
    /// [`SimCore::set_wake_scheduler`] toggle).
    pub fn wake_counters(&self) -> WakeCounters {
        self.wake
    }

    /// Credits `skips` parked-head skips and `stalls` unparked blocked
    /// visits (the shard merge applies the workers' per-plan counts
    /// through this; the counters are additive so apply order is
    /// immaterial).
    pub(crate) fn note_wake_skips(&mut self, skips: u64, stalls: u64) {
        self.wake.skips += skips;
        self.wake.stalls += stalls;
    }

    /// Switches the wake-driven Phase A scheduler on or off mid-assembly
    /// and resets all wake state: deadlines, subscription lists, masks and
    /// counters. The reset is what makes enabling *after* a disabled
    /// stretch sound — fires skipped while disabled can no longer be
    /// missed if nothing is parked. Results are bit-identical either way
    /// (differential tests exist to prove it).
    pub fn set_wake_scheduler(&mut self, enabled: bool) {
        self.config.wake_scheduler = enabled;
        self.vc_wake_at.iter_mut().for_each(|w| *w = 0);
        self.sub_mask.iter_mut().for_each(|m| *m = 0);
        self.wake_subs.iter_mut().for_each(Vec::clear);
        self.pending_fires.clear();
        self.wake = WakeCounters::default();
        self.park_gate = true;
        self.gate_parks = 0;
        self.gate_skips = 0;
        self.gate_next = (self.cycle / GATE_WINDOW + 1) * GATE_WINDOW;
    }

    /// Switches the tie-break sample source (see [`crate::rng`]) for an
    /// assembled core and re-seeds the serial stream to its cycle-0
    /// position. Meant for pre-run configuration: the two modes produce
    /// different (equally valid) random sequences, so switching mid-run
    /// splices two unrelated draw histories — deterministic, but pinned
    /// by neither mode's golden family.
    pub fn set_rng_mode(&mut self, mode: RngMode) {
        self.config.rng_mode = mode;
        self.rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        self.rng_draws = [0; NUM_DRAW_SITES];
    }

    /// Deep-sweep validation of the wake scheduler (paired with
    /// [`SimCore::validate_active_index`]):
    ///
    /// * *No missed wake*: every parked head (`wake_at > now`) must still
    ///   route `None` — re-deciding Phase A for it right now (sample 0;
    ///   `None`-ness is sample-independent, see [`WakeProfile`]) must not
    ///   find a feasible move the scheduler would have skipped.
    /// * *Subscription bookkeeping*: every `sub_mask` bit corresponds to
    ///   exactly one `(slot, j)` entry in the right link's wake list, and
    ///   no list holds an entry without its mask bit.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate_wake_parking(&self) -> Result<(), String> {
        let now = self.cycle;
        let mut cands = Vec::new();
        for &idx in &self.active {
            let idx = idx as usize;
            if self.vc_wake_at[idx] <= now {
                continue;
            }
            let link = LinkId(self.idx_link[idx]);
            let vc = self.idx_vc[idx];
            if self.vc_ready_at[idx] > now {
                return Err(format!(
                    "parked VC {:?} is not allocation-eligible (ready_at {} > {now})",
                    self.vc_ref_of_index(idx),
                    self.vc_ready_at[idx]
                ));
            }
            if let Some((l, _, _)) = self.phase_a_route(idx, link, vc, 0, &mut cands) {
                return Err(format!(
                    "missed wake: parked VC {:?} (wake_at {}) has a feasible move via {l:?}",
                    self.vc_ref_of_index(idx),
                    self.vc_wake_at[idx]
                ));
            }
        }
        let mut entry_counts = vec![0u32; self.sub_mask.len()];
        for (li, list) in self.wake_subs.iter().enumerate() {
            for s in list {
                let slot = s.slot as usize;
                if self.sub_mask[slot] & (1u32 << s.j) == 0 {
                    return Err(format!(
                        "wake entry (slot {slot}, j {}) on link {li} has no mask bit",
                        s.j
                    ));
                }
                let here = NodeId(self.idx_here[slot]);
                let expect = self.topo.out_links(here).get(s.j as usize).copied();
                if expect != Some(LinkId(li as u32)) {
                    return Err(format!(
                        "wake entry (slot {slot}, j {}) sits on link {li}, expected {expect:?}",
                        s.j
                    ));
                }
                entry_counts[slot] += 1;
            }
        }
        for (slot, &mask) in self.sub_mask.iter().enumerate() {
            if mask.count_ones() != entry_counts[slot] {
                return Err(format!(
                    "slot {slot} mask has {} bits but {} wake entries exist",
                    mask.count_ones(),
                    entry_counts[slot]
                ));
            }
        }
        Ok(())
    }

    /// Registers a pending request on `link` for this cycle's Phase B
    /// arbitration.
    pub(crate) fn register_request(&mut self, link: LinkId, req: LinkRequest) {
        let li = link.index();
        self.req_bits[li / 64] |= 1u64 << (li % 64);
        self.req_buf[li].push(req);
    }

    /// Oldest-first ejection arbitration for the non-empty request
    /// `group` of ejection queue `q` (each entry `(q, arena idx, pid)`):
    /// index of the winning entry. Rotation breaks ties. `&self` so shard
    /// planners pick the identical winner (see [`crate::shard`]).
    pub(crate) fn eject_winner(&self, q: usize, group: &[(usize, usize, PacketId)]) -> usize {
        let now = self.cycle;
        let rot = (now as usize + q) % group.len();
        (0..group.len())
            .max_by_key(|&i| {
                let idx = group[i].1;
                let blocked =
                    now.saturating_sub(self.vc_entered_at[idx].max(self.vc_ready_at[idx]));
                (blocked, usize::from(i == rot))
            })
            .expect("non-empty group")
    }

    /// Oldest-first link arbitration for the non-empty request list of
    /// output link `li`: index of the winning request. Rotation breaks
    /// ties; ties on `(age, rotation)` fall to the *last* maximum, so the
    /// winner depends on list order — shard planners build their lists in
    /// the serial sweep's order exactly so this picks the same request.
    pub(crate) fn link_winner(&self, li: usize, reqs: &[LinkRequest]) -> usize {
        let rot = (self.cycle as usize + li) % reqs.len();
        (0..reqs.len())
            .max_by_key(|&i| (reqs[i].blocked_for, usize::from(i == rot)))
            .expect("non-empty request list")
    }

    /// Resolves a target kind to the first currently free concrete VC.
    pub(crate) fn resolve_target_vc(&self, cand: Candidate, vn: u8) -> Option<VcRef> {
        let vcs = self.config.vcs_per_vn as u8;
        let try_vc = |vc: u8| -> Option<VcRef> {
            let r = VcRef {
                link: cand.link,
                vn,
                vc,
            };
            self.vc_is_free(r).then_some(r)
        };
        match cand.target {
            TargetVc::EscapeOnly => try_vc(0),
            TargetVc::NonEscapeOnly => (1..vcs).find_map(try_vc),
            TargetVc::Any => (1..vcs).find_map(try_vc).or_else(|| try_vc(0)),
        }
    }

    fn commit_move(&mut self, req: &LinkRequest, out_link: LinkId) {
        let deferred = self.commit_move_deferring(req, out_link, |_| false);
        debug_assert!(deferred.is_none());
    }

    /// Commits a granted link request. `defer` inspects the resolved
    /// target's arena index: when it returns `true` the target-VC
    /// occupation (and the packet's location update) is *not* applied
    /// here but returned as a [`PendingOccupy`] for the caller to apply
    /// later via [`SimCore::apply_remote_occupy`] — the sharded kernel's
    /// cross-shard handoff. Everything else (source vacation, link
    /// serialization, stats, telemetry, trace events) commits
    /// immediately either way, so the two paths are bit-identical.
    ///
    /// Deferral is sound within a cycle because nothing else inspects the
    /// target slot before the barrier: each output link receives exactly
    /// one grant and every grant's target VC sits on its own output link,
    /// so no later commit's `resolve_target_vc` can observe the deferred
    /// slot.
    pub(crate) fn commit_move_deferring(
        &mut self,
        req: &LinkRequest,
        out_link: LinkId,
        defer: impl Fn(usize) -> bool,
    ) -> Option<PendingOccupy> {
        let now = self.cycle;
        // Free the source.
        match req.source {
            MoveSource::Vc(idx) => {
                debug_assert_eq!(self.vc_occ[idx], req.pid.0);
                let len = self.vc_len[idx] as u64;
                self.vacate_slot(idx, now + len);
            }
            MoveSource::Injection { node, class } => {
                let q = self.qidx(node, class);
                let popped = self.inj[q].pop_front();
                debug_assert_eq!(popped, Some(req.pid));
                match self.inj[q].front() {
                    Some(&head) => self.inj_head_dest[q] = self.packets.get(head).dest.0,
                    None => self.nonempty_inj -= 1,
                }
                self.packets.get_mut(req.pid).inject_cycle = now;
                self.stats.injected += 1;
            }
        }
        // One slab read covers the rest of the commit (`Packet` is `Copy`).
        let p = *self.packets.get(req.pid);
        let p_len = p.len_flits as u64;
        let from_node = self.topo.link(out_link).src;
        // Occupy the target VC.
        let vn = self.config.vn_of_class(p.class) as u8;
        let cand = Candidate {
            link: out_link,
            target: req.target,
        };
        let target = self
            .resolve_target_vc(cand, vn)
            .expect("target was free at request time and only one grant per link");
        let tidx = self.vc_index(target);
        let deferred = defer(tidx);
        if !deferred {
            let arrive = now + self.config.link_latency as u64 + self.config.router_latency as u64;
            self.occupy_slot(tidx, req.pid, arrive, now);
        }
        self.link_busy[out_link.index()] = now + p_len;
        // Packet bookkeeping.
        let to_node = self.topo.link(out_link).dst;
        let old_d = self.dmap.distance(from_node, p.dest);
        let new_d = self.dmap.distance(to_node, p.dest);
        let misroute = new_d >= old_d;
        let pm = self.packets.get_mut(req.pid);
        if !deferred {
            pm.loc = Location::Vc {
                link: out_link,
                vn: target.vn,
                vc: target.vc,
            };
        }
        pm.hops += 1;
        if misroute {
            pm.misroutes += 1;
            self.stats.misroutes += 1;
        }
        self.stats.hops += 1;
        self.stats.flit_hops += p_len;
        self.stats.last_progress_cycle = now;
        if self.telem.active() {
            self.telem.note_link_flits(out_link.index(), p_len);
        }
        if self.tracer.enabled() {
            let (src, dest, class) = (p.src.0, p.dest.0, p.class.index() as u8);
            if matches!(req.source, MoveSource::Injection { .. }) {
                self.tracer.push(TraceEvent::Inject {
                    cycle: now,
                    pid: req.pid.0,
                    src,
                    dest,
                    class,
                });
            }
            self.tracer.push(TraceEvent::VcAlloc {
                cycle: now,
                pid: req.pid.0,
                link: out_link.0,
                vn: target.vn,
                vc: target.vc,
            });
            self.tracer.push(TraceEvent::LinkTraverse {
                cycle: now,
                pid: req.pid.0,
                link: out_link.0,
                flits: p_len as u32,
                misroute,
            });
        }
        deferred.then_some(PendingOccupy {
            tidx: tidx as u32,
            pid: req.pid,
        })
    }

    /// Applies a deferred cross-shard occupation (see
    /// [`SimCore::commit_move_deferring`]): the packet lands in its
    /// resolved target VC with the same arrival time it would have
    /// received at commit time (both run within the same cycle).
    pub(crate) fn apply_remote_occupy(&mut self, pending: PendingOccupy) {
        let now = self.cycle;
        let tidx = pending.tidx as usize;
        let arrive = now + self.config.link_latency as u64 + self.config.router_latency as u64;
        self.occupy_slot(tidx, pending.pid, arrive, now);
        let r = self.vc_ref_of_index(tidx);
        self.packets.get_mut(pending.pid).loc = Location::Vc {
            link: r.link,
            vn: r.vn,
            vc: r.vc,
        };
    }

    pub(crate) fn commit_eject(&mut self, vc_idx: usize, pid: PacketId) {
        let now = self.cycle;
        debug_assert_eq!(self.vc_occ[vc_idx], pid.0);
        let len = self.vc_len[vc_idx] as u64;
        self.vacate_slot(vc_idx, now + len);
        self.finish_delivery(pid, false);
    }

    /// Records delivery stats and parks the packet in its destination's
    /// ejection queue.
    fn finish_delivery(&mut self, pid: PacketId, via_drain: bool) {
        let now = self.cycle;
        let (dest, class, len, inject, birth) = {
            let p = self.packets.get(pid);
            (
                p.dest,
                p.class,
                p.len_flits as u64,
                p.inject_cycle,
                p.birth_cycle,
            )
        };
        let q = self.qidx(dest, class);
        debug_assert!(self.ej[q].len() < self.config.ej_queue_capacity || via_drain);
        self.ej[q].push_back(pid);
        self.ej_bits[q / 64] |= 1u64 << (q % 64);
        self.ej_backlog += 1;
        self.packets.get_mut(pid).loc = Location::EjectionQueue(dest);
        let net = now.saturating_sub(inject) + len;
        let total = now.saturating_sub(birth) + len;
        self.stats.net_latency.record(net);
        self.stats.total_latency.record(total);
        self.stats.ejected += 1;
        self.stats.window_ejected += 1;
        self.stats.last_progress_cycle = now;
        if self.tracer.enabled() {
            self.tracer.push(TraceEvent::Eject {
                cycle: now,
                pid: pid.0,
                node: dest.0,
                class: class.index() as u8,
                latency: net,
            });
        }
    }

    /// Applies an atomic set of forced one-hop movements (a drain step or a
    /// spin). Movements form a partial permutation: sources are distinct,
    /// targets are distinct, and a target may coincide with another move's
    /// source (the classic cyclic shift).
    ///
    /// A moved packet that arrives at its destination router ejects
    /// immediately if its ejection queue has space (paper §III-C2).
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if the set is not a valid permutation or a
    /// source VC is empty.
    pub(crate) fn apply_forced(&mut self, moves: &[ForcedMove], kind: ForcedKind) {
        let now = self.cycle;
        // A forced permutation rearranges occupancy wholesale — packets
        // land in new buffers, links go busy, ejections free VCs. The
        // vacates below fire their own wake lists, but conservatively wake
        // every parked head anyway: forced cycles are rare (one per drain
        // epoch / spin) and a blanket re-route is provably safe, whereas
        // proving the subscription graph covers every mechanism's side
        // effects is not worth the fragility.
        self.wake_all();
        // Validate + snapshot.
        let mut staged: Vec<(PacketId, VcRef)> = Vec::with_capacity(moves.len());
        for m in moves {
            let fidx = self.vc_index(m.from);
            let occ = self.vc_occ[fidx];
            assert!(occ != EMPTY, "forced move from an empty VC");
            debug_assert_eq!(
                self.topo.link(m.from.link).dst,
                self.topo.link(m.to.link).src,
                "forced move must pivot at the from-link's head router"
            );
            staged.push((PacketId(occ), m.to));
        }
        if cfg!(debug_assertions) {
            let mut froms: Vec<usize> = moves.iter().map(|m| self.vc_index(m.from)).collect();
            froms.sort_unstable();
            froms.dedup();
            assert_eq!(froms.len(), moves.len(), "duplicate forced-move source");
            let mut tos: Vec<usize> = moves.iter().map(|m| self.vc_index(m.to)).collect();
            tos.sort_unstable();
            tos.dedup();
            assert_eq!(tos.len(), moves.len(), "duplicate forced-move target");
        }
        // Clear all sources first (atomic permutation semantics).
        for m in moves {
            let fidx = self.vc_index(m.from);
            let len = self.vc_len[fidx] as u64;
            self.vacate_slot(fidx, now + len);
        }
        // Fill targets / eject.
        let arrive = now + self.config.link_latency as u64 + self.config.router_latency as u64;
        for (pid, to) in staged {
            let p_len = self.packets.get(pid).len_flits as u64;
            let from_node = self.topo.link(to.link).src;
            let to_node = self.topo.link(to.link).dst;
            self.link_busy[to.link.index()] = now + p_len;
            self.stats.flit_hops += p_len;
            let (dest, class, old_d, new_d) = {
                let p = self.packets.get(pid);
                (
                    p.dest,
                    p.class,
                    self.dmap.distance(from_node, p.dest),
                    self.dmap.distance(to_node, p.dest),
                )
            };
            {
                let p = self.packets.get_mut(pid);
                p.hops += 1;
                p.forced_hops += 1;
                if new_d >= old_d {
                    p.misroutes += 1;
                }
            }
            self.stats.hops += 1;
            self.stats.forced_hops += 1;
            if new_d >= old_d {
                self.stats.misroutes += 1;
            }
            if self.telem.active() {
                self.telem.note_link_flits(to.link.index(), p_len);
            }
            if self.tracer.enabled() {
                self.tracer.push(TraceEvent::ForcedHop {
                    cycle: now,
                    pid: pid.0,
                    link: to.link.0,
                    kind,
                    misroute: new_d >= old_d,
                });
            }
            if dest == to_node && self.ejection_has_space(to_node, class) {
                self.finish_delivery(pid, true);
                continue;
            }
            let tidx = self.vc_index(to);
            debug_assert!(
                self.vc_occ[tidx] == EMPTY,
                "forced-move target still occupied after clearing sources"
            );
            self.occupy_slot(tidx, pid, arrive, now);
            self.packets.get_mut(pid).loc = Location::Vc {
                link: to.link,
                vn: to.vn,
                vc: to.vc,
            };
        }
        match kind {
            ForcedKind::Drain => self.stats.drains += 1,
            ForcedKind::FullDrain => self.stats.full_drains += 1,
            ForcedKind::Spin => self.stats.spins += 1,
        }
        if !moves.is_empty() {
            self.stats.last_progress_cycle = now;
        }
    }

    /// Places a freshly created packet directly into a VC buffer —
    /// scripted scenarios only (walk-throughs, adversarial tests). The
    /// packet is counted as generated and injected at the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if the VC is occupied or `vn` does not match the class's
    /// virtual network.
    pub fn place_packet(
        &mut self,
        r: VcRef,
        src: NodeId,
        dest: NodeId,
        class: MessageClass,
        len_flits: u32,
    ) -> PacketId {
        assert_eq!(
            self.config.vn_of_class(class) as u8,
            r.vn,
            "packet class must match the VC's virtual network"
        );
        let idx = self.vc_index(r);
        assert!(self.vc_occ[idx] == EMPTY, "VC {r:?} is occupied");
        let pid = self.packets.insert(Packet {
            src,
            dest,
            class,
            len_flits,
            birth_cycle: self.cycle,
            inject_cycle: self.cycle,
            loc: Location::Vc {
                link: r.link,
                vn: r.vn,
                vc: r.vc,
            },
            hops: 0,
            misroutes: 0,
            forced_hops: 0,
            tag: 0,
        });
        self.occupy_slot(idx, pid, self.cycle, self.cycle);
        self.stats.generated += 1;
        self.stats.injected += 1;
        pid
    }

    /// Snapshot of `(VcRef, PacketId)` for every occupied VC (diagnostics
    /// and walk-throughs).
    pub fn occupied_vcs(&self) -> Vec<(VcRef, PacketId)> {
        self.vc_refs()
            .filter_map(|r| self.vc(r).occ.map(|p| (r, p)))
            .collect()
    }

    /// Oracle delivery: teleports the packet in `r` straight into its
    /// destination's ejection queue (zero cost). Used by the ideal
    /// deadlock-free reference (Fig 5) — never by a real mechanism.
    pub fn oracle_deliver(&mut self, r: VcRef) {
        let idx = self.vc_index(r);
        let occ = self.vc_occ[idx];
        if occ == EMPTY {
            return;
        }
        self.vacate_slot(idx, self.cycle);
        // Out-of-band vacate (mechanism `control`, before this cycle's
        // Phase A): deliver the wake now so parked heads can use the
        // freed slot this very cycle, exactly as the dense scan would.
        self.flush_wakes();
        self.stats.oracle_resolutions += 1;
        self.finish_delivery(PacketId(occ), true);
    }

    /// Direct RNG access for endpoint models that want the core's seeded
    /// stream. This is the *serial* stream: drawing from it shifts the
    /// stream-mode draw schedule of everything after it, and keyed mode
    /// never reads it — schedule-free mechanism/endpoint randomness
    /// should go through [`SimCore::mechanism_sample`] instead.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

impl std::fmt::Debug for SimCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCore")
            .field("topology", &self.topo.name())
            .field("cycle", &self.cycle)
            .field("in_network", &self.active.len())
            .field("live_packets", &self.packets.len())
            .field("routing", &self.routing.name())
            .finish()
    }
}
