//! Cycle-driven network-on-chip simulator for the DRAIN reproduction.
//!
//! This crate is the from-scratch substitute for gem5/Garnet2.0 used by the
//! paper: virtual-cut-through routers with a 1-cycle pipeline, virtual
//! networks and virtual channels holding a single packet each, credit-based
//! flow control, per-class injection/ejection queues, pluggable routing
//! functions and pluggable deadlock-freedom mechanisms.
//!
//! Structure (with the paper sections each module reproduces):
//!
//! * [`SimConfig`] — the Table II parameters (§V-A methodology).
//! * [`state::SimCore`] — buffers, queues, timers, allocation engine.
//! * [`Sim`] — the per-cycle driver (endpoints → mechanism → allocation).
//!   `Sim` is `Send`; the bench crate's parallel sweep engine runs whole
//!   simulations on worker threads.
//! * [`routing`] — DoR, up*/down* (§II baselines, Fig 5), fully-adaptive,
//!   escape-VC composite.
//! * [`traffic`] — synthetic patterns and trace replay ([`traffic::Endpoints`]
//!   is also implemented by the MESI engine in `drain-coherence`).
//! * [`mechanism`] — the deadlock-freedom hook DRAIN (§III-C drain
//!   windows) and SPIN plug into.
//! * [`shard`] — the sharded deterministic allocation kernel: router
//!   partitioning, parallel per-shard planning, a canonical barrier
//!   merge. Bit-identical to the serial kernel at every shard count.
//! * [`deadlock`] — the structural wait-for-graph oracle backing the §II-A
//!   deadlock-likelihood study (Fig 3) and the §V evaluation's
//!   deadlock-detection instrumentation.
//! * [`stats`] — latency histograms (mean/p99), throughput windows, event
//!   counters (the §V metrics: Figs 10–15).
//! * [`check`] — opt-in runtime invariant checks (conservation, VC
//!   occupancy, reachability, forward progress, forced-move validity) and
//!   the delivery-fingerprint recorder behind the differential oracle in
//!   the bench crate.
//! * [`trace`] — opt-in structured event bus (typed events, bounded ring
//!   buffer, JSONL/memory sinks) and the flight recorder that dumps the
//!   last events + a VC snapshot when a run dies. Distinct from
//!   [`traffic::TraceTraffic`], which *replays* workload traces.
//! * [`telemetry`] — opt-in periodic sampler: per-router VC occupancy,
//!   queue depths, credit stalls and per-link utilization time series.
//! * [`metrics`] — the unified metrics registry (counters / gauges /
//!   histograms under one stable `drain_` namespace, Prometheus and
//!   JSONL exposition) and the sampled kernel phase profiler. Pure
//!   observers: enabling them cannot perturb results.
//! * [`rng`] — the two determinism contracts for stochastic tie-breaks:
//!   the serial draw stream (`Stream`, the default) and the keyed
//!   counter-based mixer (`Keyed`), under which draws are pure functions
//!   of `(seed, cycle, site, id)`.
//!
//! # Examples
//!
//! Simulate uniform-random traffic on a faulty 8×8 mesh with fully adaptive
//! routing and no deadlock protection (the Fig 3 setup):
//!
//! ```
//! use drain_topology::{Topology, faults::FaultInjector};
//! use drain_netsim::{Sim, SimConfig};
//! use drain_netsim::routing::FullyAdaptive;
//! use drain_netsim::mechanism::NoMechanism;
//! use drain_netsim::traffic::{SyntheticTraffic, SyntheticPattern};
//!
//! let topo = FaultInjector::new(1).remove_links(&Topology::mesh(8, 8), 8)?;
//! let mut sim = Sim::new(
//!     topo.clone(),
//!     SimConfig { vns: 1, vcs_per_vn: 2, num_classes: 1,
//!                 deadlock_check_interval: 256, ..SimConfig::default() },
//!     Box::new(FullyAdaptive::new(&topo)),
//!     Box::new(NoMechanism),
//!     Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.05, 1, 42)),
//! );
//! sim.run(2_000);
//! assert!(sim.stats().ejected > 0);
//! # Ok::<(), drain_topology::TopologyError>(())
//! ```

// `deny`, not `forbid`: the sharded kernel's worker pool
// (`shard::pool`) carries the crate's only `#[allow(unsafe_code)]`, with
// the safety argument documented at the site.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod config;
pub mod deadlock;
pub mod mechanism;
pub mod metrics;
pub mod packet;
pub mod rng;
pub mod routing;
pub mod shard;
pub mod sim;
pub mod state;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod traffic;

pub use check::{CheckConfig, PacketFingerprint, RecordingEndpoints, Violation, ViolationKind};
pub use config::SimConfig;
pub use metrics::{
    HistogramSnapshot, MetricFamily, MetricKind, MetricSample, MetricValue, MetricsConfig,
    MetricsSnapshot, Phase, PhaseProfiler,
};
pub use packet::{Location, MessageClass, Packet, PacketId, PacketSlab};
pub use rng::{DrawSite, RngMode};
pub use shard::{ShardFabric, ShardMap, MAX_SHARDS};
pub use sim::{RunOutcome, Sim};
pub use state::{SimCore, VcRef, VcState};
pub use stats::{Stats, WakeCounters};
pub use telemetry::{RouterTelemetry, Telemetry, TelemetrySample};
pub use trace::{TraceConfig, TraceEvent, TraceSink, Tracer};

#[cfg(test)]
mod tests;
