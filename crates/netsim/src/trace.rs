//! Structured event tracing: the simulator's observability event bus.
//!
//! The paper's argument is temporal — drain epochs periodically sweep
//! blocked packets out of cyclic waits — but aggregate statistics cannot
//! show an epoch happening. This module adds a typed event stream to the
//! core: every inject, VC allocation, link traversal, ejection, drain-epoch
//! boundary, forced hop, SPIN probe/spin, deadlock conviction and invariant
//! violation can be emitted as a [`TraceEvent`].
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** The hot paths guard every emission
//!    behind a single `bool` load ([`Tracer::enabled`]); events are only
//!    constructed behind the guard, so a run with tracing off pays one
//!    predictable branch per would-be event.
//! 2. **Bounded memory.** Events always land in a ring buffer of
//!    [`TraceConfig::ring_capacity`] entries (the flight recorder's "last N
//!    events" window), and optionally stream to a [`TraceSink`].
//! 3. **No serde.** The build environment has no crates.io access, so
//!    events serialize through a hand-written flat-JSON line format
//!    ([`TraceEvent::to_jsonl`] / [`TraceEvent::parse_jsonl`]) that
//!    round-trips every variant exactly; any JSON reader can consume the
//!    output.
//!
//! The **flight recorder** ([`flight_record`]) turns the ring buffer into a
//! post-mortem artifact: when a run dies (invariant violation, watchdog
//! trip, structural deadlock conviction), the driver dumps a JSONL file —
//! header, full VC-occupancy snapshot, then the last events, violation
//! last — into [`TraceConfig::flightrec_dir`], carrying the replayable
//! seed.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::check::ViolationKind;
use crate::mechanism::ForcedKind;
use crate::state::SimCore;

/// Observability knobs, stored in [`crate::SimConfig::trace`].
///
/// Everything is off by default; enabling `events` alone gives ring-buffer
/// capture (enough for the flight recorder), installing a sink via
/// [`crate::Sim::set_trace_sink`] additionally streams every event out.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceConfig {
    /// Emit [`TraceEvent`]s into the ring buffer (and the sink, if any).
    pub events: bool,
    /// Ring-buffer capacity in events (the flight recorder's window).
    pub ring_capacity: usize,
    /// Telemetry sampling period in cycles (0 disables the sampler; see
    /// [`crate::telemetry`]).
    pub telemetry_period: u64,
    /// Maximum telemetry samples kept in memory (oldest dropped first).
    pub telemetry_capacity: usize,
    /// Directory for flight-recorder dumps; `None` disables the recorder.
    pub flightrec_dir: Option<PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            events: false,
            ring_capacity: 4096,
            telemetry_period: 0,
            telemetry_capacity: 4096,
            flightrec_dir: None,
        }
    }
}

impl TraceConfig {
    /// Event tracing on (ring capture), everything else default.
    pub fn events_on() -> Self {
        TraceConfig {
            events: true,
            ..TraceConfig::default()
        }
    }

    /// Enables the telemetry sampler at the given cadence.
    pub fn with_telemetry(mut self, period: u64) -> Self {
        self.telemetry_period = period;
        self
    }

    /// Enables the flight recorder, dumping into `dir` on failure.
    pub fn with_flight_recorder(mut self, dir: impl Into<PathBuf>) -> Self {
        self.flightrec_dir = Some(dir.into());
        self
    }
}

/// One structured simulator event.
///
/// Every variant is flat (integers plus short strings) so the JSONL codec
/// stays trivial and byte-stable: identical runs serialize to identical
/// bytes, which the golden-trace regression test relies on.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEvent {
    /// A packet won injection allocation and entered the network.
    Inject {
        /// Cycle of the grant.
        cycle: u64,
        /// Packet id (slab index; unique while live).
        pid: u32,
        /// Source node.
        src: u16,
        /// Destination node.
        dest: u16,
        /// Message class.
        class: u8,
    },
    /// A packet was allocated a downstream VC buffer.
    VcAlloc {
        /// Cycle of the grant.
        cycle: u64,
        /// Packet id.
        pid: u32,
        /// Input link whose buffer was claimed.
        link: u32,
        /// Virtual network of the claimed VC.
        vn: u8,
        /// VC index within the VN (0 = escape).
        vc: u8,
    },
    /// A packet started serializing over a link.
    LinkTraverse {
        /// Cycle the traversal started.
        cycle: u64,
        /// Packet id.
        pid: u32,
        /// Traversed link.
        link: u32,
        /// Serialized flits.
        flits: u32,
        /// Whether the hop failed to reduce distance to the destination.
        misroute: bool,
    },
    /// A packet was delivered into its destination's ejection queue.
    Eject {
        /// Cycle of delivery.
        cycle: u64,
        /// Packet id.
        pid: u32,
        /// Destination node.
        node: u16,
        /// Message class.
        class: u8,
        /// Network latency (injection → ejection, tail-inclusive).
        latency: u64,
    },
    /// A drain window began (pre-drain credit freeze entered).
    DrainEpochStart {
        /// Cycle the pre-drain freeze began.
        cycle: u64,
        /// 1-based drain-window number.
        window: u64,
        /// Whether this window is a full drain.
        full: bool,
    },
    /// A drain window completed.
    DrainEpochEnd {
        /// Cycle the window completed (normal operation resumes).
        cycle: u64,
        /// 1-based drain-window number.
        window: u64,
        /// Forced moves executed during the window.
        moved: u64,
    },
    /// One forced one-hop movement (drain step or spin).
    ForcedHop {
        /// Cycle of the forced move.
        cycle: u64,
        /// Packet id.
        pid: u32,
        /// Link the packet was forced across.
        link: u32,
        /// Why the move was forced.
        kind: ForcedKind,
        /// Whether the hop failed to reduce distance to the destination.
        misroute: bool,
    },
    /// A SPIN probe advanced one hop along the wait-for chain.
    Probe {
        /// Cycle of the probe hop.
        cycle: u64,
        /// Router the probe head sits at.
        router: u16,
        /// Probe path length so far (1 = just launched).
        len: u32,
    },
    /// SPIN closed a cycle and spun the packets on it.
    Spin {
        /// Cycle of the spin.
        cycle: u64,
        /// Packets moved by the spin.
        moves: u32,
    },
    /// The structural detector convicted a set of VCs as deadlocked.
    DeadlockConviction {
        /// Cycle of the detector sweep.
        cycle: u64,
        /// Number of deadlocked VCs.
        convicted: u32,
        /// First convicted VC's input link.
        link: u32,
        /// First convicted VC's virtual network.
        vn: u8,
        /// First convicted VC's VC index.
        vc: u8,
    },
    /// The progress watchdog tripped.
    WatchdogTrip {
        /// Cycle of the trip.
        cycle: u64,
        /// Cycles without packet movement at the trip.
        idle: u64,
    },
    /// A runtime invariant check failed (see [`crate::check`]).
    InvariantViolation {
        /// Cycle of the failed check.
        cycle: u64,
        /// Which invariant failed.
        kind: ViolationKind,
        /// Replay seed ([`crate::SimConfig::seed`]).
        seed: u64,
        /// Human-readable description.
        detail: String,
    },
}

impl TraceEvent {
    /// The cycle the event happened at.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Inject { cycle, .. }
            | TraceEvent::VcAlloc { cycle, .. }
            | TraceEvent::LinkTraverse { cycle, .. }
            | TraceEvent::Eject { cycle, .. }
            | TraceEvent::DrainEpochStart { cycle, .. }
            | TraceEvent::DrainEpochEnd { cycle, .. }
            | TraceEvent::ForcedHop { cycle, .. }
            | TraceEvent::Probe { cycle, .. }
            | TraceEvent::Spin { cycle, .. }
            | TraceEvent::DeadlockConviction { cycle, .. }
            | TraceEvent::WatchdogTrip { cycle, .. }
            | TraceEvent::InvariantViolation { cycle, .. } => cycle,
        }
    }

    /// Stable event-type name (the JSONL `"ev"` discriminator).
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::Inject { .. } => "inject",
            TraceEvent::VcAlloc { .. } => "vc-alloc",
            TraceEvent::LinkTraverse { .. } => "link-traverse",
            TraceEvent::Eject { .. } => "eject",
            TraceEvent::DrainEpochStart { .. } => "drain-epoch-start",
            TraceEvent::DrainEpochEnd { .. } => "drain-epoch-end",
            TraceEvent::ForcedHop { .. } => "forced-hop",
            TraceEvent::Probe { .. } => "probe",
            TraceEvent::Spin { .. } => "spin",
            TraceEvent::DeadlockConviction { .. } => "deadlock-conviction",
            TraceEvent::WatchdogTrip { .. } => "watchdog-trip",
            TraceEvent::InvariantViolation { .. } => "invariant-violation",
        }
    }

    /// Serializes the event as one flat JSON line (no trailing newline).
    ///
    /// Field order is fixed per variant, so identical events always produce
    /// identical bytes.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"ev\":\"{}\",\"cycle\":{}", self.kind_name(), self.cycle());
        match self {
            TraceEvent::Inject {
                pid, src, dest, class, ..
            } => {
                let _ = write!(s, ",\"pid\":{pid},\"src\":{src},\"dest\":{dest},\"class\":{class}");
            }
            TraceEvent::VcAlloc { pid, link, vn, vc, .. } => {
                let _ = write!(s, ",\"pid\":{pid},\"link\":{link},\"vn\":{vn},\"vc\":{vc}");
            }
            TraceEvent::LinkTraverse {
                pid,
                link,
                flits,
                misroute,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"pid\":{pid},\"link\":{link},\"flits\":{flits},\"misroute\":{misroute}"
                );
            }
            TraceEvent::Eject {
                pid,
                node,
                class,
                latency,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"pid\":{pid},\"node\":{node},\"class\":{class},\"latency\":{latency}"
                );
            }
            TraceEvent::DrainEpochStart { window, full, .. } => {
                let _ = write!(s, ",\"window\":{window},\"full\":{full}");
            }
            TraceEvent::DrainEpochEnd { window, moved, .. } => {
                let _ = write!(s, ",\"window\":{window},\"moved\":{moved}");
            }
            TraceEvent::ForcedHop {
                pid,
                link,
                kind,
                misroute,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"pid\":{pid},\"link\":{link},\"kind\":\"{}\",\"misroute\":{misroute}",
                    kind.name()
                );
            }
            TraceEvent::Probe { router, len, .. } => {
                let _ = write!(s, ",\"router\":{router},\"len\":{len}");
            }
            TraceEvent::Spin { moves, .. } => {
                let _ = write!(s, ",\"moves\":{moves}");
            }
            TraceEvent::DeadlockConviction {
                convicted,
                link,
                vn,
                vc,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"convicted\":{convicted},\"link\":{link},\"vn\":{vn},\"vc\":{vc}"
                );
            }
            TraceEvent::WatchdogTrip { idle, .. } => {
                let _ = write!(s, ",\"idle\":{idle}");
            }
            TraceEvent::InvariantViolation {
                kind, seed, detail, ..
            } => {
                let _ = write!(s, ",\"kind\":\"{}\",\"seed\":{seed},\"detail\":", kind.name());
                escape_into(detail, &mut s);
            }
        }
        s.push('}');
        s
    }

    /// Parses one line produced by [`TraceEvent::to_jsonl`].
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema problem. Unknown event
    /// types and missing fields are errors; extra fields are tolerated
    /// (forward compatibility).
    pub fn parse_jsonl(line: &str) -> Result<TraceEvent, String> {
        let fields = parse_flat_object(line)?;
        let get_u64 = |k: &str| -> Result<u64, String> {
            match fields.iter().find(|(key, _)| key == k) {
                Some((_, FlatValue::Num(n))) => Ok(*n),
                Some(_) => Err(format!("field {k:?} is not a number")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let get_bool = |k: &str| -> Result<bool, String> {
            match fields.iter().find(|(key, _)| key == k) {
                Some((_, FlatValue::Bool(b))) => Ok(*b),
                Some(_) => Err(format!("field {k:?} is not a bool")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let get_str = |k: &str| -> Result<&str, String> {
            match fields.iter().find(|(key, _)| key == k) {
                Some((_, FlatValue::Str(s))) => Ok(s.as_str()),
                Some(_) => Err(format!("field {k:?} is not a string")),
                None => Err(format!("missing field {k:?}")),
            }
        };
        let ev = get_str("ev")?.to_string();
        let cycle = get_u64("cycle")?;
        let out = match ev.as_str() {
            "inject" => TraceEvent::Inject {
                cycle,
                pid: get_u64("pid")? as u32,
                src: get_u64("src")? as u16,
                dest: get_u64("dest")? as u16,
                class: get_u64("class")? as u8,
            },
            "vc-alloc" => TraceEvent::VcAlloc {
                cycle,
                pid: get_u64("pid")? as u32,
                link: get_u64("link")? as u32,
                vn: get_u64("vn")? as u8,
                vc: get_u64("vc")? as u8,
            },
            "link-traverse" => TraceEvent::LinkTraverse {
                cycle,
                pid: get_u64("pid")? as u32,
                link: get_u64("link")? as u32,
                flits: get_u64("flits")? as u32,
                misroute: get_bool("misroute")?,
            },
            "eject" => TraceEvent::Eject {
                cycle,
                pid: get_u64("pid")? as u32,
                node: get_u64("node")? as u16,
                class: get_u64("class")? as u8,
                latency: get_u64("latency")?,
            },
            "drain-epoch-start" => TraceEvent::DrainEpochStart {
                cycle,
                window: get_u64("window")?,
                full: get_bool("full")?,
            },
            "drain-epoch-end" => TraceEvent::DrainEpochEnd {
                cycle,
                window: get_u64("window")?,
                moved: get_u64("moved")?,
            },
            "forced-hop" => TraceEvent::ForcedHop {
                cycle,
                pid: get_u64("pid")? as u32,
                link: get_u64("link")? as u32,
                kind: ForcedKind::from_name(get_str("kind")?)
                    .ok_or_else(|| format!("unknown forced kind {:?}", get_str("kind")))?,
                misroute: get_bool("misroute")?,
            },
            "probe" => TraceEvent::Probe {
                cycle,
                router: get_u64("router")? as u16,
                len: get_u64("len")? as u32,
            },
            "spin" => TraceEvent::Spin {
                cycle,
                moves: get_u64("moves")? as u32,
            },
            "deadlock-conviction" => TraceEvent::DeadlockConviction {
                cycle,
                convicted: get_u64("convicted")? as u32,
                link: get_u64("link")? as u32,
                vn: get_u64("vn")? as u8,
                vc: get_u64("vc")? as u8,
            },
            "watchdog-trip" => TraceEvent::WatchdogTrip {
                cycle,
                idle: get_u64("idle")?,
            },
            "invariant-violation" => TraceEvent::InvariantViolation {
                cycle,
                kind: ViolationKind::from_name(get_str("kind")?)
                    .ok_or_else(|| format!("unknown violation kind {:?}", get_str("kind")))?,
                seed: get_u64("seed")?,
                detail: get_str("detail")?.to_string(),
            },
            other => return Err(format!("unknown event type {other:?}")),
        };
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Flat JSON codec (no serde, no dependency on the bench crate)
// ---------------------------------------------------------------------

enum FlatValue {
    Num(u64),
    Bool(bool),
    Str(String),
}

fn escape_into(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a single-level JSON object of numbers, bools and strings.
fn parse_flat_object(line: &str) -> Result<Vec<(String, FlatValue)>, String> {
    let bytes = line.trim().as_bytes();
    let mut pos = 0usize;
    let err = |pos: usize, what: &str| format!("{what} at offset {pos}");
    let skip_ws = |bytes: &[u8], pos: &mut usize| {
        while bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t'))
        {
            *pos += 1;
        }
    };
    let parse_string = |bytes: &[u8], pos: &mut usize| -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected '\"'"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            *pos += 4;
                        }
                        _ => return Err(err(*pos, "bad escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    let rest = &bytes[*pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty by match arm");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    };
    if bytes.get(pos) != Some(&b'{') {
        return Err(err(pos, "expected '{'"));
    }
    pos += 1;
    let mut fields = Vec::new();
    loop {
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) == Some(&b'}') {
            pos += 1;
            break;
        }
        let key = parse_string(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(err(pos, "expected ':'"));
        }
        pos += 1;
        skip_ws(bytes, &mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => FlatValue::Str(parse_string(bytes, &mut pos)?),
            Some(b't') if bytes[pos..].starts_with(b"true") => {
                pos += 4;
                FlatValue::Bool(true)
            }
            Some(b'f') if bytes[pos..].starts_with(b"false") => {
                pos += 5;
                FlatValue::Bool(false)
            }
            Some(b'0'..=b'9') => {
                let start = pos;
                while bytes.get(pos).is_some_and(u8::is_ascii_digit) {
                    pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..pos]).map_err(|e| e.to_string())?;
                FlatValue::Num(text.parse::<u64>().map_err(|e| e.to_string())?)
            }
            _ => return Err(err(pos, "expected value")),
        };
        fields.push((key, value));
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            _ => return Err(err(pos, "expected ',' or '}'")),
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing bytes"));
    }
    Ok(fields)
}

// ---------------------------------------------------------------------
// Sinks and the tracer
// ---------------------------------------------------------------------

/// Where emitted events go, beyond the always-on ring buffer.
pub enum TraceSink {
    /// Discard (ring-buffer capture only). The default.
    Null,
    /// Collect in memory (tests, golden traces).
    Memory(Vec<TraceEvent>),
    /// Stream as JSONL to any writer (files, pipes). Write errors are
    /// counted ([`Tracer::sink_errors`]), not fatal. The writer is `Sync`
    /// because [`crate::SimCore`] as a whole must be shareable with the
    /// sharded kernel's worker threads (which never touch the sink; the
    /// bound is what lets the compiler prove that sharing safe).
    Writer(Box<dyn Write + Send + Sync>),
}

impl TraceSink {
    /// A buffered JSONL file sink, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Any IO error from creating the directories or the file.
    pub fn jsonl_file(path: impl AsRef<Path>) -> std::io::Result<TraceSink> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::Writer(Box::new(std::io::BufWriter::new(file))))
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSink::Null => write!(f, "TraceSink::Null"),
            TraceSink::Memory(v) => write!(f, "TraceSink::Memory({} events)", v.len()),
            TraceSink::Writer(_) => write!(f, "TraceSink::Writer"),
        }
    }
}

/// The event bus: a bounded ring buffer plus an optional streaming sink.
///
/// Owned by [`crate::SimCore`]; hot paths emit through it behind a single
/// branch on [`Tracer::enabled`].
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    sink: TraceSink,
    emitted: u64,
    sink_errors: u64,
}

impl Tracer {
    /// Builds a tracer from the observability config.
    pub fn new(config: &TraceConfig) -> Self {
        Tracer {
            enabled: config.events,
            capacity: config.ring_capacity.max(1),
            ring: VecDeque::new(),
            sink: TraceSink::Null,
            emitted: 0,
            sink_errors: 0,
        }
    }

    /// Whether events are being captured. This is the hot-path guard:
    /// construct events only when it returns `true`.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Installs a sink and enables event capture (a sink without events
    /// would see nothing).
    pub fn set_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
        self.enabled = true;
    }

    /// Emits one event: appended to the ring (oldest dropped at capacity)
    /// and forwarded to the sink. No-op when disabled.
    pub fn push(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.emitted += 1;
        match &mut self.sink {
            TraceSink::Null => {}
            TraceSink::Memory(v) => v.push(event.clone()),
            TraceSink::Writer(w) => {
                let line = event.to_jsonl();
                if writeln!(w, "{line}").is_err() {
                    self.sink_errors += 1;
                }
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }

    /// The ring-buffer contents, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Events captured by a [`TraceSink::Memory`] sink, if one is
    /// installed.
    pub fn memory(&self) -> Option<&[TraceEvent]> {
        match &self.sink {
            TraceSink::Memory(v) => Some(v),
            _ => None,
        }
    }

    /// Takes the memory sink's events, leaving it empty.
    pub fn take_memory(&mut self) -> Option<Vec<TraceEvent>> {
        match &mut self.sink {
            TraceSink::Memory(v) => Some(std::mem::take(v)),
            _ => None,
        }
    }

    /// Flushes a writer sink (no-op for the others).
    ///
    /// # Errors
    ///
    /// The writer's flush error, if any.
    pub fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.sink {
            TraceSink::Writer(w) => w.flush(),
            _ => Ok(()),
        }
    }

    /// Total events emitted (including those rotated out of the ring).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Sink write failures observed (streaming is best-effort).
    pub fn sink_errors(&self) -> u64 {
        self.sink_errors
    }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Process-wide dump counter so concurrent sims never collide on a name.
static DUMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Dumps a flight record for `core` into the configured
/// [`TraceConfig::flightrec_dir`], returning the path written.
///
/// The file is JSONL: a header line (reason, replay seed, cycle, topology,
/// routing, population counters), one `{"snapshot":"vc",...}` line per
/// occupied VC, then the ring buffer's events oldest-first — so the
/// *final* lines are the most recent events (the violation or conviction
/// that triggered the dump, when the driver emitted it before calling
/// this).
///
/// Returns `None` when no directory is configured or the write fails
/// (failure diagnostics must never crash the run being diagnosed; the
/// error is reported to stderr).
pub fn flight_record(core: &SimCore, reason: &str) -> Option<PathBuf> {
    use std::fmt::Write as _;
    let dir = core.config().trace.flightrec_dir.clone()?;
    let seq = DUMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let name = format!(
        "fr-{reason}-seed{:x}-c{}-p{}-{seq}.jsonl",
        core.config().seed,
        core.cycle(),
        std::process::id()
    );
    let path = dir.join(name);
    let mut out = String::new();
    out.push_str("{\"flightrec\":\"v1\",\"reason\":");
    escape_into(reason, &mut out);
    let _ = write!(
        out,
        ",\"seed\":{},\"cycle\":{},\"topology\":",
        core.config().seed,
        core.cycle()
    );
    escape_into(core.topology().name(), &mut out);
    out.push_str(",\"routing\":");
    escape_into(core.routing_name(), &mut out);
    let _ = writeln!(
        out,
        ",\"in_network\":{},\"live_packets\":{},\"events\":{}}}",
        core.packets_in_network(),
        core.live_packets(),
        core.tracer().recent().count()
    );
    for (r, pid) in core.occupied_vcs() {
        let st = core.vc(r);
        let p = core.packet(pid);
        let _ = writeln!(
            out,
            "{{\"snapshot\":\"vc\",\"link\":{},\"vn\":{},\"vc\":{},\"pid\":{},\"src\":{},\
             \"dest\":{},\"class\":{},\"hops\":{},\"ready_at\":{},\"entered_at\":{}}}",
            r.link.index(),
            r.vn,
            r.vc,
            pid.0,
            p.src.index(),
            p.dest.index(),
            p.class.index(),
            p.hops,
            st.ready_at,
            st.entered_at
        );
    }
    for ev in core.tracer().recent() {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        std::fs::write(&path, &out)
    };
    match write() {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write flight record {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_event() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Inject {
                cycle: 1,
                pid: 2,
                src: 3,
                dest: 4,
                class: 1,
            },
            TraceEvent::VcAlloc {
                cycle: 5,
                pid: 2,
                link: 7,
                vn: 0,
                vc: 1,
            },
            TraceEvent::LinkTraverse {
                cycle: 5,
                pid: 2,
                link: 7,
                flits: 5,
                misroute: true,
            },
            TraceEvent::Eject {
                cycle: 9,
                pid: 2,
                node: 4,
                class: 1,
                latency: 8,
            },
            TraceEvent::DrainEpochStart {
                cycle: 1024,
                window: 1,
                full: false,
            },
            TraceEvent::DrainEpochEnd {
                cycle: 1040,
                window: 1,
                moved: 3,
            },
            TraceEvent::ForcedHop {
                cycle: 1030,
                pid: 9,
                link: 11,
                kind: ForcedKind::FullDrain,
                misroute: false,
            },
            TraceEvent::Probe {
                cycle: 2000,
                router: 6,
                len: 4,
            },
            TraceEvent::Spin {
                cycle: 2004,
                moves: 4,
            },
            TraceEvent::DeadlockConviction {
                cycle: 2100,
                convicted: 4,
                link: 13,
                vn: 0,
                vc: 0,
            },
            TraceEvent::WatchdogTrip {
                cycle: 9000,
                idle: 4000,
            },
            TraceEvent::InvariantViolation {
                cycle: 77,
                kind: ViolationKind::ForcedMove,
                seed: 0xBEEF,
                detail: "tricky \"detail\"\nwith newline".to_string(),
            },
        ]
    }

    #[test]
    fn every_event_type_roundtrips_through_jsonl() {
        for ev in every_event() {
            let line = ev.to_jsonl();
            let back = TraceEvent::parse_jsonl(&line)
                .unwrap_or_else(|e| panic!("parse {line:?}: {e}"));
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        for ev in every_event() {
            assert_eq!(ev.to_jsonl(), ev.clone().to_jsonl());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceEvent::parse_jsonl("").is_err());
        assert!(TraceEvent::parse_jsonl("{}").is_err());
        assert!(TraceEvent::parse_jsonl("{\"ev\":\"nope\",\"cycle\":1}").is_err());
        assert!(TraceEvent::parse_jsonl("{\"ev\":\"inject\",\"cycle\":1}").is_err());
        assert!(TraceEvent::parse_jsonl("{\"ev\":\"spin\"").is_err());
    }

    #[test]
    fn parse_tolerates_extra_fields() {
        let ev = TraceEvent::parse_jsonl("{\"ev\":\"spin\",\"cycle\":3,\"moves\":2,\"extra\":1}")
            .unwrap();
        assert_eq!(ev, TraceEvent::Spin { cycle: 3, moves: 2 });
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let mut t = Tracer::new(&TraceConfig {
            events: true,
            ring_capacity: 4,
            ..TraceConfig::default()
        });
        for i in 0..10u64 {
            t.push(TraceEvent::Spin {
                cycle: i,
                moves: 1,
            });
        }
        assert_eq!(t.emitted(), 10);
        let cycles: Vec<u64> = t.recent().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "ring keeps the newest events");
    }

    #[test]
    fn disabled_tracer_captures_nothing() {
        let mut t = Tracer::new(&TraceConfig::default());
        assert!(!t.enabled());
        t.push(TraceEvent::Spin { cycle: 1, moves: 1 });
        assert_eq!(t.emitted(), 0);
        assert_eq!(t.recent().count(), 0);
    }

    #[test]
    fn memory_sink_collects_and_takes() {
        let mut t = Tracer::new(&TraceConfig::default());
        t.set_sink(TraceSink::Memory(Vec::new()));
        assert!(t.enabled(), "installing a sink enables capture");
        t.push(TraceEvent::Spin { cycle: 1, moves: 2 });
        t.push(TraceEvent::Spin { cycle: 2, moves: 3 });
        assert_eq!(t.memory().unwrap().len(), 2);
        let taken = t.take_memory().unwrap();
        assert_eq!(taken.len(), 2);
        assert_eq!(t.memory().unwrap().len(), 0);
    }

    #[test]
    fn writer_sink_streams_jsonl() {
        let dir = std::env::temp_dir().join(format!("drain-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        let mut t = Tracer::new(&TraceConfig::default());
        t.set_sink(TraceSink::jsonl_file(&path).unwrap());
        let evs = every_event();
        for ev in &evs {
            t.push(ev.clone());
        }
        t.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::parse_jsonl(l).unwrap())
            .collect();
        assert_eq!(parsed, evs);
        assert_eq!(t.sink_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
