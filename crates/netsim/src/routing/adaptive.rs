//! Fully adaptive random minimal routing.
//!
//! Each cycle a head packet may claim any output link on a minimal path to
//! its destination, with a rotating tie-break — the paper's "fully adaptive
//! random" routing used by both DRAIN and SPIN. It is **not** deadlock-free
//! on its own: cyclic buffer dependencies can and do form (that is Fig 3's
//! point); DRAIN/SPIN make it safe.

use std::sync::Arc;

use drain_topology::{distance::DistanceMap, IntoSharedTopology, Topology};

use super::{push_rotated, Candidate, RouteCtx, Routing, TargetVc, WakeProfile};

/// Fully adaptive random minimal routing over a [`DistanceMap`].
///
/// # Examples
///
/// ```
/// use drain_topology::{Topology, NodeId};
/// use drain_netsim::routing::{FullyAdaptive, Routing, RouteCtx};
///
/// let topo = Topology::mesh(4, 4);
/// let r = FullyAdaptive::new(&topo);
/// let mut out = Vec::new();
/// r.candidates(&RouteCtx {
///     cur: NodeId(0), dest: NodeId(15), arrived_via: None,
///     in_escape: false, blocked_for: 0, sample: 0,
/// }, &mut out);
/// assert_eq!(out.len(), 2); // both mesh directions are productive
/// ```
#[derive(Clone, Debug)]
pub struct FullyAdaptive {
    dmap: DistanceMap,
    topo: Arc<Topology>,
    deflect_after: Option<u64>,
}

/// Default blocked-cycles threshold before non-minimal candidates are
/// offered.
pub const DEFAULT_DEFLECT_AFTER: u64 = 16;

impl FullyAdaptive {
    /// Builds the routing for `topo` (computes all-pairs distances), with
    /// the default deflection pressure threshold. Accepts an owned or
    /// borrowed topology, or an `Arc` to share one without cloning.
    pub fn new(topo: impl IntoSharedTopology) -> Self {
        Self::with_deflection(topo, Some(DEFAULT_DEFLECT_AFTER))
    }

    /// Builds the routing with an explicit deflection threshold (`None`
    /// = strictly minimal, never deflect).
    pub fn with_deflection(topo: impl IntoSharedTopology, deflect_after: Option<u64>) -> Self {
        let topo = topo.into_shared();
        FullyAdaptive {
            dmap: DistanceMap::new(&topo),
            topo,
            deflect_after,
        }
    }

    /// The underlying distance map.
    pub fn distance_map(&self) -> &DistanceMap {
        &self.dmap
    }

    /// The deflection threshold in blocked cycles.
    pub fn deflect_after(&self) -> Option<u64> {
        self.deflect_after
    }
}

impl Routing for FullyAdaptive {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn candidates(&self, ctx: &RouteCtx, out: &mut Vec<Candidate>) {
        let links = self.dmap.productive_links(ctx.cur, ctx.dest);
        let target = if ctx.in_escape {
            TargetVc::EscapeOnly
        } else {
            TargetVc::Any
        };
        push_rotated(links, ctx.sample, target, out);
        // Under sustained pressure, offer the remaining (non-minimal)
        // output links as last-resort deflections — the "random" part of
        // the paper's fully adaptive random routing. All turns including
        // U-turns are architecturally permitted (§III-A).
        if let Some(after) = self.deflect_after {
            if ctx.blocked_for >= after {
                // Never deflect straight back where the packet came from —
                // that swaps packets endlessly instead of making progress.
                // Deflection is the common case at saturation (every
                // blocked head reaches the threshold), so the filtered
                // list lives on the stack: no heap allocation per call.
                // Routers of degree > 32 (none of the paper's topologies)
                // fall back to a heap collect.
                let back = ctx.arrived_via.map(|l| l.reverse());
                let out_links = self.topo.out_links(ctx.cur);
                let keep = |l: &drain_topology::LinkId| !links.contains(l) && Some(*l) != back;
                if out_links.len() <= 32 {
                    let mut rest = [drain_topology::LinkId(0); 32];
                    let mut n = 0;
                    for &l in out_links {
                        if keep(&l) {
                            rest[n] = l;
                            n += 1;
                        }
                    }
                    push_rotated(&rest[..n], ctx.sample ^ 0x5A, target, out);
                } else {
                    let rest: Vec<drain_topology::LinkId> =
                        out_links.iter().copied().filter(keep).collect();
                    push_rotated(&rest, ctx.sample ^ 0x5A, target, out);
                }
            }
        }
    }

    fn wake_profile(&self) -> WakeProfile {
        // The minimal set is static; deflection widens it exactly once,
        // when `blocked_for` reaches the threshold. `sample` only rotates
        // (both `push_rotated` calls), never changes membership.
        self.deflect_after
            .map_or(WakeProfile::Stable, WakeProfile::WidensAt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_topology::NodeId;

    fn ctx(cur: u16, dest: u16, sample: u64) -> RouteCtx {
        RouteCtx {
            cur: NodeId(cur),
            dest: NodeId(dest),
            arrived_via: None,
            in_escape: false,
            blocked_for: 0,
            sample,
        }
    }

    #[test]
    fn deflection_only_under_pressure() {
        let topo = Topology::mesh(4, 4);
        let r = FullyAdaptive::new(&topo);
        let mut calm = Vec::new();
        r.candidates(&ctx(5, 10, 0), &mut calm);
        let mut pressured = Vec::new();
        r.candidates(
            &RouteCtx {
                blocked_for: 1_000,
                ..ctx(5, 10, 0)
            },
            &mut pressured,
        );
        assert!(pressured.len() > calm.len(), "pressure widens choices");
        // Every output link of the router is offered under pressure.
        assert_eq!(pressured.len(), topo.degree(NodeId(5)));
    }

    #[test]
    fn candidates_are_productive() {
        let topo = Topology::mesh(4, 4);
        let r = FullyAdaptive::new(&topo);
        let mut out = Vec::new();
        r.candidates(&ctx(0, 15, 3), &mut out);
        for c in &out {
            let next = topo.link(c.link).dst;
            assert!(
                r.distance_map().distance(next, NodeId(15))
                    < r.distance_map().distance(NodeId(0), NodeId(15))
            );
        }
    }

    #[test]
    fn sample_rotates_preference() {
        let topo = Topology::mesh(4, 4);
        let r = FullyAdaptive::new(&topo);
        let mut a = Vec::new();
        let mut b = Vec::new();
        r.candidates(&ctx(0, 15, 0), &mut a);
        r.candidates(&ctx(0, 15, 1), &mut b);
        assert_eq!(a.len(), b.len());
        assert_ne!(a[0].link, b[0].link, "tie-break should rotate");
    }

    #[test]
    fn escape_restriction_narrows_targets() {
        let topo = Topology::mesh(4, 4);
        let r = FullyAdaptive::new(&topo);
        let mut out = Vec::new();
        r.candidates(
            &RouteCtx {
                in_escape: true,
                ..ctx(0, 15, 0)
            },
            &mut out,
        );
        assert!(out.iter().all(|c| c.target == TargetVc::EscapeOnly));
    }
}
