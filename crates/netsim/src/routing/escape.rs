//! The escape-VC baseline's composite routing.
//!
//! Non-escape VCs use fully adaptive minimal routing; the escape VC uses a
//! restricted deadlock-free function — dimension-order on fault-free meshes
//! or up*/down* on irregular topologies (paper §V-B). Any blocked packet
//! can fall back to the escape VC (its candidates are appended after the
//! adaptive ones), which is what makes the scheme deadlock-free by Duato's
//! theory; the escape VC is sticky.

use drain_topology::{distance::DistanceMap, updown::UpDownRouting, IntoSharedTopology};

use super::{push_rotated, Candidate, DorTable, RouteCtx, Routing, TargetVc, WakeProfile};

/// Which restricted routing drives the escape VC.
#[derive(Clone, Debug)]
pub enum EscapeKind {
    /// Dimension-order XY via a precomputed next-hop table (only valid on
    /// full meshes).
    Dor(DorTable),
    /// Topology-agnostic up*/down*.
    UpDown(UpDownRouting),
}

/// Composite adaptive + restricted-escape routing.
#[derive(Clone, Debug)]
pub struct EscapeVcRouting {
    dmap: DistanceMap,
    escape: EscapeKind,
}

impl EscapeVcRouting {
    /// Escape VC uses DoR: the paper's configuration on the fault-free
    /// mesh.
    ///
    /// # Panics
    ///
    /// Panics if `topo` lacks mesh coordinates.
    pub fn with_dor(topo: impl IntoSharedTopology) -> Self {
        let topo = topo.into_shared();
        assert!(
            topo.coord(drain_topology::NodeId(0)).is_some(),
            "DoR escape requires a mesh topology"
        );
        EscapeVcRouting {
            dmap: DistanceMap::new(&topo),
            escape: EscapeKind::Dor(DorTable::new(&topo)),
        }
    }

    /// Escape VC uses up*/down*: the paper's configuration on irregular
    /// (faulty) topologies.
    pub fn with_updown(topo: impl IntoSharedTopology) -> Self {
        let topo = topo.into_shared();
        EscapeVcRouting {
            dmap: DistanceMap::new(&topo),
            escape: EscapeKind::UpDown(UpDownRouting::new(&topo)),
        }
    }

    /// Chooses DoR when the mesh is intact, up*/down* otherwise — the
    /// paper's per-fault-count configuration rule.
    pub fn auto(topo: impl IntoSharedTopology, full_mesh: bool) -> Self {
        if full_mesh {
            Self::with_dor(topo)
        } else {
            Self::with_updown(topo)
        }
    }

    fn escape_candidates(&self, ctx: &RouteCtx, fresh_entry: bool, out: &mut Vec<Candidate>) {
        match &self.escape {
            EscapeKind::Dor(table) => {
                if let Some(link) = table.next_hop(ctx.cur, ctx.dest) {
                    out.push(Candidate {
                        link,
                        target: TargetVc::EscapeOnly,
                    });
                }
            }
            EscapeKind::UpDown(ud) => {
                // A packet already in the escape VC carries the up*/down*
                // phase implied by its arrival link; a packet *entering*
                // the escape network starts fresh (its previous hops were
                // on adaptive VCs, outside the escape dependency graph).
                let phase = if fresh_entry {
                    drain_topology::updown::Phase::CanUp
                } else {
                    ud.phase_after(ctx.arrived_via)
                };
                let links = ud.next_hops(ctx.cur, ctx.dest, phase);
                push_rotated(links, ctx.sample, TargetVc::EscapeOnly, out);
            }
        }
    }
}

impl Routing for EscapeVcRouting {
    fn name(&self) -> &str {
        match self.escape {
            EscapeKind::Dor(_) => "escape-vc(dor)",
            EscapeKind::UpDown(_) => "escape-vc(updown)",
        }
    }

    fn candidates(&self, ctx: &RouteCtx, out: &mut Vec<Candidate>) {
        if ctx.in_escape {
            // Restricted escape routing only.
            self.escape_candidates(ctx, false, out);
        } else {
            // Adaptive VCs first, escape fallback last.
            push_rotated(
                self.dmap.productive_links(ctx.cur, ctx.dest),
                ctx.sample,
                TargetVc::NonEscapeOnly,
                out,
            );
            self.escape_candidates(ctx, true, out);
        }
    }

    fn wake_profile(&self) -> WakeProfile {
        // Both branches depend only on cur/dest/arrived_via/in_escape —
        // frozen while the packet stays put; `sample` only rotates.
        WakeProfile::Stable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_topology::faults::FaultInjector;
    use drain_topology::{NodeId, Topology};

    #[test]
    fn adaptive_first_escape_last() {
        let topo = Topology::mesh(4, 4);
        let r = EscapeVcRouting::with_dor(&topo);
        let mut out = Vec::new();
        r.candidates(
            &RouteCtx {
                cur: NodeId(0),
                dest: NodeId(15),
                arrived_via: None,
                in_escape: false,
                blocked_for: 0,
                sample: 0,
            },
            &mut out,
        );
        assert!(out.len() >= 2);
        assert_eq!(out.last().unwrap().target, TargetVc::EscapeOnly);
        assert!(out[..out.len() - 1]
            .iter()
            .all(|c| c.target == TargetVc::NonEscapeOnly));
    }

    #[test]
    fn escape_only_when_in_escape() {
        let topo = Topology::mesh(4, 4);
        let r = EscapeVcRouting::with_dor(&topo);
        let mut out = Vec::new();
        r.candidates(
            &RouteCtx {
                cur: NodeId(5),
                dest: NodeId(10),
                arrived_via: topo.link_between(NodeId(4), NodeId(5)),
                in_escape: true,
                blocked_for: 0,
                sample: 0,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target, TargetVc::EscapeOnly);
    }

    #[test]
    fn updown_escape_always_routable() {
        let topo = FaultInjector::new(6)
            .remove_links(&Topology::mesh(6, 6), 8)
            .unwrap();
        let r = EscapeVcRouting::with_updown(&topo);
        let mut out = Vec::new();
        for cur in topo.nodes() {
            for dest in topo.nodes() {
                if cur == dest {
                    continue;
                }
                out.clear();
                r.candidates(
                    &RouteCtx {
                        cur,
                        dest,
                        arrived_via: None,
                        in_escape: false,
                        blocked_for: 0,
                        sample: 2,
                    },
                    &mut out,
                );
                assert!(
                    out.iter().any(|c| c.target == TargetVc::EscapeOnly),
                    "escape fallback must exist from {cur:?} to {dest:?}"
                );
            }
        }
    }

    #[test]
    fn auto_picks_by_mesh_state() {
        let mesh = Topology::mesh(4, 4);
        assert_eq!(EscapeVcRouting::auto(&mesh, true).name(), "escape-vc(dor)");
        let faulty = FaultInjector::new(0).remove_links(&mesh, 2).unwrap();
        assert_eq!(
            EscapeVcRouting::auto(&faulty, false).name(),
            "escape-vc(updown)"
        );
    }
}
