//! Pure up*/down* routing on every VC (Fig 5 baseline).

use drain_topology::{updown::UpDownRouting, Topology};

use super::{push_rotated, Candidate, RouteCtx, Routing, TargetVc, WakeProfile};

/// Topology-agnostic up*/down* routing applied to all VCs: deadlock-free by
/// construction, at the cost of non-minimal paths and reduced path
/// diversity — the performance gap Fig 5 quantifies.
#[derive(Clone, Debug)]
pub struct UpDownAll {
    ud: UpDownRouting,
}

impl UpDownAll {
    /// Builds up*/down* tables for `topo`.
    pub fn new(topo: &Topology) -> Self {
        UpDownAll {
            ud: UpDownRouting::new(topo),
        }
    }

    /// Wraps precomputed tables.
    pub fn from_tables(ud: UpDownRouting) -> Self {
        UpDownAll { ud }
    }

    /// The underlying tables.
    pub fn tables(&self) -> &UpDownRouting {
        &self.ud
    }
}

impl Routing for UpDownAll {
    fn name(&self) -> &str {
        "updown"
    }

    fn candidates(&self, ctx: &RouteCtx, out: &mut Vec<Candidate>) {
        let phase = self.ud.phase_after(ctx.arrived_via);
        let links = self.ud.next_hops(ctx.cur, ctx.dest, phase);
        let target = if ctx.in_escape {
            TargetVc::EscapeOnly
        } else {
            TargetVc::Any
        };
        push_rotated(links, ctx.sample, target, out);
    }

    fn wake_profile(&self) -> WakeProfile {
        // Hops depend only on (cur, dest, phase(arrived_via)); `sample`
        // only rotates.
        WakeProfile::Stable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_topology::faults::FaultInjector;
    use drain_topology::NodeId;

    #[test]
    fn candidates_follow_phase() {
        let topo = FaultInjector::new(4)
            .remove_links(&Topology::mesh(6, 6), 6)
            .unwrap();
        let r = UpDownAll::new(&topo);
        let mut out = Vec::new();
        for cur in topo.nodes() {
            for dest in topo.nodes() {
                if cur == dest {
                    continue;
                }
                out.clear();
                r.candidates(
                    &RouteCtx {
                        cur,
                        dest,
                        arrived_via: None,
                        in_escape: false,
                        blocked_for: 0,
                        sample: 1,
                    },
                    &mut out,
                );
                assert!(!out.is_empty(), "injected packet must have a route");
            }
        }
        // Phase restriction: after arriving on a down link, only down links
        // may be candidates.
        let down = topo
            .link_ids()
            .find(|&l| {
                matches!(
                    r.tables().direction(l),
                    drain_topology::updown::LinkDirection::Down
                )
            })
            .unwrap();
        let at = topo.link(down).dst;
        for dest in topo.nodes() {
            if dest == at {
                continue;
            }
            out.clear();
            r.candidates(
                &RouteCtx {
                    cur: at,
                    dest,
                    arrived_via: Some(down),
                    in_escape: false,
                    blocked_for: 0,
                    sample: 0,
                },
                &mut out,
            );
            for c in &out {
                assert!(matches!(
                    r.tables().direction(c.link),
                    drain_topology::updown::LinkDirection::Down
                ));
            }
        }
        let _ = NodeId(0);
    }
}
