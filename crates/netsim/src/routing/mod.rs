//! Routing algorithms (paper Table II).
//!
//! The routing function is consulted once per cycle per head packet and
//! returns *candidate moves* in preference order: an output link plus which
//! kind of downstream VC may be targeted. The allocation engine takes the
//! first candidate whose link and VC are free.
//!
//! | Implementation | Paper usage |
//! |---|---|
//! | [`FullyAdaptive`] | DRAIN and SPIN ("fully adaptive random"), Fig 3's non-deadlock-free network |
//! | [`EscapeVcRouting`] | escape-VC baseline: adaptive VCs + restricted escape VC (DoR or up*/down*) |
//! | [`UpDownAll`] | pure up*/down* network (Fig 5) |
//! | [`DorAll`] | dimension-order reference on fault-free meshes |
//! | [`TurnModel`] | west-first / negative-first turn models (Table I row 1) |

mod adaptive;
mod dor;
mod escape;
mod turnmodel;
mod updown_all;

pub use adaptive::{FullyAdaptive, DEFAULT_DEFLECT_AFTER};
pub use dor::{dor_next_hop, DorAll, DorTable};
pub use escape::{EscapeKind, EscapeVcRouting};
pub use turnmodel::{TurnModel, TurnModelKind};
pub use updown_all::UpDownAll;

use drain_topology::{LinkId, NodeId};

/// Which downstream VCs a candidate move may claim.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TargetVc {
    /// Prefer non-escape VCs, fall back to the escape VC.
    Any,
    /// Only the escape VC (index 0 of the packet's VN).
    EscapeOnly,
    /// Only non-escape VCs.
    NonEscapeOnly,
}

/// One candidate move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// Output link to traverse.
    pub link: LinkId,
    /// Downstream VC kind that may be claimed.
    pub target: TargetVc,
}

/// Inputs to a routing decision.
#[derive(Clone, Copy, Debug)]
pub struct RouteCtx {
    /// Router the packet currently occupies.
    pub cur: NodeId,
    /// Packet destination.
    pub dest: NodeId,
    /// Link the packet arrived on (`None` right after injection).
    pub arrived_via: Option<LinkId>,
    /// Whether the packet is restricted to escape VCs (it occupies an
    /// escape VC and the configuration is escape-sticky).
    pub in_escape: bool,
    /// How long the packet has been waiting in its current buffer —
    /// adaptive routings may widen their candidate set under pressure.
    pub blocked_for: u64,
    /// Deterministic tie-break sample (rotates adaptive choices).
    pub sample: u64,
}

/// How a routing's candidate *set* evolves while a head packet stays put,
/// as a function of `RouteCtx::blocked_for` (all other context fields are
/// frozen while the packet occupies the same VC). The wake-driven Phase A
/// scheduler (see `state.rs`) may park a blocked head and skip re-routing
/// it only if the set cannot silently change under it.
///
/// `sample` must only *reorder* candidates (the standard `push_rotated`
/// idiom); a routing whose set membership depends on `sample` must report
/// [`WakeProfile::Unstable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WakeProfile {
    /// The candidate set is independent of `blocked_for`: once computed
    /// it stays valid until the packet moves.
    Stable,
    /// The set is constant below the threshold and constant (possibly
    /// wider) at/above it: valid until `blocked_for` crosses the value.
    WidensAt(u64),
    /// No guarantee — the scheduler must re-route such heads every cycle.
    Unstable,
}

/// A routing algorithm.
///
/// Implementations must be deterministic functions of the context (the
/// `sample` field carries all randomness) so simulations are reproducible.
///
/// `Sync` because the sharded kernel's worker threads evaluate
/// `candidates` concurrently through a shared `&SimCore` (the call takes
/// `&self` and implementations hold only immutable tables).
pub trait Routing: Send + Sync {
    /// Short human-readable name (e.g. `"adaptive"`).
    fn name(&self) -> &str;

    /// Appends candidate moves for `ctx` to `out` in preference order.
    /// An empty result means the packet cannot move this cycle (it will be
    /// retried every cycle).
    fn candidates(&self, ctx: &RouteCtx, out: &mut Vec<Candidate>);

    /// How the candidate set depends on `blocked_for` (see
    /// [`WakeProfile`]). The default is the conservative answer: never
    /// park, re-route every cycle.
    fn wake_profile(&self) -> WakeProfile {
        WakeProfile::Unstable
    }
}

/// Rotates `links` by `sample` into `out` as candidates with `target` —
/// the standard way implementations randomize tie-breaks.
pub(crate) fn push_rotated(
    links: &[LinkId],
    sample: u64,
    target: TargetVc,
    out: &mut Vec<Candidate>,
) {
    if links.is_empty() {
        return;
    }
    let n = links.len();
    let start = (sample % n as u64) as usize;
    for i in 0..n {
        out.push(Candidate {
            link: links[(start + i) % n],
            target,
        });
    }
}
