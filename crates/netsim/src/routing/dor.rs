//! Dimension-order (XY) routing for fault-free meshes.
//!
//! XY routing is deadlock-free by construction (its channel-dependency
//! graph is acyclic) and is the paper's escape-VC routing on the regular
//! mesh (Table II).

use drain_topology::{IntoSharedTopology, LinkId, NodeId, Topology};

use super::{Candidate, RouteCtx, Routing, TargetVc, WakeProfile};

/// The unique XY next hop from `cur` toward `dest` on a mesh topology, or
/// `None` when `cur == dest`.
///
/// # Panics
///
/// Panics if `topo` has no mesh coordinates or the required mesh link is
/// missing (i.e. the mesh is faulty — DoR is only valid on full meshes).
pub fn dor_next_hop(topo: &Topology, cur: NodeId, dest: NodeId) -> Option<LinkId> {
    if cur == dest {
        return None;
    }
    let (cx, cy) = topo.coord(cur).expect("DoR requires mesh coordinates");
    let (dx, dy) = topo.coord(dest).expect("DoR requires mesh coordinates");
    let (w, _) = topo.mesh_dims().expect("DoR requires mesh dimensions");
    let next = if cx != dx {
        // X first.
        if dx > cx {
            NodeId(cur.0 + 1)
        } else {
            NodeId(cur.0 - 1)
        }
    } else if dy > cy {
        NodeId(cur.0 + w)
    } else {
        NodeId(cur.0 - w)
    };
    Some(
        topo.link_between(cur, next)
            .expect("DoR requires a full (fault-free) mesh"),
    )
}

/// Precomputed XY next hops for every `(cur, dest)` pair.
///
/// `dor_next_hop` recomputes coordinates and scans the adjacency list on
/// every call; in the simulator's hot loop the escape candidate is built
/// for each occupied VC head each cycle, so the table turns that into a
/// single load from a dense `n * n` array (16 KiB on an 8×8 mesh —
/// resident in L1/L2). Entries for `cur == dest` hold a sentinel.
#[derive(Clone, Debug)]
pub struct DorTable {
    num_nodes: usize,
    /// `next[cur * n + dest]` = XY next-hop link id, `u32::MAX` = none.
    next: Vec<u32>,
}

impl DorTable {
    /// Tabulates [`dor_next_hop`] over all pairs.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is not a full fault-free mesh.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        let mut next = vec![u32::MAX; n * n];
        for cur in topo.nodes() {
            for dest in topo.nodes() {
                if let Some(l) = dor_next_hop(topo, cur, dest) {
                    next[cur.index() * n + dest.index()] = l.0;
                }
            }
        }
        DorTable { num_nodes: n, next }
    }

    /// The unique XY next hop from `cur` toward `dest`, or `None` when
    /// `cur == dest`.
    #[inline]
    pub fn next_hop(&self, cur: NodeId, dest: NodeId) -> Option<LinkId> {
        let l = self.next[cur.index() * self.num_nodes + dest.index()];
        (l != u32::MAX).then_some(LinkId(l))
    }
}

/// Pure dimension-order routing on every VC.
#[derive(Clone, Debug)]
pub struct DorAll {
    table: DorTable,
}

impl DorAll {
    /// Builds XY routing for a mesh topology. Accepts an owned or borrowed
    /// topology, or an `Arc` to share one without cloning.
    ///
    /// # Panics
    ///
    /// Panics if `topo` lacks mesh coordinates.
    pub fn new(topo: impl IntoSharedTopology) -> Self {
        let topo = topo.into_shared();
        assert!(
            topo.coord(NodeId(0)).is_some(),
            "DoR requires a mesh-derived topology"
        );
        DorAll {
            table: DorTable::new(&topo),
        }
    }
}

impl Routing for DorAll {
    fn name(&self) -> &str {
        "dor"
    }

    fn candidates(&self, ctx: &RouteCtx, out: &mut Vec<Candidate>) {
        if let Some(link) = self.table.next_hop(ctx.cur, ctx.dest) {
            let target = if ctx.in_escape {
                TargetVc::EscapeOnly
            } else {
                TargetVc::Any
            };
            out.push(Candidate { link, target });
        }
    }

    fn wake_profile(&self) -> WakeProfile {
        // One table lookup keyed on (cur, dest); no sample, no pressure.
        WakeProfile::Stable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_goes_x_first() {
        let t = Topology::mesh(4, 4);
        // From (0,0) to (2,1): first hop must be +x (node 1).
        let l = dor_next_hop(&t, NodeId(0), NodeId(6)).unwrap();
        assert_eq!(t.link(l).dst, NodeId(1));
        // From (2,0) to (2,3): x aligned, hop must be +y (node 6).
        let l = dor_next_hop(&t, NodeId(2), NodeId(14)).unwrap();
        assert_eq!(t.link(l).dst, NodeId(6));
    }

    #[test]
    fn xy_reaches_destination() {
        let t = Topology::mesh(5, 5);
        for s in t.nodes() {
            for d in t.nodes() {
                let mut cur = s;
                let mut hops = 0;
                while cur != d {
                    let l = dor_next_hop(&t, cur, d).unwrap();
                    cur = t.link(l).dst;
                    hops += 1;
                    assert!(hops <= 8);
                }
            }
        }
    }

    #[test]
    fn at_destination_no_hop() {
        let t = Topology::mesh(3, 3);
        assert_eq!(dor_next_hop(&t, NodeId(4), NodeId(4)), None);
    }

    #[test]
    fn routing_trait_emits_single_candidate() {
        let t = Topology::mesh(4, 4);
        let r = DorAll::new(&t);
        let mut out = Vec::new();
        r.candidates(
            &RouteCtx {
                cur: NodeId(0),
                dest: NodeId(15),
                arrived_via: None,
                in_escape: false,
                blocked_for: 0,
                sample: 9,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }
}
