//! Turn-model routing (Glass & Ni): the classic proactive deadlock
//! avoidance of Table I's first row.
//!
//! A turn model forbids just enough turns to make the mesh's channel
//! dependency graph acyclic while retaining partial adaptivity:
//!
//! * **West-first** — all turns *to* the west (−x) are forbidden; a packet
//!   must travel west first, then is fully adaptive among the remaining
//!   productive directions.
//! * **Negative-first** — turns from a positive direction to a negative
//!   one are forbidden; packets go negative (−x/−y) first, then positive.
//!
//! Only valid on full (fault-free) meshes, like DoR — which is exactly the
//! limitation the paper's §I holds against proactive schemes ("limited to
//! static, regular topologies").

use std::sync::Arc;

use drain_topology::{IntoSharedTopology, LinkId, NodeId, Topology};

use super::{push_rotated, Candidate, RouteCtx, Routing, TargetVc, WakeProfile};

/// Which turn model to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TurnModelKind {
    /// West-first: go −x first, then adaptive among {+x, +y, −y}.
    WestFirst,
    /// Negative-first: go {−x, −y} first, then adaptive among {+x, +y}.
    NegativeFirst,
}

/// Partially adaptive turn-model routing on a full mesh.
#[derive(Clone, Debug)]
pub struct TurnModel {
    topo: Arc<Topology>,
    kind: TurnModelKind,
}

impl TurnModel {
    /// Builds the routing. Accepts an owned or borrowed topology, or an
    /// `Arc` to share one without cloning.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is not mesh-derived (no coordinates).
    pub fn new(topo: impl IntoSharedTopology, kind: TurnModelKind) -> Self {
        let topo = topo.into_shared();
        assert!(
            topo.coord(NodeId(0)).is_some(),
            "turn models require a mesh topology"
        );
        TurnModel { topo, kind }
    }

    /// The model in use.
    pub fn kind(&self) -> TurnModelKind {
        self.kind
    }

    fn neighbor(&self, cur: NodeId, dx: i32, dy: i32) -> Option<LinkId> {
        let (x, y) = self.topo.coord(cur).expect("mesh coords");
        let (w, h) = self.topo.mesh_dims().expect("mesh dims");
        let nx = x as i32 + dx;
        let ny = y as i32 + dy;
        if nx < 0 || ny < 0 || nx >= w as i32 || ny >= h as i32 {
            return None;
        }
        let next = NodeId((ny as u16) * w + nx as u16);
        self.topo.link_between(cur, next)
    }

    /// Legal productive next hops from `cur` toward `dest`.
    pub fn next_hops(&self, cur: NodeId, dest: NodeId) -> Vec<LinkId> {
        let (cx, cy) = self.topo.coord(cur).expect("mesh coords");
        let (dx, dy) = self.topo.coord(dest).expect("mesh coords");
        let go_w = dx < cx;
        let go_e = dx > cx;
        let go_n = dy > cy; // +y
        let go_s = dy < cy; // -y
        let mut out = Vec::new();
        match self.kind {
            TurnModelKind::WestFirst => {
                if go_w {
                    // Must finish all westward movement first.
                    out.extend(self.neighbor(cur, -1, 0));
                } else {
                    if go_e {
                        out.extend(self.neighbor(cur, 1, 0));
                    }
                    if go_n {
                        out.extend(self.neighbor(cur, 0, 1));
                    }
                    if go_s {
                        out.extend(self.neighbor(cur, 0, -1));
                    }
                }
            }
            TurnModelKind::NegativeFirst => {
                if go_w || go_s {
                    // Negative movement first, adaptively among negatives.
                    if go_w {
                        out.extend(self.neighbor(cur, -1, 0));
                    }
                    if go_s {
                        out.extend(self.neighbor(cur, 0, -1));
                    }
                } else {
                    if go_e {
                        out.extend(self.neighbor(cur, 1, 0));
                    }
                    if go_n {
                        out.extend(self.neighbor(cur, 0, 1));
                    }
                }
            }
        }
        out
    }
}

impl Routing for TurnModel {
    fn name(&self) -> &str {
        match self.kind {
            TurnModelKind::WestFirst => "west-first",
            TurnModelKind::NegativeFirst => "negative-first",
        }
    }

    fn candidates(&self, ctx: &RouteCtx, out: &mut Vec<Candidate>) {
        let links = self.next_hops(ctx.cur, ctx.dest);
        let target = if ctx.in_escape {
            TargetVc::EscapeOnly
        } else {
            TargetVc::Any
        };
        push_rotated(&links, ctx.sample, target, out);
    }

    fn wake_profile(&self) -> WakeProfile {
        // Purely coordinate-based next hops; `sample` only rotates.
        WakeProfile::Stable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::NoMechanism;
    use crate::traffic::{SyntheticPattern, SyntheticTraffic};
    use crate::{Sim, SimConfig};

    fn walk(tm: &TurnModel, topo: &Topology, src: NodeId, dest: NodeId) -> u32 {
        let mut cur = src;
        let mut hops = 0;
        while cur != dest {
            let hs = tm.next_hops(cur, dest);
            assert!(!hs.is_empty(), "stuck at {cur:?} heading to {dest:?}");
            cur = topo.link(hs[0]).dst;
            hops += 1;
            assert!(hops < 64, "loop detected");
        }
        hops
    }

    #[test]
    fn all_pairs_reachable_and_minimal() {
        let topo = Topology::mesh(5, 5);
        for kind in [TurnModelKind::WestFirst, TurnModelKind::NegativeFirst] {
            let tm = TurnModel::new(&topo, kind);
            let d = drain_topology::distance::DistanceMap::new(&topo);
            for s in topo.nodes() {
                for t in topo.nodes() {
                    if s == t {
                        continue;
                    }
                    let hops = walk(&tm, &topo, s, t);
                    assert_eq!(hops as u16, d.distance(s, t), "{kind:?} is minimal");
                }
            }
        }
    }

    #[test]
    fn west_first_never_turns_west() {
        let topo = Topology::mesh(5, 5);
        let tm = TurnModel::new(&topo, TurnModelKind::WestFirst);
        for s in topo.nodes() {
            for t in topo.nodes() {
                if s == t {
                    continue;
                }
                let hs = tm.next_hops(s, t);
                let (sx, _) = topo.coord(s).unwrap();
                let (tx, _) = topo.coord(t).unwrap();
                if tx < sx {
                    // Only the west link may be offered while west remains.
                    for &l in &hs {
                        let (nx, _) = topo.coord(topo.link(l).dst).unwrap();
                        assert!(nx < sx, "west-first must go west first");
                    }
                }
            }
        }
    }

    #[test]
    fn turn_model_network_is_deadlock_free_under_load() {
        // Torture: high load, 1 VC, long run — a turn-model network must
        // never wedge (that's the whole point of proactive avoidance).
        let topo = Topology::mesh(4, 4);
        for kind in [TurnModelKind::WestFirst, TurnModelKind::NegativeFirst] {
            let mut sim = Sim::new(
                topo.clone(),
                SimConfig {
                    vns: 1,
                    vcs_per_vn: 1,
                    num_classes: 1,
                    watchdog_threshold: 10_000,
                    ..SimConfig::default()
                },
                Box::new(TurnModel::new(&topo, kind)),
                Box::new(NoMechanism),
                Box::new(SyntheticTraffic::new(
                    SyntheticPattern::UniformRandom,
                    0.4,
                    1,
                    9,
                )),
            );
            sim.run(40_000);
            assert!(!sim.stats().deadlocked(), "{kind:?} wedged");
            assert!(sim.stats().ejected > 2_000);
        }
    }

    #[test]
    fn adaptivity_is_partial() {
        // From (0,0) to (2,2), west-first offers both +x and +y.
        let topo = Topology::mesh(5, 5);
        let tm = TurnModel::new(&topo, TurnModelKind::WestFirst);
        let hs = tm.next_hops(NodeId(0), NodeId(12));
        assert_eq!(hs.len(), 2);
        // From (2,2) to (0,0), west-first forces pure west movement.
        let hs = tm.next_hops(NodeId(12), NodeId(0));
        assert_eq!(hs.len(), 1);
    }
}
