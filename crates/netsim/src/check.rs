//! Runtime invariant checking for the simulator core.
//!
//! DRAIN's correctness claim is *oblivious* deadlock removal — there is no
//! handshake whose failure would make a bug loud. The invariants that
//! matter (single packet per VC, flit/credit conservation, reachability of
//! every in-flight destination, forward progress across drain epochs) can
//! silently erode under a broken routing table or a malformed forced
//! permutation and still produce plausible-looking throughput numbers.
//!
//! This module is the correctness backstop: with [`CheckConfig`] flags
//! enabled in [`crate::SimConfig::checks`], the driver re-validates the
//! whole core every cycle and validates every forced permutation *before*
//! it is applied. A failed check produces a [`Violation`] carrying the
//! cycle and the core RNG seed so the run can be replayed exactly; by
//! default the simulator panics with that report, or (for soak harnesses)
//! records it and stops the run with
//! [`crate::RunOutcome::InvariantViolation`].
//!
//! [`RecordingEndpoints`] supports the differential oracle built on top of
//! this layer: it fingerprints every delivered packet so two schemes run
//! on identical traffic can be compared for multiset-equal deliveries.
//!
//! Checks are off by default and cost nothing when disabled.

use std::collections::{HashMap, HashSet};
use std::fmt;

use drain_topology::NodeId;

use crate::mechanism::ForcedMove;
use crate::packet::{Location, MessageClass, Packet, PacketId};
use crate::routing::RouteCtx;
use crate::state::SimCore;
use crate::traffic::Endpoints;

/// Which runtime invariants the driver validates, and how it reacts.
///
/// Stored in [`crate::SimConfig::checks`]. The default is everything off
/// (production runs pay nothing); [`CheckConfig::full`] turns every check
/// on, as used by the fuzz harness and the property tests.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckConfig {
    /// Verify packet/queue/counter conservation identities and timer
    /// bounds every cycle.
    pub conservation: bool,
    /// Verify single-packet-per-VC occupancy and location cross-references
    /// every cycle.
    pub occupancy: bool,
    /// Verify every in-flight packet can still reach its destination
    /// (against the BFS [`drain_topology::distance::DistanceMap`] oracle)
    /// and that the routing function offers sane candidates.
    pub reachability: bool,
    /// Validate forced permutations (drains, spins) before they are
    /// applied: occupied sources, router-pivot property, distinct
    /// sources/targets, no innocent packet overwritten.
    pub forced_moves: bool,
    /// Cycles without any packet movement (while packets are in-network)
    /// that count as a forward-progress violation; 0 disables. For DRAIN
    /// this should comfortably exceed one drain epoch.
    pub progress_horizon: u64,
    /// Cadence of the *deep* sweep (full queue/packet container
    /// cross-referencing, which is O(live packets) and dominates when
    /// injection queues back up). The cheap O(VCs) checks run every
    /// cycle; the deep sweep runs every `deep_interval` cycles (1 = every
    /// cycle, 0 = never).
    pub deep_interval: u64,
    /// Panic with the violation report (default) instead of recording it
    /// and stopping the run with
    /// [`crate::RunOutcome::InvariantViolation`].
    pub panic_on_violation: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            conservation: false,
            occupancy: false,
            reachability: false,
            forced_moves: false,
            progress_horizon: 0,
            deep_interval: 64,
            panic_on_violation: true,
        }
    }
}

impl CheckConfig {
    /// Every check enabled (progress still needs
    /// [`CheckConfig::with_progress_horizon`]).
    pub fn full() -> Self {
        CheckConfig {
            conservation: true,
            occupancy: true,
            reachability: true,
            forced_moves: true,
            ..CheckConfig::default()
        }
    }

    /// Enables the forward-progress check with the given horizon.
    pub fn with_progress_horizon(mut self, horizon: u64) -> Self {
        self.progress_horizon = horizon;
        self
    }

    /// Record violations instead of panicking (soak/fuzz harnesses).
    pub fn no_panic(mut self) -> Self {
        self.panic_on_violation = false;
        self
    }

    /// Whether any end-of-cycle sweep is enabled.
    pub fn any_per_cycle(&self) -> bool {
        self.conservation || self.occupancy || self.reachability || self.progress_horizon > 0
    }
}

/// Whether the deep (O(live packets)) check tier runs at `cycle` — the
/// single cadence predicate shared by [`run_checks`] and the driver's
/// sweep-count accounting, so the `drain_check_sweeps_total{tier="deep"}`
/// metric can never drift from what actually ran.
pub fn deep_sweep_due(checks: &CheckConfig, cycle: u64) -> bool {
    checks.deep_interval > 0 && cycle.is_multiple_of(checks.deep_interval)
}

/// Which invariant a [`Violation`] broke.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Packet/queue/counter conservation or a timer bound.
    Conservation,
    /// VC occupancy / packet-location cross-reference.
    Occupancy,
    /// An in-flight packet cannot reach its destination, or the routing
    /// function produced degenerate candidates.
    Reachability,
    /// No packet moved for longer than the configured horizon.
    Progress,
    /// A forced permutation (drain/spin) was malformed.
    ForcedMove,
}

impl ViolationKind {
    /// Stable short name (used in fuzz reports).
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Conservation => "conservation",
            ViolationKind::Occupancy => "occupancy",
            ViolationKind::Reachability => "reachability",
            ViolationKind::Progress => "progress",
            ViolationKind::ForcedMove => "forced-move",
        }
    }

    /// Inverse of [`ViolationKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "conservation" => Some(ViolationKind::Conservation),
            "occupancy" => Some(ViolationKind::Occupancy),
            "reachability" => Some(ViolationKind::Reachability),
            "progress" => Some(ViolationKind::Progress),
            "forced-move" => Some(ViolationKind::ForcedMove),
            _ => None,
        }
    }
}

/// A failed invariant check, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant failed.
    pub kind: ViolationKind,
    /// Cycle at which the check failed.
    pub cycle: u64,
    /// The core's RNG seed ([`crate::SimConfig::seed`]): rebuilding the
    /// same topology/config/traffic with this seed reproduces the run
    /// deterministically.
    pub seed: u64,
    /// Human-readable description of the broken invariant.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violation [{}] at cycle {} (replay: sim seed {:#x}): {}",
            self.kind.name(),
            self.cycle,
            self.seed,
            self.detail
        )
    }
}

fn violation(core: &SimCore, kind: ViolationKind, detail: String) -> Violation {
    Violation {
        kind,
        cycle: core.cycle(),
        seed: core.config().seed,
        detail,
    }
}

/// Runs every per-cycle check enabled in the core's
/// [`crate::SimConfig::checks`]. Called by [`crate::Sim::step`] at the end
/// of each cycle; callable directly against any quiescent core.
///
/// # Errors
///
/// The first violation found, ordered occupancy → conservation →
/// reachability → progress (occupancy failures would poison the later
/// sweeps' packet lookups, so they are reported first).
pub fn run_checks(core: &SimCore) -> Result<(), Violation> {
    let checks = &core.config().checks;
    let deep = deep_sweep_due(checks, core.cycle());
    if checks.occupancy {
        occupancy_vcs(core).map_err(|d| violation(core, ViolationKind::Occupancy, d))?;
        if deep {
            occupancy_deep(core).map_err(|d| violation(core, ViolationKind::Occupancy, d))?;
        }
    }
    if checks.conservation {
        conservation(core).map_err(|d| violation(core, ViolationKind::Conservation, d))?;
    }
    if checks.reachability {
        reachability(core).map_err(|d| violation(core, ViolationKind::Reachability, d))?;
        if deep {
            reachability_queued(core).map_err(|d| violation(core, ViolationKind::Reachability, d))?;
        }
    }
    if checks.progress_horizon > 0 {
        progress(core, checks.progress_horizon)
            .map_err(|d| violation(core, ViolationKind::Progress, d))?;
    }
    Ok(())
}

/// The cheap (O(occupied VCs)) half of the occupancy check, run every
/// cycle: every VC in the active index holds exactly one live packet whose
/// recorded location points back at that VC, and timers are sane. Walks
/// [`SimCore::occupied_vc_indices`] rather than rescanning the dense VC
/// array; the index itself is cross-validated against the raw array by the
/// deep sweep.
fn occupancy_vcs(core: &SimCore) -> Result<(), String> {
    let cfg = core.config();
    let mut seen: HashSet<PacketId> = HashSet::new();
    for &idx in core.occupied_vc_indices() {
        let r = core.vc_ref_of_index(idx as usize);
        let s = core.vc(r);
        let Some(pid) = s.occ else {
            return Err(format!("{r:?} is in the active index but holds no packet"));
        };
        if s.entered_at > core.cycle() {
            return Err(format!(
                "{r:?}: entered_at {} is in the future (cycle {})",
                s.entered_at,
                core.cycle()
            ));
        }
        let Some(p) = core.try_packet(pid) else {
            return Err(format!("{r:?} holds retired {pid:?}"));
        };
        if cfg.vn_of_class(p.class) as u8 != r.vn {
            return Err(format!(
                "{pid:?} of class {} must ride VN {} but occupies {r:?}",
                p.class,
                cfg.vn_of_class(p.class)
            ));
        }
        let here = Location::Vc {
            link: r.link,
            vn: r.vn,
            vc: r.vc,
        };
        if p.loc != here {
            return Err(format!(
                "{pid:?} occupies {here:?} but its location says {:?}",
                p.loc
            ));
        }
        if !seen.insert(pid) {
            return Err(format!("{pid:?} occupies more than one VC"));
        }
    }
    Ok(())
}

/// The deep (O(live packets + VCs)) half of the occupancy check, run every
/// [`CheckConfig::deep_interval`] cycles: the active-VC index exactly
/// mirrors the dense VC array, every queued packet sits in the queue its
/// location claims, and every live packet is held by exactly one
/// container. This is the expensive sweep when injection queues back up,
/// hence the cadence.
fn occupancy_deep(core: &SimCore) -> Result<(), String> {
    core.validate_active_index()?;
    // The wake scheduler's soundness contract: no parked head may have a
    // feasible move, and subscription bookkeeping must balance (see
    // [`SimCore::validate_wake_parking`]). Cheap when nothing is parked.
    core.validate_wake_parking()?;
    let cfg = core.config();
    let live: HashMap<PacketId, &Packet> = core.live_packet_iter().collect();
    let mut holder: HashMap<PacketId, Location> = HashMap::new();
    fn note(
        holder: &mut HashMap<PacketId, Location>,
        pid: PacketId,
        loc: Location,
    ) -> Result<(), String> {
        match holder.insert(pid, loc) {
            Some(prev) => Err(format!("{pid:?} held twice: {prev:?} and {loc:?}")),
            None => Ok(()),
        }
    }

    for r in core.vc_refs() {
        let Some(pid) = core.vc(r).occ else { continue };
        note(
            &mut holder,
            pid,
            Location::Vc {
                link: r.link,
                vn: r.vn,
                vc: r.vc,
            },
        )?;
    }

    for node in core.topology().nodes() {
        for c in 0..cfg.num_classes {
            let class = MessageClass(c as u8);
            for pid in core.injection_queue(node, class) {
                let Some(p) = live.get(&pid) else {
                    return Err(format!(
                        "injection queue ({}, {class}) holds retired {pid:?}",
                        node.index()
                    ));
                };
                if p.class != class {
                    return Err(format!(
                        "{pid:?} of class {} queued under class {class}",
                        p.class
                    ));
                }
                note(&mut holder, pid, Location::InjectionQueue(node))?;
            }
            for pid in core.ejection_queue(node, class) {
                let Some(p) = live.get(&pid) else {
                    return Err(format!(
                        "ejection queue ({}, {class}) holds retired {pid:?}",
                        node.index()
                    ));
                };
                if p.class != class || p.dest != node {
                    return Err(format!(
                        "{pid:?} (class {}, dest {}) parked in ejection queue ({}, {class})",
                        p.class,
                        p.dest.index(),
                        node.index()
                    ));
                }
                note(&mut holder, pid, Location::EjectionQueue(node))?;
            }
        }
    }

    for (&pid, p) in &live {
        match holder.get(&pid) {
            None => {
                return Err(format!(
                    "live {pid:?} ({} -> {}) is held by no container (loc says {:?})",
                    p.src.index(),
                    p.dest.index(),
                    p.loc
                ));
            }
            Some(&loc) if loc != p.loc => {
                return Err(format!(
                    "{pid:?} location mismatch: packet says {:?}, container is {loc:?}",
                    p.loc
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// Conservation ledger and timer bounds: container occupancies sum to the
/// live-packet count, the generated/injected/ejected counters satisfy
/// their lifetime identities, and no link/VC timer promises further into
/// the future than one maximal packet can justify.
fn conservation(core: &SimCore) -> Result<(), String> {
    let cfg = core.config();
    let topo = core.topology();
    let s = &core.stats;
    let mut inj_total = 0usize;
    let mut ej_total = 0usize;
    for node in topo.nodes() {
        for c in 0..cfg.num_classes {
            let class = MessageClass(c as u8);
            inj_total += core.injection_len(node, class);
            ej_total += core.ejection_len(node, class);
        }
    }
    let live = core.live_packets();
    if inj_total + core.packets_in_network() + ej_total != live {
        return Err(format!(
            "containers hold {inj_total} queued + {} in-network + {ej_total} delivered \
             but {live} packets are live",
            core.packets_in_network()
        ));
    }
    if s.injected > s.generated {
        return Err(format!(
            "injected {} exceeds generated {}",
            s.injected, s.generated
        ));
    }
    if s.ejected > s.injected {
        return Err(format!(
            "ejected {} exceeds injected {}",
            s.ejected, s.injected
        ));
    }
    if s.generated + ej_total as u64 != s.ejected + live as u64 {
        return Err(format!(
            "lifetime ledger broken: generated {} + backlog {ej_total} != ejected {} + live {live}",
            s.generated, s.ejected
        ));
    }
    let flit_horizon = core.cycle() + cfg.max_packet_flits() as u64;
    for l in topo.link_ids() {
        if core.link_busy_until(l) > flit_horizon {
            return Err(format!(
                "link {} serializes until {} — beyond cycle + max packet length ({flit_horizon})",
                l.index(),
                core.link_busy_until(l)
            ));
        }
    }
    let ready_horizon = core.cycle() + cfg.link_latency as u64 + cfg.router_latency as u64;
    for r in core.vc_refs() {
        let st = core.vc(r);
        if st.free_at > flit_horizon {
            return Err(format!(
                "{r:?} frees at {} — beyond cycle + max packet length ({flit_horizon})",
                st.free_at
            ));
        }
        if st.occ.is_some() && st.ready_at > ready_horizon {
            return Err(format!(
                "{r:?} ready at {} — beyond cycle + pipeline latency ({ready_horizon})",
                st.ready_at
            ));
        }
    }
    Ok(())
}

/// Reachability against the BFS oracle: every in-flight packet's current
/// router can still reach its destination, and the routing function offers
/// at least one candidate, every one of which departs from the packet's
/// router and does not lead into a disconnected region.
fn reachability(core: &SimCore) -> Result<(), String> {
    let dmap = core.distance_map();
    let topo = core.topology();
    let cfg = core.config();
    let mut cands = Vec::new();
    for r in core.vc_refs() {
        let Some(pid) = core.vc(r).occ else { continue };
        let p = core.packet(pid);
        let cur = topo.link(r.link).dst;
        if p.dest == cur {
            continue; // ejects here; no route needed
        }
        if dmap.distance(cur, p.dest) == u16::MAX {
            return Err(format!(
                "{pid:?} at router {} cannot reach destination {}",
                cur.index(),
                p.dest.index()
            ));
        }
        let ctx = RouteCtx {
            cur,
            dest: p.dest,
            arrived_via: Some(r.link),
            in_escape: cfg.escape_sticky && r.vc == 0,
            // Maximal pressure: include even patience-gated candidates so
            // "no candidates" means structurally stuck, not just waiting.
            blocked_for: u64::MAX,
            sample: 0,
        };
        cands.clear();
        core.route_candidates(&ctx, &mut cands);
        if cands.is_empty() {
            return Err(format!(
                "routing offers no candidate for {pid:?} at router {} toward {}",
                cur.index(),
                p.dest.index()
            ));
        }
        for c in &cands {
            let link = topo.link(c.link);
            if link.src != cur {
                return Err(format!(
                    "candidate link {} for {pid:?} departs router {} instead of {}",
                    c.link.index(),
                    link.src.index(),
                    cur.index()
                ));
            }
            if dmap.distance(link.dst, p.dest) == u16::MAX {
                return Err(format!(
                    "candidate link {} for {pid:?} leads to router {} which cannot reach {}",
                    c.link.index(),
                    link.dst.index(),
                    p.dest.index()
                ));
            }
        }
    }
    Ok(())
}

/// Deep-sweep companion to [`reachability`]: source-queued packets only
/// need their destination to exist in the connected component (they hold
/// no network resource yet), and their set only grows at injection time,
/// so this O(live packets) scan runs on the
/// [`CheckConfig::deep_interval`] cadence.
fn reachability_queued(core: &SimCore) -> Result<(), String> {
    let dmap = core.distance_map();
    for (pid, p) in core.live_packet_iter() {
        if let Location::InjectionQueue(node) = p.loc {
            if dmap.distance(node, p.dest) == u16::MAX {
                return Err(format!(
                    "queued {pid:?} at node {} has unreachable destination {}",
                    node.index(),
                    p.dest.index()
                ));
            }
        }
    }
    Ok(())
}

/// Forward progress: with packets in the network, *something* (a grant, an
/// ejection, a drain) must happen at least once per horizon.
fn progress(core: &SimCore, horizon: u64) -> Result<(), String> {
    if core.packets_in_network() == 0 {
        return Ok(());
    }
    let idle = core.cycle().saturating_sub(core.stats.last_progress_cycle);
    if idle > horizon {
        return Err(format!(
            "no packet movement for {idle} cycles (> horizon {horizon}) with {} packets in-network",
            core.packets_in_network()
        ));
    }
    Ok(())
}

/// Validates a forced permutation (drain step or spin) *before* it is
/// applied, so a corrupted drain path is caught in release builds too
/// (the engine's own checks are debug assertions).
///
/// Rules: every source VC is occupied, every move pivots at the source
/// link's head router, the moved packet stays in its class's virtual
/// network, sources and targets are each distinct, and no target holds a
/// packet that is not itself being moved.
///
/// # Errors
///
/// A [`ViolationKind::ForcedMove`] violation describing the first
/// malformed move.
pub fn validate_forced(core: &SimCore, moves: &[ForcedMove]) -> Result<(), Violation> {
    let topo = core.topology();
    let cfg = core.config();
    let num_links = topo.num_unidirectional_links();
    let mut sources = HashSet::with_capacity(moves.len());
    let mut targets = HashSet::with_capacity(moves.len());
    let fail = |d: String| Err(violation(core, ViolationKind::ForcedMove, d));
    for m in moves {
        for (r, role) in [(m.from, "source"), (m.to, "target")] {
            if r.link.index() >= num_links
                || r.vn as usize >= cfg.vns
                || r.vc as usize >= cfg.vcs_per_vn
            {
                return fail(format!("forced-move {role} {r:?} is out of range"));
            }
        }
        let Some(pid) = core.vc(m.from).occ else {
            return fail(format!("forced move from empty VC {:?}", m.from));
        };
        let pivot = topo.link(m.from.link).dst;
        if topo.link(m.to.link).src != pivot {
            return fail(format!(
                "forced move {:?} -> {:?} does not pivot at router {} \
                 (target link departs router {})",
                m.from,
                m.to,
                pivot.index(),
                topo.link(m.to.link).src.index()
            ));
        }
        let class = core.packet(pid).class;
        if cfg.vn_of_class(class) as u8 != m.to.vn {
            return fail(format!(
                "forced move sends {pid:?} of class {class} into VN {} (its VN is {})",
                m.to.vn,
                cfg.vn_of_class(class)
            ));
        }
        if !sources.insert(m.from) {
            return fail(format!("duplicate forced-move source {:?}", m.from));
        }
        if !targets.insert(m.to) {
            return fail(format!("duplicate forced-move target {:?}", m.to));
        }
    }
    for m in moves {
        if core.vc(m.to).occ.is_some() && !sources.contains(&m.to) {
            return fail(format!(
                "forced-move target {:?} holds a packet that is not being moved",
                m.to
            ));
        }
    }
    Ok(())
}

/// Identity of a delivered packet for differential comparison: two schemes
/// fed identical traffic must deliver identical *multisets* of these.
///
/// [`crate::traffic::SyntheticTraffic`] stamps a per-source sequence
/// number into `tag`, so fingerprints are unique per generated packet and
/// multiset equality degenerates to set equality.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketFingerprint {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Message class.
    pub class: MessageClass,
    /// Length in flits.
    pub len_flits: u32,
    /// Endpoint tag (sequence number for synthetic traffic).
    pub tag: u64,
}

impl PacketFingerprint {
    /// Fingerprint of a packet.
    pub fn of(p: &Packet) -> Self {
        PacketFingerprint {
            src: p.src,
            dest: p.dest,
            class: p.class,
            len_flits: p.len_flits,
            tag: p.tag,
        }
    }
}

/// Endpoint decorator that fingerprints every delivered packet before
/// delegating to the wrapped model — the capture side of the differential
/// oracle. Read the log back through
/// [`crate::Sim::endpoints_as::<RecordingEndpoints>`].
pub struct RecordingEndpoints {
    inner: Box<dyn Endpoints>,
    delivered: Vec<PacketFingerprint>,
}

impl RecordingEndpoints {
    /// Wraps an endpoint model.
    pub fn new(inner: Box<dyn Endpoints>) -> Self {
        RecordingEndpoints {
            inner,
            delivered: Vec::new(),
        }
    }

    /// Every delivery fingerprint observed so far, in delivery order.
    pub fn delivered(&self) -> &[PacketFingerprint] {
        &self.delivered
    }

    /// The delivery multiset in canonical (sorted) order, for comparison
    /// across schemes that deliver in different orders.
    pub fn delivered_sorted(&self) -> Vec<PacketFingerprint> {
        let mut v = self.delivered.clone();
        v.sort_unstable();
        v
    }
}

impl Endpoints for RecordingEndpoints {
    fn name(&self) -> &str {
        "recording"
    }

    fn pre_cycle(&mut self, core: &mut SimCore) {
        // Record before the inner model can consume; skipped (exactly a
        // no-op) when every ejection queue is empty.
        if core.ejection_backlog() > 0 {
            let n = core.topology().num_nodes();
            let classes = core.config().num_classes;
            for ni in 0..n {
                let node = NodeId(ni as u16);
                for c in 0..classes {
                    while let Some(d) = core.pop_ejection(node, MessageClass(c as u8)) {
                        self.delivered.push(PacketFingerprint::of(&d.packet));
                    }
                }
            }
        }
        self.inner.pre_cycle(core);
    }

    fn finished(&self, core: &SimCore) -> bool {
        self.inner.finished(core)
    }

    fn idle_until(&self, core: &SimCore) -> u64 {
        // The recorder's own pre_cycle work (draining ejection queues) is
        // a no-op whenever the backlog is empty, and the driver never
        // fast-forwards over a non-empty backlog — so the wrapped model's
        // idle promise holds for the composite.
        self.inner.idle_until(core)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
