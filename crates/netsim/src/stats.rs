//! Simulation statistics: latency (mean and tails), throughput, mechanism
//! event counters.

use crate::metrics::{HistogramSnapshot, HIST_BUCKETS};

/// Bucketed latency histogram: exact up to `EXACT` cycles, then power-of-two
/// buckets — enough resolution for the paper's mean and 99th-percentile
/// latency plots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    exact: Vec<u64>,
    coarse: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

const EXACT: usize = 2048;
const COARSE_BUCKETS: usize = 32;

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            exact: vec![0; EXACT],
            coarse: vec![0; COARSE_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
        if (latency as usize) < EXACT {
            self.exact[latency as usize] += 1;
        } else {
            // Bucket b covers [2^b, 2^(b+1) - 1].
            let b = (63 - latency.leading_zeros() as usize).min(COARSE_BUCKETS - 1);
            self.coarse[b] += 1;
        }
    }

    /// Merges another histogram's samples into this one (per-router
    /// histograms aggregate into network-wide ones).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.exact.iter_mut().zip(&other.exact) {
            *a += b;
        }
        for (a, b) in self.coarse.iter_mut().zip(&other.coarse) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `p`-quantile (`p` in `[0, 1]`): exact below 2048 cycles,
    /// bucket upper bound above.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // `p = 0` means the minimum sample, so at least one sample must be
        // accumulated before the scan stops.
        let target = (((self.count as f64) * p).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (lat, &n) in self.exact.iter().enumerate() {
            acc += n;
            if acc >= target {
                return lat as u64;
            }
        }
        for (b, &n) in self.coarse.iter().enumerate() {
            acc += n;
            if acc >= target {
                // The bucket's upper bound, clamped to the observed max
                // (the bucket cannot contain anything larger).
                return ((1u64 << (b + 1)) - 1).min(self.max);
            }
        }
        self.max
    }

    /// 99th-percentile latency (paper Fig 15).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Digests the histogram into a fixed-size [`HistogramSnapshot`]
    /// (cumulative counts at power-of-two bounds). One pass over the
    /// bucket arrays into a stack array — cheap enough to call on the
    /// metrics sampling cadence without cloning the 2048-entry exact
    /// array per scrape.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            le: [0; HIST_BUCKETS],
        };
        // Exact value v satisfies `v <= 2^k - 1` iff bit_length(v) <= k,
        // so its first (non-cumulative) bin is bit_length(v) ∈ 0..=11.
        for (v, &n) in self.exact.iter().enumerate() {
            let bin = (u64::BITS - (v as u64).leading_zeros()) as usize;
            snap.le[bin] += n;
        }
        // Coarse bucket b covers [2^b, 2^(b+1) - 1]: everything in it is
        // `<= 2^(b+1) - 1`, i.e. first bin b + 1 (the last bucket's bin
        // lands on +Inf).
        for (b, &n) in self.coarse.iter().enumerate() {
            snap.le[(b + 1).min(HIST_BUCKETS - 1)] += n;
        }
        // Prefix-sum the non-cumulative bins into cumulative `le` counts.
        for k in 1..HIST_BUCKETS {
            snap.le[k] += snap.le[k - 1];
        }
        snap
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.exact.iter_mut().for_each(|x| *x = 0);
        self.coarse.iter_mut().for_each(|x| *x = 0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }
}

/// Wake-driven Phase A scheduler accounting (see `SimCore` and DESIGN.md
/// §9). Deliberately *not* part of [`Stats`]: `Stats` is compared exactly
/// in the wake-on-vs-dense differential tests, and these counters are the
/// one thing that legitimately differs between the two schedulers (the
/// `ff_cycles_skipped` precedent in `Sim`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WakeCounters {
    /// Heads parked after a routing pass produced no feasible move.
    pub parks: u64,
    /// Parked-head visits skipped (no ctx build / routing / feasibility).
    pub skips: u64,
    /// Subscription wake deliveries: entries consumed by slot-vacate
    /// fires (the thundering-herd volume — every subscriber of the freed
    /// slot's link wakes, exactness demands it).
    pub wakes: u64,
    /// Wakes whose next routing pass immediately re-parked the head
    /// (spurious: the wake event did not actually unblock it).
    pub spurious_wakes: u64,
    /// Conservative wake-alls (mechanism-forced cycles etc.).
    pub wake_alls: u64,
    /// Blocked visits that routed to nothing but did not park (unstable
    /// routing profile, wide radix, or a wake deadline of `now + 1` that
    /// could not skip anything). In dense mode every blocked visit lands
    /// here, so `stalls` doubles as the blocked-population gauge.
    pub stalls: u64,
}

/// Aggregated statistics for one simulation.
///
/// `PartialEq` compares every counter and histogram exactly — the
/// fast-forward differential tests rely on it to prove bit-identity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Packets created by endpoints.
    pub generated: u64,
    /// Packets that entered the network (won injection allocation).
    pub injected: u64,
    /// Packets delivered to an ejection queue.
    pub ejected: u64,
    /// Network latency histogram (injection → ejection, tail-inclusive).
    pub net_latency: LatencyHistogram,
    /// Total latency histogram (creation → ejection, includes source
    /// queueing).
    pub total_latency: LatencyHistogram,
    /// Sum of hops over ejected packets.
    pub hops: u64,
    /// Hops that did not reduce distance to the destination.
    pub misroutes: u64,
    /// Hops forced by drains or spins.
    pub forced_hops: u64,
    /// Flit-link traversals (for dynamic power).
    pub flit_hops: u64,
    /// Drain windows executed.
    pub drains: u64,
    /// Full drains executed.
    pub full_drains: u64,
    /// Spin moves executed (SPIN baseline).
    pub spins: u64,
    /// Probe messages hops sent (SPIN baseline).
    pub probe_hops: u64,
    /// Structural deadlocks detected by the oracle.
    pub deadlocks_detected: u64,
    /// First cycle a deadlock was detected at (`u64::MAX` = never).
    pub first_deadlock_cycle: u64,
    /// Deadlocks resolved by the ideal oracle mechanism.
    pub oracle_resolutions: u64,
    /// Cycle of the last packet movement (watchdog input).
    pub last_progress_cycle: u64,
    /// Whether the watchdog tripped.
    pub watchdog_deadlock: bool,
    /// Measurement-window bookkeeping for throughput.
    pub window_start_cycle: u64,
    /// Packets ejected since the measurement window opened.
    pub window_ejected: u64,
}

impl Stats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Stats {
            first_deadlock_cycle: u64::MAX,
            ..Default::default()
        }
    }

    /// Opens a measurement window at `cycle`: latency histograms and the
    /// window ejection counter restart, cumulative counters are kept.
    pub fn open_window(&mut self, cycle: u64) {
        self.window_start_cycle = cycle;
        self.window_ejected = 0;
        self.net_latency.reset();
        self.total_latency.reset();
    }

    /// Received throughput in packets/node/cycle over the open window.
    pub fn throughput(&self, now: u64, num_nodes: usize) -> f64 {
        let cycles = now.saturating_sub(self.window_start_cycle);
        if cycles == 0 || num_nodes == 0 {
            return 0.0;
        }
        self.window_ejected as f64 / cycles as f64 / num_nodes as f64
    }

    /// Average hops per ejected packet.
    pub fn avg_hops(&self) -> f64 {
        if self.ejected == 0 {
            0.0
        } else {
            self.hops as f64 / self.ejected as f64
        }
    }

    /// Whether any deadlock was observed (oracle or watchdog).
    pub fn deadlocked(&self) -> bool {
        self.deadlocks_detected > 0 || self.watchdog_deadlock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for lat in 1..=100u64 {
            h.record(lat);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn histogram_coarse_range() {
        let mut h = LatencyHistogram::new();
        h.record(10_000);
        h.record(5);
        assert_eq!(h.count(), 2);
        assert!(h.p99() >= 8192, "large sample lands in a coarse bucket");
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn histogram_reset() {
        let mut h = LatencyHistogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn throughput_window() {
        let mut s = Stats::new();
        s.open_window(100);
        s.window_ejected = 640;
        assert!((s.throughput(200, 64) - 0.1).abs() < 1e-12);
        assert_eq!(s.throughput(100, 64), 0.0);
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn quantile_zero_is_min_sample() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        h.record(1000);
        assert_eq!(h.quantile(0.0), 42);
        let mut coarse = LatencyHistogram::new();
        coarse.record(5000);
        assert!(coarse.quantile(0.0) >= 4096, "min falls in its coarse bucket");
    }

    #[test]
    fn coarse_quantile_reports_bucket_upper_bound() {
        let mut h = LatencyHistogram::new();
        h.record(3000); // bucket [2048, 4095]
        h.record(3000);
        h.record(100_000);
        // Median sits in the [2048, 4095] bucket; its upper bound is 4095.
        assert_eq!(h.quantile(0.5), 4095);
        // The top quantile is clamped to the observed max, not 2^k - 1.
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn snapshot_matches_direct_recording() {
        let mut h = LatencyHistogram::new();
        let mut direct = HistogramSnapshot::default();
        for v in [0u64, 1, 2, 3, 7, 100, 2047, 2048, 5000, 100_000] {
            h.record(v);
            direct.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, direct.count);
        assert_eq!(snap.sum, direct.sum);
        assert_eq!(snap.max, direct.max);
        // Exact samples land in identical bins; coarse samples may shift
        // up by at most one bucket (the coarse array only knows the
        // power-of-two range). For the values above they agree exactly.
        assert_eq!(snap.le, direct.le);
        assert_eq!(snap.le[HIST_BUCKETS - 1], snap.count);
        // Cumulative monotonicity.
        for k in 1..HIST_BUCKETS {
            assert!(snap.le[k] >= snap.le[k - 1]);
        }
    }

    #[test]
    fn merge_aggregates_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for lat in 1..=50u64 {
            a.record(lat);
        }
        for lat in 51..=100u64 {
            b.record(lat);
        }
        b.record(10_000);
        a.merge(&b);
        let mut reference = LatencyHistogram::new();
        for lat in 1..=100u64 {
            reference.record(lat);
        }
        reference.record(10_000);
        assert_eq!(a.count(), reference.count());
        assert!((a.mean() - reference.mean()).abs() < 1e-9);
        assert_eq!(a.max(), reference.max());
        assert_eq!(a.quantile(0.5), reference.quantile(0.5));
        assert_eq!(a.p99(), reference.p99());
    }
}
