//! The top-level simulation driver.
//!
//! [`Sim`] sequences one cycle as: endpoints (consume/produce) → mechanism
//! control (drain/spin/freeze decisions) → network allocation → watchdog &
//! detector instrumentation.

use std::path::{Path, PathBuf};

use crate::check::{self, Violation};
use crate::deadlock;
use crate::mechanism::{ControlAction, Mechanism};
use crate::metrics::{MetricsSnapshot, Phase};
use crate::shard::ShardRuntime;
use crate::state::SimCore;
use crate::stats::Stats;
use crate::trace::{self, TraceEvent, TraceSink};
use crate::traffic::Endpoints;
use crate::SimConfig;
use drain_topology::IntoSharedTopology;

/// Why a bounded run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The cycle budget was exhausted.
    BudgetExhausted,
    /// The endpoint model reported completion.
    WorkloadFinished,
    /// A deadlock was observed (structural detector or watchdog) and the
    /// run was configured to stop on deadlock.
    Deadlocked,
    /// A runtime invariant check failed and the run was configured not to
    /// panic; the report is available via [`Sim::violation`].
    InvariantViolation,
}

/// A complete simulation: state + mechanism + endpoints.
///
/// `Sim` is `Send` (every plugin trait — [`Mechanism`], [`Endpoints`],
/// [`crate::routing::Routing`] — requires `Send`), so whole simulations
/// can be handed to worker threads; the experiment harness's parallel
/// sweep engine relies on this.
pub struct Sim {
    core: SimCore,
    mechanism: Box<dyn Mechanism>,
    endpoints: Box<dyn Endpoints>,
    stop_on_deadlock: bool,
    violation: Option<Violation>,
    flight_record: Option<PathBuf>,
    /// Idle cycles elided by fast-forward (simulator-speed accounting
    /// only — deliberately *not* part of [`Stats`], which must be
    /// bit-identical with fast-forward on or off).
    ff_cycles_skipped: u64,
    /// Number of fast-forward jumps taken.
    ff_jumps: u64,
    /// Cycles on which the cheap per-cycle invariant tier ran (outside
    /// [`Stats`] for the same reason as the fast-forward counters).
    check_sweeps: u64,
    /// Cycles on which the deep invariant tier additionally ran.
    check_deep_sweeps: u64,
    /// Sharded-kernel runtime (worker pool + ownership tables), built
    /// lazily on the first sharded allocation cycle so serial runs pay
    /// nothing (see [`crate::shard`]).
    shard_rt: Option<ShardRuntime>,
}

// Compile-time audit of the `Send` guarantee documented above: building a
// `Sim` on one thread and running it on another is what the bench crate's
// worker pool does on every job.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Sim>();
    assert_send::<Stats>();
};

impl Sim {
    /// Assembles a simulation.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(
        topo: impl IntoSharedTopology,
        config: SimConfig,
        routing: Box<dyn crate::routing::Routing>,
        mechanism: Box<dyn Mechanism>,
        endpoints: Box<dyn Endpoints>,
    ) -> Self {
        Sim {
            core: SimCore::new(topo, config, routing),
            mechanism,
            endpoints,
            stop_on_deadlock: false,
            violation: None,
            flight_record: None,
            ff_cycles_skipped: 0,
            ff_jumps: 0,
            check_sweeps: 0,
            check_deep_sweeps: 0,
            shard_rt: None,
        }
    }

    /// Reconfigures the shard count of an assembled simulation (see
    /// [`SimConfig::shards`]) and pins
    /// [`SimConfig::shard_min_active`] to 0 so the sharded path runs at
    /// any occupancy. Results are bit-identical at every shard count —
    /// the differential suite in the bench crate holds this to the byte.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds [`crate::shard::MAX_SHARDS`].
    pub fn set_shards(&mut self, shards: usize) {
        self.core.set_shards(shards);
        // Drop any existing runtime: the pool and ownership tables are
        // per shard count.
        self.shard_rt = None;
    }

    /// Makes [`Sim::run`] return early once a deadlock is observed.
    pub fn stop_on_deadlock(mut self, stop: bool) -> Self {
        self.stop_on_deadlock = stop;
        self
    }

    /// Forces the idle-cycle fast-forward gate (see
    /// [`SimConfig::fast_forward`]) on or off for an assembled simulation.
    /// Results are bit-identical either way; differential tests use this to
    /// prove it.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.core.set_fast_forward(enabled);
    }

    /// Switches the wake-driven Phase A scheduler (see
    /// [`SimConfig::wake_scheduler`]) on or off for an assembled
    /// simulation, resetting all wake state. Results are bit-identical
    /// either way; the wake-vs-dense differential tests prove it.
    pub fn set_wake_scheduler(&mut self, enabled: bool) {
        self.core.set_wake_scheduler(enabled);
    }

    /// Switches the tie-break sample source (see [`crate::rng`]) for an
    /// assembled simulation: the serial draw stream (default) or the
    /// keyed counter-based mixer. Meant for pre-run configuration — the
    /// two modes produce different (equally valid) random sequences and
    /// therefore separate golden-pin families; *within* a mode, results
    /// are bit-identical across shard counts, wake scheduling,
    /// fast-forward and profiler cadence (the keyed differential suite
    /// proves it).
    pub fn set_rng_mode(&mut self, mode: crate::rng::RngMode) {
        self.core.set_rng_mode(mode);
    }

    /// The simulation state.
    pub fn core(&self) -> &SimCore {
        &self.core
    }

    /// Mutable simulation state (for scripted tests).
    pub fn core_mut(&mut self) -> &mut SimCore {
        &mut self.core
    }

    /// Statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.core.stats
    }

    /// The mechanism's name.
    pub fn mechanism_name(&self) -> &str {
        self.mechanism.name()
    }

    /// The endpoint model's name.
    pub fn endpoints_name(&self) -> &str {
        self.endpoints.name()
    }

    /// Downcasts the endpoint model to its concrete type (e.g. to read the
    /// coherence engine's protocol statistics mid-run).
    pub fn endpoints_as<T: 'static>(&self) -> Option<&T> {
        self.endpoints.as_any().downcast_ref::<T>()
    }

    /// Opens a fresh measurement window (call after warmup).
    pub fn open_measurement_window(&mut self) {
        let c = self.core.cycle();
        self.core.stats.open_window(c);
    }

    /// The first invariant violation observed, when the run was configured
    /// not to panic ([`crate::check::CheckConfig::no_panic`]).
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// Installs a trace sink and enables event capture (see
    /// [`crate::trace`]). Sinks live outside [`SimConfig`] because they
    /// can hold file handles; configs stay `Clone + PartialEq`.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.core.tracer_mut().set_sink(sink);
    }

    /// Flushes a writer trace sink, if one is installed.
    ///
    /// # Errors
    ///
    /// The writer's flush error, if any.
    pub fn flush_trace(&mut self) -> std::io::Result<()> {
        self.core.tracer_mut().flush()
    }

    /// Path of the flight-recorder dump written by this run, if the run
    /// failed and [`crate::TraceConfig::flightrec_dir`] was configured.
    pub fn flight_record(&self) -> Option<&Path> {
        self.flight_record.as_deref()
    }

    /// Advances the simulation by one cycle.
    ///
    /// With [`crate::check::CheckConfig`] flags enabled, forced
    /// permutations are validated before they are applied and the whole
    /// core is re-checked at the end of the cycle. A violation panics with
    /// a replayable report, or — with
    /// [`crate::check::CheckConfig::no_panic`] — is recorded and freezes
    /// the simulation (further steps are no-ops).
    ///
    /// # Panics
    ///
    /// Panics with the [`Violation`] report when a check fails and
    /// `panic_on_violation` is set (the default for enabled checks).
    pub fn step(&mut self) {
        if self.violation.is_some() {
            return;
        }
        // Phase-profiler brackets: pure observers (wall clock in, nothing
        // out), each a single bool check when the cycle is not sampled.
        self.core.prof_begin_cycle(self.core.cycle());
        self.endpoints.pre_cycle(&mut self.core);
        self.core.prof_mark(Phase::Endpoints);
        let action = self.mechanism.control(&mut self.core);
        self.core.prof_mark(Phase::Mechanism);
        match action {
            ControlAction::Normal => self.allocate(),
            ControlAction::Freeze => {}
            ControlAction::Forced(moves, kind) => {
                if self.core.config().checks.forced_moves {
                    if let Err(v) = check::validate_forced(&self.core, &moves) {
                        self.fail(v);
                        return;
                    }
                }
                self.core.apply_forced(&moves, kind);
                self.core.prof_mark(Phase::Forced);
            }
        }
        // All of this cycle's vacates (allocation or forced) have
        // committed — deliver the surviving wake fires before the
        // validators look at the parked set.
        self.core.flush_wakes();
        self.core.prof_mark(Phase::PhaseA);
        self.instrument();
        self.core.prof_mark(Phase::Mechanism);
        self.core.telemetry_tick();
        self.core.prof_mark(Phase::Telemetry);
        if self.core.config().checks.any_per_cycle() {
            self.check_sweeps += 1;
            if check::deep_sweep_due(&self.core.config().checks, self.core.cycle()) {
                self.check_deep_sweeps += 1;
            }
            if let Err(v) = check::run_checks(&self.core) {
                self.fail(v);
                return;
            }
            self.core.prof_mark(Phase::Checks);
        }
        self.core.advance_cycle();
        self.core.prof_end_cycle();
    }

    /// Dispatches a `Normal` cycle's allocation to the serial or the
    /// sharded kernel. The hybrid gate is a pure speed knob — both paths
    /// are bit-identical — so below `shard_min_active` occupied VCs the
    /// serial allocator runs (parallel planning cannot amortize its
    /// barrier over a handful of packets).
    fn allocate(&mut self) {
        let cfg = self.core.config();
        let sharded =
            cfg.shards > 1 && self.core.packets_in_network() >= cfg.shard_min_active;
        if sharded {
            let rt = self
                .shard_rt
                .get_or_insert_with(|| ShardRuntime::new(&self.core));
            rt.allocate(&mut self.core);
        } else {
            self.core.allocate_and_move();
        }
    }

    fn fail(&mut self, v: Violation) {
        self.core.trace_emit(TraceEvent::InvariantViolation {
            cycle: v.cycle,
            kind: v.kind,
            seed: v.seed,
            detail: v.detail.clone(),
        });
        self.record_failure("invariant");
        if self.core.config().checks.panic_on_violation {
            panic!("{v}");
        }
        self.violation = Some(v);
    }

    /// Dumps a flight record for the first failure of the run (no-op when
    /// [`crate::TraceConfig::flightrec_dir`] is unset).
    fn record_failure(&mut self, reason: &str) {
        if self.flight_record.is_some() {
            return;
        }
        if let Some(path) = trace::flight_record(&self.core, reason) {
            eprintln!("flight record written to {}", path.display());
            self.flight_record = Some(path);
        }
    }

    fn instrument(&mut self) {
        let interval = self.core.config().deadlock_check_interval;
        let wd = self.core.config().watchdog_threshold;
        let now = self.core.cycle();
        if interval > 0 && now % interval == interval - 1 {
            let report = deadlock::detect(&self.core);
            if report.is_deadlocked() {
                let first = self.core.stats.first_deadlock_cycle == u64::MAX;
                self.core.stats.deadlocks_detected += 1;
                if first {
                    self.core.stats.first_deadlock_cycle = now;
                    if self.core.trace_enabled() {
                        let r = report.deadlocked[0];
                        self.core.trace_emit(TraceEvent::DeadlockConviction {
                            cycle: now,
                            convicted: report.deadlocked.len() as u32,
                            link: r.link.0,
                            vn: r.vn,
                            vc: r.vc,
                        });
                    }
                    self.record_failure("deadlock");
                }
            }
        }
        let idle = now.saturating_sub(self.core.stats.last_progress_cycle);
        if wd > 0 && self.core.packets_in_network() > 0 && idle > wd {
            let first = !self.core.stats.watchdog_deadlock;
            self.core.stats.watchdog_deadlock = true;
            if self.core.stats.first_deadlock_cycle == u64::MAX {
                self.core.stats.first_deadlock_cycle = now;
            }
            if first {
                self.core
                    .trace_emit(TraceEvent::WatchdogTrip { cycle: now, idle });
                self.record_failure("watchdog");
            }
        }
    }

    /// Idle cycles elided by fast-forward so far (see
    /// [`SimConfig::fast_forward`]). Not part of [`Stats`]: results are
    /// bit-identical whether cycles were stepped or skipped.
    pub fn ff_cycles_skipped(&self) -> u64 {
        self.ff_cycles_skipped
    }

    /// Number of fast-forward jumps taken so far.
    pub fn ff_jumps(&self) -> u64 {
        self.ff_jumps
    }

    /// Cycles on which the cheap per-cycle invariant tier ran.
    pub fn check_sweeps(&self) -> u64 {
        self.check_sweeps
    }

    /// Cycles on which the deep invariant tier additionally ran.
    pub fn check_deep_sweeps(&self) -> u64 {
        self.check_deep_sweeps
    }

    /// Reconfigures the kernel phase profiler's sampling cadence for an
    /// assembled simulation (0 disables; see
    /// [`crate::metrics::MetricsConfig::profile_period`]). A pure
    /// observer — results are bit-identical at any cadence, and the
    /// metrics differential tests prove it.
    pub fn set_profile_period(&mut self, period: u64) {
        self.core.set_profile_period(period);
    }

    /// Collects every counter family the simulation maintains into one
    /// [`MetricsSnapshot`] under the stable `drain_` namespace: `Stats`
    /// (packets, latency histograms, mechanism events), wake-scheduler
    /// counters, per-site RNG draw volume, fast-forward accounting,
    /// shard fabric traffic, check-tier sweeps, telemetry/trace volume,
    /// occupancy gauges, and — when enabled — the phase profiler's
    /// attribution.
    ///
    /// Collection is pull-based: the counters are maintained anyway, so
    /// taking a snapshot costs nothing between scrapes and cannot
    /// perturb the simulation.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        let s = &self.core.stats;
        m.counter(
            "drain_packets_generated_total",
            "Packets created by endpoints",
            s.generated,
        );
        m.counter(
            "drain_packets_injected_total",
            "Packets that entered the network",
            s.injected,
        );
        m.counter(
            "drain_packets_ejected_total",
            "Packets delivered to an ejection queue",
            s.ejected,
        );
        m.histogram(
            "drain_net_latency_cycles",
            "Network latency, injection to ejection",
            s.net_latency.snapshot(),
        );
        m.histogram(
            "drain_total_latency_cycles",
            "Total latency, creation to ejection",
            s.total_latency.snapshot(),
        );
        m.counter("drain_hops_total", "Hops over ejected packets", s.hops);
        m.counter(
            "drain_misroutes_total",
            "Hops that did not reduce distance to the destination",
            s.misroutes,
        );
        m.counter(
            "drain_forced_hops_total",
            "Hops forced by drains or spins",
            s.forced_hops,
        );
        m.counter(
            "drain_flit_hops_total",
            "Flit-link traversals",
            s.flit_hops,
        );
        m.counter("drain_drains_total", "Drain windows executed", s.drains);
        m.counter(
            "drain_full_drains_total",
            "Full drains executed",
            s.full_drains,
        );
        m.counter("drain_spins_total", "Spin moves executed", s.spins);
        m.counter(
            "drain_probe_hops_total",
            "Probe message hops sent (SPIN)",
            s.probe_hops,
        );
        m.counter(
            "drain_deadlocks_detected_total",
            "Structural deadlocks detected",
            s.deadlocks_detected,
        );
        m.counter(
            "drain_oracle_resolutions_total",
            "Deadlocks resolved by the oracle mechanism",
            s.oracle_resolutions,
        );
        let w = self.core.wake_counters();
        for (event, v) in [
            ("parks", w.parks),
            ("skips", w.skips),
            ("wakes", w.wakes),
            ("spurious_wakes", w.spurious_wakes),
            ("wake_alls", w.wake_alls),
            ("stalls", w.stalls),
        ] {
            m.counter_labeled(
                "drain_wake_events_total",
                "Wake-driven Phase A scheduler events",
                &[("event", event)],
                v,
            );
        }
        let mode = self.core.config().rng_mode.label();
        for (site, v) in crate::rng::DrawSite::ALL
            .iter()
            .zip(self.core.rng_draw_counts())
        {
            m.counter_labeled(
                "drain_rng_draws_total",
                "Tie-break RNG samples produced, by draw site and RNG mode",
                &[("site", site.label()), ("mode", mode)],
                v,
            );
        }
        m.counter(
            "drain_ff_cycles_skipped_total",
            "Idle cycles elided by fast-forward",
            self.ff_cycles_skipped,
        );
        m.counter(
            "drain_ff_jumps_total",
            "Fast-forward jumps taken",
            self.ff_jumps,
        );
        if let Some(rt) = &self.shard_rt {
            m.counter(
                "drain_shard_fabric_flits_total",
                "Flits that crossed a shard boundary through the fabric",
                rt.fabric_flits(),
            );
            m.counter(
                "drain_sharded_cycles_total",
                "Cycles allocated by the sharded kernel",
                rt.sharded_cycles(),
            );
        }
        m.counter_labeled(
            "drain_check_sweeps_total",
            "Invariant check sweeps by tier",
            &[("tier", "cheap")],
            self.check_sweeps,
        );
        m.counter_labeled(
            "drain_check_sweeps_total",
            "Invariant check sweeps by tier",
            &[("tier", "deep")],
            self.check_deep_sweeps,
        );
        let telem = self.core.telemetry();
        m.counter(
            "drain_telemetry_samples_taken_total",
            "Telemetry samples taken",
            telem.samples_taken(),
        );
        m.counter(
            "drain_telemetry_samples_dropped_total",
            "Telemetry samples dropped by the retention bound",
            telem.samples_dropped(),
        );
        let tr = self.core.tracer();
        m.counter(
            "drain_trace_events_total",
            "Trace events emitted",
            tr.emitted(),
        );
        m.counter(
            "drain_trace_sink_errors_total",
            "Trace sink write errors",
            tr.sink_errors(),
        );
        m.gauge(
            "drain_cycle",
            "Current simulation cycle",
            self.core.cycle() as f64,
        );
        m.gauge(
            "drain_packets_in_network",
            "Packets currently inside VC buffers",
            self.core.packets_in_network() as f64,
        );
        m.gauge(
            "drain_live_packets",
            "Live packets anywhere (queues + network)",
            self.core.live_packets() as f64,
        );
        m.gauge(
            "drain_ejection_backlog",
            "Packets parked in ejection queues",
            self.core.ejection_backlog() as f64,
        );
        self.core
            .profiler()
            .collect(&mut m, self.core.config().shards);
        m
    }

    /// Attempts an idle-cycle fast-forward after a completed step: when
    /// the network, the mechanism and the endpoints all certify that every
    /// cycle before `t` would be a pure no-op, jump the clock straight to
    /// `min(t, end)`. Returns whether the clock moved.
    fn maybe_fast_forward(&mut self, end: u64) -> bool {
        // The network's certificate also encodes the gates: fast-forward
        // disabled, tracing/per-cycle checks active, queued injections,
        // ejection backlog, or an allocation-eligible VC all yield
        // `None`. Telemetry no longer blocks the jump — elided sampling
        // boundaries collapse into one exact boundary sample below.
        let Some(net) = self.core.net_idle_until() else {
            return false;
        };
        let now = self.core.cycle();
        let mut t = net
            .min(self.mechanism.idle_until(&self.core))
            .min(self.endpoints.idle_until(&self.core))
            .min(end);
        // Instrumentation that is not idempotent pins its own horizon
        // while packets are in flight: the structural detector convicts
        // on *every* sweep boundary (`deadlocks_detected` grows), and the
        // watchdog's first trip must land on its exact cycle. An empty
        // network triggers neither.
        if self.core.packets_in_network() > 0 {
            let interval = self.core.config().deadlock_check_interval;
            if interval > 0 {
                t = t.min(now + (interval - 1 - now % interval));
            }
            let wd = self.core.config().watchdog_threshold;
            if wd > 0 && !self.core.stats.watchdog_deadlock {
                t = t.min(self.core.stats.last_progress_cycle.saturating_add(wd + 1));
            }
        }
        if t <= now {
            return false;
        }
        let skipped = t - now;
        // The jump elides cycles `[now, t)`; if a telemetry sampling
        // boundary falls in there, emit one sample stamped at the last
        // such boundary before the clock moves (the state is frozen
        // across the jump, so the sample is exact).
        self.core.telemetry_note_jump(t);
        self.core.fast_forward_to(t);
        // `skipped` mechanism control calls (each of which would have
        // returned `Normal`) were elided; let it rebase countdowns.
        self.mechanism.on_cycles_skipped(skipped);
        self.ff_cycles_skipped += skipped;
        self.ff_jumps += 1;
        true
    }

    /// Runs for up to `cycles` cycles, honouring early-stop conditions.
    pub fn run(&mut self, cycles: u64) -> RunOutcome {
        let end = self.core.cycle() + cycles;
        while self.core.cycle() < end {
            self.step();
            if self.violation.is_some() {
                return RunOutcome::InvariantViolation;
            }
            if self.stop_on_deadlock && self.core.stats.deadlocked() {
                return RunOutcome::Deadlocked;
            }
            if self.endpoints.finished(&self.core) {
                return RunOutcome::WorkloadFinished;
            }
            // Skip provably idle stretches. A jump cannot create work, but
            // it can reach the cycle at which a quiesced workload reports
            // completion — re-check so the outcome (and the cycle it is
            // reported at) matches per-cycle stepping exactly.
            if self.core.cycle() < end
                && self.maybe_fast_forward(end)
                && self.endpoints.finished(&self.core)
            {
                return RunOutcome::WorkloadFinished;
            }
        }
        RunOutcome::BudgetExhausted
    }

    /// Warm up, open the measurement window, then measure — the standard
    /// experiment shape. Returns the outcome of the measurement phase.
    pub fn warmup_and_measure(&mut self, warmup: u64, measure: u64) -> RunOutcome {
        let outcome = self.run(warmup);
        if outcome != RunOutcome::BudgetExhausted {
            return outcome;
        }
        self.open_measurement_window();
        self.run(measure)
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("core", &self.core)
            .field("mechanism", &self.mechanism.name())
            .field("endpoints", &self.endpoints.name())
            .finish()
    }
}
