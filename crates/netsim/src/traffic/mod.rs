//! Endpoint models: what creates and consumes packets.
//!
//! The simulator is endpoint-agnostic: a [`Endpoints`] implementation is
//! called once per cycle before the network moves, and is responsible for
//! injecting new packets (via [`SimCore::try_enqueue_packet`]) and for
//! consuming delivered packets from the ejection queues (via
//! [`SimCore::pop_ejection`]).
//!
//! [`SyntheticTraffic`] provides the classic open-loop patterns the paper's
//! synthetic experiments use (uniform random, transpose, …);
//! [`TraceTraffic`] replays scripted injections (used by the Fig 8
//! walk-through and adversarial tests). The MESI coherence engine in the
//! `drain-coherence` crate is the third implementation.

mod synthetic;
mod trace;

pub use synthetic::{SyntheticPattern, SyntheticTraffic};
pub use trace::{InjectionEvent, TraceTraffic};

use crate::state::SimCore;

/// An endpoint model: the sources and sinks attached to every router.
pub trait Endpoints: Send + std::any::Any {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Runs once per cycle before network allocation: consume ejection
    /// queues, issue new packets.
    fn pre_cycle(&mut self, core: &mut SimCore);

    /// Whether the workload is complete (closed-loop models); open-loop
    /// traffic always returns `false`.
    fn finished(&self, _core: &SimCore) -> bool {
        false
    }

    /// The earliest future cycle at which this model could inject or
    /// otherwise act, assuming no deliveries arrive meanwhile (idle-cycle
    /// fast-forward, see [`crate::SimConfig::fast_forward`]).
    ///
    /// Returning `t > core.cycle()` promises that `pre_cycle` calls for
    /// every cycle in `(now, t)` would be pure no-ops — including RNG
    /// draws whose values are observable in later behaviour. The
    /// conservative default — the current cycle — disables fast-forward
    /// for models that did not opt in. The driver never skips cycles
    /// while ejection queues hold undelivered packets, so consumption is
    /// not a concern here.
    fn idle_until(&self, core: &SimCore) -> u64 {
        core.cycle()
    }

    /// Downcast support so tests and reports can reach the concrete model
    /// behind a running simulation (e.g. the coherence engine's protocol
    /// statistics).
    fn as_any(&self) -> &dyn std::any::Any;
}
