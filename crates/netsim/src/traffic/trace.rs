//! Scripted trace replay (walk-throughs and adversarial tests).

use drain_topology::NodeId;

use super::Endpoints;
use crate::packet::MessageClass;
use crate::state::SimCore;

/// One scripted injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectionEvent {
    /// Cycle at which the packet is created.
    pub cycle: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Message class.
    pub class: MessageClass,
    /// Packet length in flits.
    pub len_flits: u32,
}

/// Replays a fixed injection schedule; delivered packets are consumed
/// immediately.
///
/// Events must be sorted by cycle (enforced at construction).
#[derive(Clone, Debug)]
pub struct TraceTraffic {
    events: Vec<InjectionEvent>,
    next: usize,
}

impl TraceTraffic {
    /// Creates a trace source.
    ///
    /// # Panics
    ///
    /// Panics if `events` is not sorted by cycle.
    pub fn new(events: Vec<InjectionEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "trace events must be sorted by cycle"
        );
        TraceTraffic { events, next: 0 }
    }

    /// Remaining events not yet injected.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl Endpoints for TraceTraffic {
    fn name(&self) -> &str {
        "trace"
    }

    fn pre_cycle(&mut self, core: &mut SimCore) {
        // Consuming deliveries draws no randomness, and the non-empty-queue
        // bitmap retires them in the same ascending (node, class) order as
        // a sweep over every queue.
        while core.pop_next_ejection().is_some() {}
        while self.next < self.events.len() && self.events[self.next].cycle <= core.cycle() {
            let e = self.events[self.next];
            self.next += 1;
            core.try_enqueue_packet(e.src, e.dest, e.class, e.len_flits, 0);
        }
    }

    fn finished(&self, core: &SimCore) -> bool {
        self.next == self.events.len() && core.live_packets() == 0
    }

    fn idle_until(&self, _core: &SimCore) -> u64 {
        // Nothing happens between scripted events; the next event's cycle
        // is an exact horizon (delivery consumption is covered by the
        // driver's no-backlog rule).
        match self.events.get(self.next) {
            Some(e) => e.cycle,
            None => u64::MAX,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rejected() {
        TraceTraffic::new(vec![
            InjectionEvent {
                cycle: 5,
                src: NodeId(0),
                dest: NodeId(1),
                class: MessageClass::REQUEST,
                len_flits: 1,
            },
            InjectionEvent {
                cycle: 2,
                src: NodeId(1),
                dest: NodeId(0),
                class: MessageClass::REQUEST,
                len_flits: 1,
            },
        ]);
    }

    #[test]
    fn remaining_counts_down() {
        let t = TraceTraffic::new(vec![InjectionEvent {
            cycle: 0,
            src: NodeId(0),
            dest: NodeId(1),
            class: MessageClass::REQUEST,
            len_flits: 1,
        }]);
        assert_eq!(t.remaining(), 1);
    }
}
