//! Open-loop synthetic traffic patterns.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use drain_topology::{NodeId, Topology};

use super::Endpoints;
use crate::packet::MessageClass;
use crate::state::SimCore;

/// Destination-selection pattern for synthetic traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyntheticPattern {
    /// Uniformly random destination (≠ source).
    UniformRandom,
    /// Matrix transpose: `(x, y) → (y, x)` on square meshes; falls back to
    /// id reversal on other topologies.
    Transpose,
    /// `dest = src XOR (N-1)` when the node count is a power of two, else
    /// `N-1-src`.
    BitComplement,
    /// Perfect shuffle: rotate the id's bits left by one.
    Shuffle,
    /// All nodes send to the given hotspot set (round-robin by sample).
    Hotspot(Vec<NodeId>),
    /// Send to the next node id (nearest-neighbor pressure).
    Neighbor,
}

impl SyntheticPattern {
    /// Destination for a packet from `src`, or `None` if the pattern maps
    /// the node to itself.
    pub fn dest(&self, topo: &Topology, src: NodeId, rng: &mut impl Rng) -> Option<NodeId> {
        let n = topo.num_nodes() as u16;
        let d = match self {
            SyntheticPattern::UniformRandom => {
                if n < 2 {
                    return None;
                }
                let mut d = NodeId(rng.gen_range(0..n));
                while d == src {
                    d = NodeId(rng.gen_range(0..n));
                }
                d
            }
            SyntheticPattern::Transpose => match (topo.coord(src), topo.mesh_dims()) {
                (Some((x, y)), Some((w, h))) if w == h => NodeId(x * w + y),
                _ => NodeId(n - 1 - src.0),
            },
            SyntheticPattern::BitComplement => {
                if n.is_power_of_two() {
                    NodeId(src.0 ^ (n - 1))
                } else {
                    NodeId(n - 1 - src.0)
                }
            }
            SyntheticPattern::Shuffle => {
                if n.is_power_of_two() && n > 1 {
                    let bits = n.trailing_zeros();
                    let v = src.0;
                    NodeId(((v << 1) | (v >> (bits - 1))) & (n - 1))
                } else {
                    NodeId((src.0 + 1) % n)
                }
            }
            SyntheticPattern::Hotspot(targets) => {
                if targets.is_empty() {
                    return None;
                }
                targets[rng.gen_range(0..targets.len())]
            }
            SyntheticPattern::Neighbor => NodeId((src.0 + 1) % n),
        };
        (d != src).then_some(d)
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SyntheticPattern::UniformRandom => "uniform",
            SyntheticPattern::Transpose => "transpose",
            SyntheticPattern::BitComplement => "bitcomp",
            SyntheticPattern::Shuffle => "shuffle",
            SyntheticPattern::Hotspot(_) => "hotspot",
            SyntheticPattern::Neighbor => "neighbor",
        }
    }
}

/// Open-loop Bernoulli injection: each node creates a packet with
/// probability `rate` per cycle; ejection queues are consumed immediately.
#[derive(Clone, Debug)]
pub struct SyntheticTraffic {
    pattern: SyntheticPattern,
    rate: f64,
    len_flits: u32,
    rng: ChaCha8Rng,
    /// Injection stops after this cycle (drain-out phase); `u64::MAX` =
    /// never.
    stop_at: u64,
    /// Sequence number stamped into each packet's `tag` so deliveries can
    /// be fingerprinted uniquely (differential oracle).
    seq: u64,
}

impl SyntheticTraffic {
    /// Creates a traffic source with per-node injection probability `rate`
    /// and fixed packet length.
    pub fn new(pattern: SyntheticPattern, rate: f64, len_flits: u32, seed: u64) -> Self {
        SyntheticTraffic {
            pattern,
            rate,
            len_flits,
            rng: ChaCha8Rng::seed_from_u64(seed),
            stop_at: u64::MAX,
            seq: 0,
        }
    }

    /// Stops creating new packets after `cycle` (lets the network drain for
    /// delivered-packet accounting).
    pub fn stop_injection_at(mut self, cycle: u64) -> Self {
        self.stop_at = cycle;
        self
    }

    /// The configured injection rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Endpoints for SyntheticTraffic {
    fn name(&self) -> &str {
        self.pattern.name()
    }

    fn pre_cycle(&mut self, core: &mut SimCore) {
        // Consume everything delivered (no-op — and skipped — when no
        // ejection queue holds anything; consuming draws no randomness, so
        // the gate cannot shift the RNG stream).
        let n = core.topology().num_nodes();
        while core.pop_next_ejection().is_some() {}
        if core.cycle() >= self.stop_at {
            return;
        }
        // Bernoulli injection per node.
        for ni in 0..n {
            let node = NodeId(ni as u16);
            if self.rng.gen::<f64>() >= self.rate {
                continue;
            }
            if let Some(dest) = self.pattern.dest(core.topology(), node, &mut self.rng) {
                self.seq += 1;
                core.try_enqueue_packet(
                    node,
                    dest,
                    MessageClass::REQUEST,
                    self.len_flits,
                    self.seq,
                );
            }
        }
    }

    fn finished(&self, core: &SimCore) -> bool {
        core.cycle() >= self.stop_at && core.live_packets() == 0
    }

    fn idle_until(&self, core: &SimCore) -> u64 {
        // Past `stop_at` (or with a zero rate) `pre_cycle` only consumes
        // deliveries, and the driver never fast-forwards over an ejection
        // backlog. The per-node Bernoulli draws an active source makes
        // every cycle are observable (they move the RNG stream), so it
        // pins the clock to per-cycle stepping; a *stopped* source makes
        // no draws at all, and skipping its no-op cycles is exact. A
        // zero-rate source with a finite `stop_at` still anchors the
        // horizon there so `finished` flips on the same cycle as
        // per-cycle stepping.
        if core.cycle() >= self.stop_at {
            u64::MAX
        } else if self.rate <= 0.0 {
            self.stop_at
        } else {
            core.cycle()
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_on_square_mesh() {
        let t = Topology::mesh(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // (1, 2) = node 9 → (2, 1) = node 6.
        assert_eq!(
            SyntheticPattern::Transpose.dest(&t, NodeId(9), &mut rng),
            Some(NodeId(6))
        );
        // Diagonal maps to itself → None.
        assert_eq!(
            SyntheticPattern::Transpose.dest(&t, NodeId(5), &mut rng),
            None
        );
    }

    #[test]
    fn bitcomp_power_of_two() {
        let t = Topology::mesh(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            SyntheticPattern::BitComplement.dest(&t, NodeId(0), &mut rng),
            Some(NodeId(15))
        );
        assert_eq!(
            SyntheticPattern::BitComplement.dest(&t, NodeId(5), &mut rng),
            Some(NodeId(10))
        );
    }

    #[test]
    fn uniform_never_self() {
        let t = Topology::mesh(3, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let d = SyntheticPattern::UniformRandom
                .dest(&t, NodeId(4), &mut rng)
                .unwrap();
            assert_ne!(d, NodeId(4));
        }
    }

    #[test]
    fn shuffle_rotates_bits() {
        let t = Topology::mesh(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // 0b0101 (5) -> 0b1010 (10)
        assert_eq!(
            SyntheticPattern::Shuffle.dest(&t, NodeId(5), &mut rng),
            Some(NodeId(10))
        );
        // 0b1000 (8) -> 0b0001 (1)
        assert_eq!(
            SyntheticPattern::Shuffle.dest(&t, NodeId(8), &mut rng),
            Some(NodeId(1))
        );
    }

    #[test]
    fn hotspot_targets_only() {
        let t = Topology::mesh(3, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let pat = SyntheticPattern::Hotspot(vec![NodeId(0), NodeId(8)]);
        for _ in 0..50 {
            let d = pat.dest(&t, NodeId(4), &mut rng).unwrap();
            assert!(d == NodeId(0) || d == NodeId(8));
        }
    }
}
