//! Property tests for the keyed counter-based RNG (`RngMode::Keyed`).
//!
//! The determinism contract v2 (see `drain_netsim::rng`) promises that a
//! keyed draw is a pure function of `(seed, cycle, site, id)` — nothing
//! else. Two consequences are load-bearing enough to pin as properties
//! rather than examples:
//!
//! * **visit-order invariance**: evaluating any set of draw keys in any
//!   permutation yields identical values per key. The serial draw stream
//!   has the opposite character — a draw's value is determined by its
//!   *position* in the sweep — and the contrast is asserted here too, so
//!   the property cannot pass vacuously;
//! * **partition invariance**: splitting the allocation sweep across an
//!   arbitrary shard partition of an arbitrary connected topology
//!   changes neither the results nor the number of draws performed —
//!   shard planners compute draws only for the slots they own, with no
//!   census replay.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use drain_netsim::mechanism::NoMechanism;
use drain_netsim::rng::{mix, NUM_DRAW_SITES};
use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_netsim::{DrawSite, RngMode, Sim, SimConfig};
use drain_topology::chiplet::random_connected;

proptest! {
    /// Every key maps to the same value no matter where in the visit
    /// order it is evaluated — and the serial stream provably does not
    /// have this property (its values are positional).
    #[test]
    fn keyed_draws_are_invariant_under_visit_order_permutations(
        seed in any::<u64>(),
        keys_seed in any::<u64>(),
        len in 2usize..128,
    ) {
        // The vendored proptest stub has no collection strategies; derive
        // the key set from a drawn seed instead.
        let mut krng = ChaCha8Rng::seed_from_u64(keys_seed);
        let keys: Vec<(usize, u64, u64)> = (0..len)
            .map(|_| (krng.gen_range(0..NUM_DRAW_SITES), krng.gen(), krng.gen()))
            .collect();
        let shuffled = {
            // Deterministic permutation derived from the seed: rotate +
            // reverse, which differs from the identity for len >= 2.
            let mut s = keys.clone();
            let pivot = (seed as usize) % s.len();
            s.rotate_left(pivot);
            s.reverse();
            s
        };
        let eval = |order: &[(usize, u64, u64)]| -> Vec<((usize, u64, u64), u64)> {
            order
                .iter()
                .map(|&(s, cycle, id)| ((s, cycle, id), mix(seed, cycle, DrawSite::ALL[s], id)))
                .collect()
        };
        let mut a = eval(&keys);
        let mut b = eval(&shuffled);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);

        // Contrast: the serial stream assigns values by position, so the
        // same reordering remaps values onto different keys whenever the
        // permutation moved a key (guard against fixed-point shuffles).
        if keys != shuffled {
            let stream_eval = |order: &[(usize, u64, u64)]| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                order
                    .iter()
                    .map(|&k| (k, rng.gen::<u64>()))
                    .collect::<Vec<_>>()
            };
            let mut sa = stream_eval(&keys);
            let mut sb = stream_eval(&shuffled);
            sa.sort_unstable();
            sb.sort_unstable();
            prop_assert_ne!(sa, sb);
        }
    }
}

/// One keyed-mode run on the `shards`-way kernel: full debug-formatted
/// statistics, final cycle, and per-site draw counts.
fn keyed_run(
    topo: &drain_topology::Topology,
    sim_seed: u64,
    shards: usize,
) -> (String, u64, [u64; NUM_DRAW_SITES]) {
    let config = SimConfig {
        vns: 1,
        vcs_per_vn: 2,
        num_classes: 1,
        seed: sim_seed,
        watchdog_threshold: 0,
        shards,
        shard_min_active: 0,
        ..SimConfig::default()
    };
    let mut sim = Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::new(topo)),
        Box::new(NoMechanism),
        Box::new(SyntheticTraffic::new(
            SyntheticPattern::UniformRandom,
            0.20,
            1,
            sim_seed ^ 0x9E37,
        )),
    );
    sim.set_rng_mode(RngMode::Keyed);
    sim.run(800);
    (
        format!("{:?}", sim.stats()),
        sim.core().cycle(),
        sim.core().rng_draw_counts(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An arbitrary shard partition of an arbitrary connected topology
    /// is invisible in keyed mode: identical statistics, identical final
    /// cycle, and — because the planners sweep only owned slots instead
    /// of replaying a global census — exactly the serial kernel's draw
    /// counts.
    #[test]
    fn keyed_sharded_run_matches_serial_on_arbitrary_partitions(
        n in 4u16..=20,
        topo_seed in any::<u64>(),
        k in 2usize..=8,
        sim_seed in any::<u64>(),
    ) {
        let topo = random_connected(n, 3.0, topo_seed);
        let serial = keyed_run(&topo, sim_seed, 1);
        let sharded = keyed_run(&topo, sim_seed, k);
        prop_assert_eq!(serial, sharded);
    }
}
