//! Property tests for the sharded kernel's building blocks.
//!
//! Hand-rolled randomized properties (same idiom as `slab_props`): a
//! seeded ChaCha stream generates topologies and inputs, assertions
//! state the invariant. Covered here:
//!
//! * the balanced partitioner assigns every router to exactly one shard,
//!   with sizes differing by at most one;
//! * cross-shard link classification agrees from both endpoints of a
//!   bidirectional pair;
//! * flits round-trip through the [`ShardFabric`] queues without loss or
//!   duplication, in canonical order;
//! * a sharded simulation conserves packets and produces bit-identical
//!   statistics to the serial kernel.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use drain_netsim::mechanism::NoMechanism;
use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_netsim::{ShardFabric, ShardMap, Sim, SimConfig};
use drain_topology::chiplet::random_connected;
use drain_topology::partition::Partition;
use drain_topology::{NodeId, Topology};

/// Every router lands in exactly one shard, shard sizes are balanced to
/// within one, and empty shards appear only when `k > n` — across random
/// connected topologies and every legal shard count.
#[test]
fn partitioner_assigns_every_router_exactly_once() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5AAD_0001);
    for _ in 0..40 {
        let n = rng.gen_range(4..=40u16);
        let topo = random_connected(n, 3.0, rng.gen());
        for k in 1..=8usize {
            let part = Partition::balanced(&topo, k);
            let sizes = part.shard_sizes();
            assert_eq!(sizes.len(), k);
            assert_eq!(sizes.iter().sum::<usize>(), topo.num_nodes());
            let mut counted = vec![0usize; k];
            for node in 0..topo.num_nodes() {
                counted[part.shard_of(NodeId(node as u16)) as usize] += 1;
            }
            assert_eq!(counted, sizes, "shard_of and shard_sizes disagree");
            let lo = sizes.iter().copied().min().unwrap();
            let hi = sizes.iter().copied().max().unwrap();
            assert!(
                hi - lo.min(hi) <= 1,
                "unbalanced shards {sizes:?} for n={n} k={k}"
            );
        }
    }
}

/// A link is cross-shard iff its reverse is: classification must be
/// consistent when inspected from either endpoint.
#[test]
fn cross_link_classification_is_endpoint_symmetric() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5AAD_0002);
    for _ in 0..40 {
        let n = rng.gen_range(4..=40u16);
        let topo = random_connected(n, 3.0, rng.gen());
        let k = rng.gen_range(1..=8usize);
        let part = Partition::balanced(&topo, k);
        let map = ShardMap::new(&topo, k, 6);
        for l in topo.link_ids() {
            assert_eq!(
                part.is_cross(&topo, l),
                part.is_cross(&topo, l.reverse()),
                "asymmetric classification for {l:?}"
            );
            // The ownership tables agree with the partition's view.
            let cross = map.shard_of_node(topo.link(l).src) != map.shard_of_node(topo.link(l).dst);
            assert_eq!(part.is_cross(&topo, l), cross);
        }
    }
}

/// Random flit batches survive the fabric intact: nothing lost, nothing
/// duplicated, delivery in ascending (from, to, dense index) order — and
/// the fabric is reusable after draining.
#[test]
fn fabric_round_trip_is_lossless_and_canonical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5AAD_0003);
    for _ in 0..200 {
        let k = rng.gen_range(1..=8usize);
        let mut fab = ShardFabric::new(k);
        for round in 0..2 {
            let count = rng.gen_range(0..64usize);
            let mut sent: Vec<(u16, u16, u32, u32)> = (0..count)
                .map(|i| {
                    (
                        rng.gen_range(0..k as u16),
                        rng.gen_range(0..k as u16),
                        rng.gen_range(0..10_000u32),
                        (round * 100_000 + i) as u32,
                    )
                })
                .collect();
            assert_eq!(fab.len(), 0, "fabric must start each round empty");
            for &(f, t, tidx, pid) in &sent {
                fab.push(f, t, tidx, pid);
            }
            assert_eq!(fab.len(), count);
            assert_eq!(fab.is_empty(), count == 0);
            let mut got: Vec<(u16, u16, u32, u32)> = Vec::new();
            fab.drain_in_order(|f, t, tidx, pid| got.push((f, t, tidx, pid)));
            assert!(fab.is_empty());
            // Canonical order: ascending (from, to), then dense index.
            let order: Vec<(u16, u16, u32)> = got.iter().map(|&(f, t, x, _)| (f, t, x)).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(order, sorted, "delivery order not canonical");
            // Lossless: same multiset, matched by unique pid.
            sent.sort_unstable_by_key(|&(.., pid)| pid);
            got.sort_unstable_by_key(|&(.., pid)| pid);
            assert_eq!(sent, got, "flits lost or duplicated");
        }
    }
}

fn conservation_sim(shards: usize) -> Sim {
    let topo = Topology::mesh(4, 4);
    let config = SimConfig {
        vns: 1,
        vcs_per_vn: 2,
        num_classes: 1,
        seed: 0x5AAD_0004,
        watchdog_threshold: 0,
        shards,
        shard_min_active: 0,
        ..SimConfig::default()
    };
    Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(NoMechanism),
        Box::new(SyntheticTraffic::new(
            SyntheticPattern::UniformRandom,
            0.20,
            1,
            7,
        )),
    )
}

/// A sharded run conserves packets (generated = ejected + still live)
/// and its entire `Stats` matches the serial kernel's bit for bit, at
/// every shard count.
#[test]
fn sharded_sim_conserves_packets_and_matches_serial() {
    let mut serial = conservation_sim(1);
    serial.run(3_000);
    let want = format!("{:?}", serial.stats());
    for k in [2, 4, 8] {
        let mut sim = conservation_sim(k);
        sim.run(3_000);
        let s = sim.stats();
        // Conservation: every generated packet is either delivered
        // (`ejected` counts deliveries, including those still parked in
        // an ejection queue awaiting the endpoint) or still live and
        // undelivered.
        let undelivered = (sim.core().live_packets() - sim.core().ejection_backlog()) as u64;
        assert_eq!(
            s.generated,
            s.ejected + undelivered,
            "conservation violated at k={k}"
        );
        assert_eq!(
            format!("{:?}", s),
            want,
            "sharded stats diverge from serial at k={k}"
        );
        assert_eq!(sim.core().cycle(), serial.core().cycle());
    }
}
