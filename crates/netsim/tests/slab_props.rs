//! Property tests for packet-slab/freelist recycling.
//!
//! The struct-of-arrays kernel relies on the slab recycling retired slots
//! so that steady-state traffic allocates nothing. These tests drive the
//! slab — directly and through whole simulations — and check the
//! recycling invariants:
//!
//! * an id is never handed out twice while its first tenant is live;
//! * every slot is either live or on the freelist, exactly once
//!   (no leaks, no double-frees);
//! * the slot count plateaus at the high-water mark of concurrently live
//!   packets — epochs of traffic recycle instead of growing.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_netsim::{Location, MessageClass, Packet, PacketId, PacketSlab, Sim, SimConfig};
use drain_topology::{NodeId, Topology};

fn dummy(tag: u64) -> Packet {
    Packet {
        src: NodeId(0),
        dest: NodeId(1),
        class: MessageClass::REQUEST,
        len_flits: 1,
        birth_cycle: 0,
        inject_cycle: u64::MAX,
        loc: Location::InjectionQueue(NodeId(0)),
        hops: 0,
        misroutes: 0,
        forced_hops: 0,
        tag,
    }
}

/// Slot accounting must balance after any interleaving of inserts and
/// removes: `slot_count == len + free_count`.
fn assert_balanced(slab: &PacketSlab) {
    assert_eq!(
        slab.slot_count(),
        slab.len() + slab.free_count(),
        "slots must be exactly live + freelist"
    );
}

/// Randomized insert/remove interleavings: no id reuse while live, no
/// leaks, tenant payloads never cross slots.
#[test]
fn random_churn_never_reuses_live_ids() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x51AB_F5EE);
    let mut slab = PacketSlab::new();
    let mut live: Vec<(PacketId, u64)> = Vec::new();
    let mut next_tag = 0u64;
    for step in 0..20_000 {
        let insert = live.is_empty() || rng.gen_bool(0.55);
        if insert {
            let tag = next_tag;
            next_tag += 1;
            let id = slab.insert(dummy(tag));
            assert!(
                live.iter().all(|&(l, _)| l != id),
                "step {step}: id {id:?} handed out while still live"
            );
            live.push((id, tag));
        } else {
            let k = rng.gen_range(0..live.len());
            let (id, tag) = live.swap_remove(k);
            let p = slab.remove(id);
            assert_eq!(p.tag, tag, "step {step}: wrong tenant in slot {id:?}");
        }
        assert_eq!(slab.len(), live.len());
        assert_balanced(&slab);
        // Every live id must resolve to its own payload.
        if step % 997 == 0 {
            for &(id, tag) in &live {
                assert_eq!(slab.get(id).tag, tag);
            }
            assert_eq!(slab.iter().count(), live.len());
        }
    }
}

/// Draining the slab empty and refilling it must reuse the same slots:
/// the slot count is the high-water mark, not the cumulative population.
#[test]
fn epochs_recycle_instead_of_growing() {
    let mut slab = PacketSlab::new();
    let mut high_water = 0;
    for epoch in 0..50 {
        let population = 64 + (epoch % 7) * 16;
        let ids: Vec<PacketId> = (0..population).map(|i| slab.insert(dummy(i))).collect();
        high_water = high_water.max(population as usize);
        assert_eq!(
            slab.slot_count(),
            high_water,
            "epoch {epoch}: slab grew past the high-water mark"
        );
        for id in ids {
            slab.remove(id);
        }
        assert!(slab.is_empty());
        assert_eq!(slab.free_count(), slab.slot_count(), "epoch {epoch}: leak");
        assert_balanced(&slab);
    }
}

/// The same invariant observed through a full simulation: after warmup, a
/// saturated run's live-packet population (queues + network) fully
/// accounts for every generated packet, across many drain epochs.
#[test]
fn saturated_sim_conserves_packets_across_epochs() {
    let topo = Topology::mesh(4, 4);
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig::drain_default(),
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(drain_netsim::mechanism::NoMechanism),
        Box::new(SyntheticTraffic::new(
            SyntheticPattern::UniformRandom,
            0.30,
            11,
            4,
        )),
    );
    for _ in 0..10 {
        sim.run(500);
        let s = sim.stats();
        let core = sim.core();
        // Every generated packet is either still live in the slab
        // (injection queues, VC buffers, or parked in an ejection queue)
        // or already consumed by the endpoint model. Ejected counts both
        // parked and consumed packets, so subtract the parked backlog.
        let consumed = s.ejected as usize - core.ejection_backlog();
        assert_eq!(
            s.generated as usize,
            core.live_packets() + consumed,
            "live population must account for every generated packet"
        );
    }
}
