//! Regression tests for the structural deadlock detector
//! ([`drain_netsim::deadlock::detect`]): a known-negative (idle irregular
//! network) and a deterministic hand-built known-positive (a 4-router
//! cyclic wait that must be reported in full).

use drain_netsim::deadlock::detect;
use drain_netsim::mechanism::NoMechanism;
use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_netsim::{CheckConfig, MessageClass, Sim, SimConfig, VcRef};
use drain_topology::chiplet::random_connected;
use drain_topology::{NodeId, Topology};

/// A simulator with nothing injected: 1 VN × 1 VC so a single cyclic wait
/// has no sibling buffer to escape into.
fn single_vc_sim(topo: &Topology) -> Sim {
    Sim::new(
        topo.clone(),
        SimConfig {
            vns: 1,
            vcs_per_vn: 1,
            num_classes: 1,
            watchdog_threshold: 0,
            checks: CheckConfig {
                deep_interval: 1,
                ..CheckConfig::full()
            },
            ..SimConfig::default()
        },
        Box::new(FullyAdaptive::new(topo)),
        Box::new(NoMechanism),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 7)),
    )
}

#[test]
fn idle_irregular_network_reports_zero_deadlocked_vcs() {
    for topo in [
        Topology::mesh(4, 4),
        Topology::ring(5),
        random_connected(12, 3.0, 42),
    ] {
        let sim = single_vc_sim(&topo);
        let report = detect(sim.core());
        assert!(
            report.deadlocked.is_empty(),
            "idle {} reported {} deadlocked VCs",
            topo.name(),
            report.deadlocked.len()
        );
    }
}

#[test]
fn hand_built_four_router_cyclic_wait_is_fully_reported() {
    // Ring of 4 routers, one VC per link. Every one of the 8 directed
    // links holds a packet destined two hops past the link's head router:
    // no packet can eject where it sits, and every forward buffer is
    // occupied by another member of the wait cycle — a textbook circular
    // wait. The detector must convict all 8 VCs.
    let topo = Topology::ring(4);
    let mut sim = single_vc_sim(&topo);
    let n = topo.num_nodes() as u16;
    for l in topo.link_ids() {
        let edge = topo.link(l);
        let dest = NodeId((edge.dst.0 + 2) % n);
        sim.core_mut().place_packet(
            VcRef { link: l, vn: 0, vc: 0 },
            edge.src,
            dest,
            MessageClass(0),
            1,
        );
    }
    let report = detect(sim.core());
    assert!(report.is_deadlocked());
    assert_eq!(
        report.deadlocked.len(),
        topo.num_unidirectional_links(),
        "every occupied VC is part of the cyclic wait: {:?}",
        report.deadlocked
    );
    // The runtime invariant checker must agree this state is stuck
    // *without* flagging it as a bookkeeping violation: occupancy,
    // conservation and reachability all hold — only progress is absent.
    drain_netsim::check::run_checks(sim.core()).expect("a deadlock is not a bookkeeping bug");
}
