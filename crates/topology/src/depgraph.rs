//! Channel-dependency graph.
//!
//! Following §III-B of the paper, the input topology is represented as a
//! dependency graph `G` where *each node is a unidirectional link* of the
//! topology and *each directed edge is a turn* between two unidirectional
//! links that meet at a router. U-turns (a link followed by its own reverse)
//! are included, matching the paper's assumption §III-A(3) that every input
//! port can route to every output port.
//!
//! The offline drain-path algorithm searches this graph for an elementary
//! cycle that covers every link.

use crate::{LinkId, NodeId, Topology};

/// A turn: arriving on `from` and departing on `to`, pivoting at the router
/// `from.dst == to.src`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Turn {
    /// Incoming unidirectional link.
    pub from: LinkId,
    /// Outgoing unidirectional link.
    pub to: LinkId,
}

/// The channel-dependency graph of a topology.
///
/// # Examples
///
/// ```
/// use drain_topology::{Topology, depgraph::DependencyGraph};
///
/// let t = Topology::mesh(3, 3);
/// let g = DependencyGraph::new(&t);
/// assert_eq!(g.num_links(), t.num_unidirectional_links());
/// // A corner router (degree 2) contributes 2 outgoing turns per incoming
/// // link (one of which is the U-turn).
/// let l = t.out_links(drain_topology::NodeId(0))[0];
/// assert!(g.successors(l).contains(&l.reverse()));
/// ```
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    /// `succ[l]` = links reachable from link `l` via one turn.
    succ: Vec<Vec<LinkId>>,
    allow_u_turns: bool,
}

impl DependencyGraph {
    /// Builds the dependency graph with U-turns allowed (the paper's
    /// baseline assumption).
    pub fn new(topo: &Topology) -> Self {
        Self::with_u_turns(topo, true)
    }

    /// Builds the dependency graph, optionally excluding U-turns.
    pub fn with_u_turns(topo: &Topology, allow_u_turns: bool) -> Self {
        let mut succ = vec![Vec::new(); topo.num_unidirectional_links()];
        for l in topo.link_ids() {
            let pivot: NodeId = topo.link(l).dst;
            for &out in topo.out_links(pivot) {
                if !allow_u_turns && out == l.reverse() {
                    continue;
                }
                succ[l.index()].push(out);
            }
        }
        DependencyGraph { succ, allow_u_turns }
    }

    /// Number of unidirectional links (nodes of this graph).
    pub fn num_links(&self) -> usize {
        self.succ.len()
    }

    /// Number of turns (edges of this graph).
    pub fn num_turns(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Whether U-turns were included.
    pub fn u_turns_allowed(&self) -> bool {
        self.allow_u_turns
    }

    /// Links reachable from `l` via a single turn.
    #[inline]
    pub fn successors(&self, l: LinkId) -> &[LinkId] {
        &self.succ[l.index()]
    }

    /// Iterator over every turn in the graph.
    pub fn turns(&self) -> impl Iterator<Item = Turn> + '_ {
        self.succ.iter().enumerate().flat_map(|(i, outs)| {
            outs.iter().map(move |&to| Turn {
                from: LinkId(i as u32),
                to,
            })
        })
    }

    /// Validates that `path` is a closed walk in this graph: consecutive
    /// links (cyclically) are connected by a turn.
    pub fn is_closed_walk(&self, path: &[LinkId]) -> bool {
        if path.is_empty() {
            return false;
        }
        (0..path.len()).all(|i| {
            let from = path[i];
            let to = path[(i + 1) % path.len()];
            self.succ[from.index()].contains(&to)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turn_counts_mesh() {
        let t = Topology::mesh(3, 3);
        let g = DependencyGraph::new(&t);
        // Each link l arriving at router r contributes degree(r) turns.
        let expected: usize = t
            .link_ids()
            .map(|l| t.degree(t.link(l).dst))
            .sum();
        assert_eq!(g.num_turns(), expected);
    }

    #[test]
    fn u_turn_exclusion() {
        let t = Topology::mesh(3, 3);
        let g = DependencyGraph::with_u_turns(&t, false);
        for l in t.link_ids() {
            assert!(!g.successors(l).contains(&l.reverse()));
        }
        let g_u = DependencyGraph::new(&t);
        assert_eq!(
            g_u.num_turns(),
            g.num_turns() + t.num_unidirectional_links()
        );
    }

    #[test]
    fn successors_share_pivot() {
        let t = Topology::mesh(4, 4);
        let g = DependencyGraph::new(&t);
        for l in t.link_ids() {
            for &s in g.successors(l) {
                assert_eq!(t.link(l).dst, t.link(s).src);
            }
        }
    }

    #[test]
    fn closed_walk_validation() {
        let t = Topology::ring(4);
        let g = DependencyGraph::new(&t);
        // Walk around the ring in one direction: links 0->1->2->3->0.
        let mut path = Vec::new();
        let mut cur = crate::NodeId(0);
        for _ in 0..4 {
            let l = t
                .out_links(cur)
                .iter()
                .copied()
                .find(|&l| t.link(l).dst.0 == (cur.0 + 1) % 4)
                .unwrap();
            path.push(l);
            cur = t.link(l).dst;
        }
        assert!(g.is_closed_walk(&path));
        path.swap(1, 2);
        assert!(!g.is_closed_walk(&path));
        assert!(!g.is_closed_walk(&[]));
    }
}
