//! Connectivity-preserving random link-failure injection.
//!
//! The paper evaluates DRAIN on irregular topologies derived from a regular
//! mesh by removing randomly chosen bidirectional links *while ensuring
//! connectivity is maintained* (§IV). [`FaultInjector`] reproduces that
//! methodology deterministically from a seed, so every experiment's "10
//! randomly selected fault patterns" are reproducible.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{LinkId, Topology, TopologyError};

/// Deterministic, connectivity-preserving fault-pattern generator.
///
/// # Examples
///
/// ```
/// use drain_topology::{Topology, faults::FaultInjector};
///
/// let mesh = Topology::mesh(8, 8);
/// let faulty = FaultInjector::new(7).remove_links(&mesh, 12)?;
/// assert!(faulty.is_connected());
/// assert_eq!(faulty.num_bidirectional_links(), mesh.num_bidirectional_links() - 12);
/// # Ok::<(), drain_topology::TopologyError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector whose patterns are a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// The seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Removes `count` random bidirectional links from `base`, keeping the
    /// network connected.
    ///
    /// Candidate links are shuffled deterministically; a link is removed only
    /// if the remaining graph stays connected, otherwise the next candidate
    /// is tried. Several passes are made because removing one link can make a
    /// previously skipped link removable (and vice versa).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooManyFaults`] if fewer than `count` links
    /// can be removed without disconnecting the network (e.g. asking a tree
    /// to lose links).
    pub fn remove_links(&self, base: &Topology, count: usize) -> Result<Topology, TopologyError> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut topo = base.clone();
        let mut removed = 0;
        // `num_nodes - 1` links must remain for a spanning tree.
        let max_removable = base
            .num_bidirectional_links()
            .saturating_sub(base.num_nodes().saturating_sub(1));
        if count > max_removable {
            return Err(TopologyError::TooManyFaults {
                requested: count,
                achievable: max_removable,
            });
        }
        // Link ids are recompacted by `without_link`, so candidates are
        // re-derived from the current topology before every removal.
        while removed < count {
            let mut candidates: Vec<u32> = (0..topo.num_bidirectional_links() as u32).collect();
            candidates.shuffle(&mut rng);
            let picked = candidates
                .into_iter()
                .map(|k| LinkId(k * 2))
                .find(|&l| topo.connected_without(l));
            match picked {
                Some(l) => {
                    topo = topo.without_link(l).expect("checked connectivity");
                    removed += 1;
                }
                None => {
                    return Err(TopologyError::TooManyFaults {
                        requested: count,
                        achievable: removed,
                    });
                }
            }
        }
        topo.set_name(format!("{}-f{}s{}", base.name(), count, self.seed));
        Ok(topo)
    }

    /// Picks one random removable bidirectional link of `topo`, or `None` if
    /// every link is a bridge.
    ///
    /// Used to model a single wear-out failure event at runtime.
    pub fn pick_removable_link(&self, topo: &Topology, salt: u64) -> Option<LinkId> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut candidates: Vec<u32> = (0..topo.num_bidirectional_links() as u32).collect();
        candidates.shuffle(&mut rng);
        candidates
            .into_iter()
            .map(|k| LinkId(k * 2))
            .find(|&l| topo.connected_without(l))
    }

    /// Generates `n` independent faulty variants of `base`, each with
    /// `faults` links removed — the paper's "10 randomly selected fault
    /// patterns" per configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError::TooManyFaults`] from any pattern.
    pub fn patterns(
        &self,
        base: &Topology,
        faults: usize,
        n: usize,
    ) -> Result<Vec<Topology>, TopologyError> {
        (0..n)
            .map(|i| {
                FaultInjector::new(self.seed.wrapping_add(i as u64).wrapping_mul(0x100000001B3))
                    .remove_links(base, faults)
            })
            .collect()
    }
}

/// Convenience: a seeded RNG stream for anything fault-related that needs
/// ad-hoc randomness with reproducibility.
pub fn seeded_rng(seed: u64) -> impl Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_preserves_connectivity() {
        let mesh = Topology::mesh(8, 8);
        for faults in [1, 4, 8, 12] {
            let t = FaultInjector::new(42).remove_links(&mesh, faults).unwrap();
            assert!(t.is_connected(), "{faults} faults disconnected the mesh");
            assert_eq!(
                t.num_bidirectional_links(),
                mesh.num_bidirectional_links() - faults
            );
            assert_eq!(t.num_nodes(), mesh.num_nodes());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mesh = Topology::mesh(6, 6);
        let a = FaultInjector::new(9).remove_links(&mesh, 6).unwrap();
        let b = FaultInjector::new(9).remove_links(&mesh, 6).unwrap();
        assert_eq!(a.edge_list(), b.edge_list());
        let c = FaultInjector::new(10).remove_links(&mesh, 6).unwrap();
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn too_many_faults_rejected() {
        let ring = Topology::ring(5);
        // A 5-ring has 5 links; spanning tree needs 4, so only 1 removable.
        assert!(FaultInjector::new(0).remove_links(&ring, 1).is_ok());
        assert!(matches!(
            FaultInjector::new(0).remove_links(&ring, 2),
            Err(TopologyError::TooManyFaults { .. })
        ));
    }

    #[test]
    fn patterns_are_distinct() {
        let mesh = Topology::mesh(8, 8);
        let ps = FaultInjector::new(1).patterns(&mesh, 8, 10).unwrap();
        assert_eq!(ps.len(), 10);
        let mut sets: Vec<_> = ps.iter().map(|t| t.edge_list()).collect();
        sets.dedup();
        assert!(sets.len() > 1, "fault patterns should differ");
    }

    #[test]
    fn pick_removable_on_tree_is_none() {
        let path = Topology::from_edges("p", 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(FaultInjector::new(3).pick_removable_link(&path, 0), None);
    }

    #[test]
    fn pick_removable_on_mesh_is_some() {
        let mesh = Topology::mesh(4, 4);
        let l = FaultInjector::new(3).pick_removable_link(&mesh, 5).unwrap();
        assert!(mesh.connected_without(l));
    }
}
