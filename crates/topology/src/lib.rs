//! Topology substrate for the DRAIN reproduction.
//!
//! This crate models interconnection-network topologies as collections of
//! routers (nodes) joined by *bidirectional links*, where each bidirectional
//! link is stored as a pair of opposing *unidirectional links*. All of the
//! higher layers (the drain-path algorithm, the network simulator, the
//! baselines) are built on these types.
//!
//! Key pieces (with the paper sections each module serves):
//!
//! * [`Topology`] — the graph itself, with builders for regular meshes,
//!   tori, rings, arbitrary edge lists, random connected graphs and
//!   multi-chiplet compositions (the §VI discussion topologies).
//! * [`faults`] — connectivity-preserving random link-failure injection,
//!   reproducing the §V-A methodology of evaluating irregular topologies
//!   derived from an 8×8/4×4 mesh by removing links.
//! * [`depgraph`] — the channel-dependency graph (nodes = unidirectional
//!   links, edges = turns, including U-turns) that the §III-B offline
//!   drain-path search runs over.
//! * [`updown`] — up*/down* spanning-tree labeling and legal-turn routing
//!   tables for the §II baselines (Fig 5, escape VCs on irregular
//!   topologies).
//! * [`distance`] — all-pairs BFS distances, diameter and next-hop sets for
//!   minimal adaptive routing.
//!
//! # Examples
//!
//! ```
//! use drain_topology::{Topology, faults::FaultInjector};
//!
//! let mesh = Topology::mesh(8, 8);
//! assert_eq!(mesh.num_nodes(), 64);
//! assert!(mesh.is_connected());
//!
//! // Remove 8 random bidirectional links while preserving connectivity.
//! let faulty = FaultInjector::new(0xD12A).remove_links(&mesh, 8).unwrap();
//! assert!(faulty.is_connected());
//! assert_eq!(faulty.num_bidirectional_links(), mesh.num_bidirectional_links() - 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chiplet;
pub mod depgraph;
pub mod distance;
pub mod faults;
mod graph;
pub mod partition;
pub mod updown;

pub use graph::{IntoSharedTopology, LinkId, NodeId, Topology, TopologyError, UniLink};
