//! up*/down* routing support.
//!
//! up*/down* [Schroeder et al.] is the classic topology-agnostic
//! deadlock-free routing used by the paper's escape-VC baseline on irregular
//! topologies (§II-C, Fig 5): routers are numbered via a BFS spanning tree;
//! every unidirectional link is *up* (toward the root) or *down* (away from
//! it); a legal path is zero or more up links followed by zero or more down
//! links, i.e. the down→up turn is forbidden, which breaks every cycle.
//!
//! [`UpDownRouting`] precomputes, for every (current node, destination,
//! phase), the set of next-hop links on a *minimal legal* path. The phase —
//! whether the packet has already traversed a down link — is derivable at a
//! router from the direction of the input link, exactly as in hardware
//! implementations.

use std::collections::VecDeque;

use crate::{LinkId, NodeId, Topology};

/// Direction of a unidirectional link relative to the spanning-tree root.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkDirection {
    /// Toward the root (to a lower (level, id) label).
    Up,
    /// Away from the root.
    Down,
}

/// Routing phase of a packet under up*/down* rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// No down link taken yet: both up and down links are legal.
    CanUp,
    /// A down link was taken: only down links are legal.
    DownOnly,
}

/// Precomputed up*/down* labeling and minimal legal-path routing tables.
///
/// # Examples
///
/// ```
/// use drain_topology::{Topology, NodeId, updown::{UpDownRouting, Phase}};
///
/// let t = Topology::mesh(4, 4);
/// let ud = UpDownRouting::new(&t);
/// let hops = ud.next_hops(NodeId(0), NodeId(15), Phase::CanUp);
/// assert!(!hops.is_empty());
/// // All routes terminate: distances are finite from the CanUp phase.
/// assert!(ud.legal_distance(NodeId(3), NodeId(12), Phase::CanUp) < u16::MAX);
/// ```
#[derive(Clone, Debug)]
pub struct UpDownRouting {
    root: NodeId,
    level: Vec<u16>,
    num_nodes: usize,
    /// Direction per unidirectional link.
    dir: Vec<LinkDirection>,
    /// `dist[phase][u * n + dest]`: minimal legal hop count, `u16::MAX` if
    /// unreachable in that phase.
    dist: [Vec<u16>; 2],
    /// `hops[phase][u * n + dest]`: minimal legal next-hop links.
    hops: [Vec<Vec<LinkId>>; 2],
}

impl UpDownRouting {
    /// Builds the labeling and tables using the highest-degree node
    /// (lowest id tie-break) as root — the usual heuristic.
    pub fn new(topo: &Topology) -> Self {
        let root = topo
            .nodes()
            .max_by_key(|&n| (topo.degree(n), std::cmp::Reverse(n.0)))
            .expect("topology is non-empty");
        Self::with_root(topo, root)
    }

    /// Builds the labeling and tables from a chosen root.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is disconnected (up*/down* labels require a spanning
    /// tree reaching every node).
    pub fn with_root(topo: &Topology, root: NodeId) -> Self {
        let n = topo.num_nodes();
        // BFS levels from the root.
        let mut level = vec![u16::MAX; n];
        level[root.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &l in topo.out_links(u) {
                let v = topo.link(l).dst;
                if level[v.index()] == u16::MAX {
                    level[v.index()] = level[u.index()] + 1;
                    q.push_back(v);
                }
            }
        }
        assert!(
            level.iter().all(|&l| l != u16::MAX),
            "up*/down* requires a connected topology"
        );
        // A link u -> v is Up iff v's (level, id) label is smaller.
        let label = |x: NodeId| (level[x.index()], x.0);
        let dir: Vec<LinkDirection> = topo
            .link_ids()
            .map(|l| {
                let e = topo.link(l);
                if label(e.dst) < label(e.src) {
                    LinkDirection::Up
                } else {
                    LinkDirection::Down
                }
            })
            .collect();

        // Per-destination BFS over the phase-expanded graph, reversed.
        // Forward transitions: (u, CanUp) --up--> (v, CanUp)
        //                      (u, CanUp) --down--> (v, DownOnly)
        //                      (u, DownOnly) --down--> (v, DownOnly)
        let mut dist = [vec![u16::MAX; n * n], vec![u16::MAX; n * n]];
        const CAN_UP: usize = 0;
        const DOWN_ONLY: usize = 1;
        for dest in topo.nodes() {
            let di = dest.index();
            dist[CAN_UP][di * n + di] = 0;
            dist[DOWN_ONLY][di * n + di] = 0;
            // BFS on reversed edges from both destination states.
            let mut q: VecDeque<(NodeId, usize)> = VecDeque::new();
            q.push_back((dest, CAN_UP));
            q.push_back((dest, DOWN_ONLY));
            while let Some((v, phase)) = q.pop_front() {
                let dv = dist[phase][v.index() * n + di];
                for &l in topo.in_links(v) {
                    let u = topo.link(l).src;
                    // Which forward transitions produce (v, phase)?
                    let preds: &[usize] = match (dir[l.index()], phase) {
                        (LinkDirection::Up, CAN_UP) => &[CAN_UP],
                        (LinkDirection::Down, DOWN_ONLY) => &[CAN_UP, DOWN_ONLY],
                        _ => &[],
                    };
                    for &p in preds {
                        let slot = &mut dist[p][u.index() * n + di];
                        if *slot == u16::MAX {
                            *slot = dv + 1;
                            q.push_back((u, p));
                        }
                    }
                }
            }
        }
        // Next-hop sets from the distance tables.
        let mut hops = [vec![Vec::new(); n * n], vec![Vec::new(); n * n]];
        for u in topo.nodes() {
            for dest in topo.nodes() {
                if u == dest {
                    continue;
                }
                for phase in [CAN_UP, DOWN_ONLY] {
                    let du = dist[phase][u.index() * n + dest.index()];
                    if du == u16::MAX {
                        continue;
                    }
                    let set: Vec<LinkId> = topo
                        .out_links(u)
                        .iter()
                        .copied()
                        .filter(|&l| {
                            let v = topo.link(l).dst;
                            let next_phase = match (phase, dir[l.index()]) {
                                (CAN_UP, LinkDirection::Up) => CAN_UP,
                                (_, LinkDirection::Down) => DOWN_ONLY,
                                // Down→up turn is forbidden.
                                (_, LinkDirection::Up) => return false,
                            };
                            dist[next_phase][v.index() * n + dest.index()] == du - 1
                        })
                        .collect();
                    hops[phase][u.index() * n + dest.index()] = set;
                }
            }
        }
        UpDownRouting {
            root,
            level,
            num_nodes: n,
            dir,
            dist,
            hops,
        }
    }

    /// The spanning-tree root used for the labeling.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// BFS level of node `n` (root is 0).
    pub fn level(&self, n: NodeId) -> u16 {
        self.level[n.index()]
    }

    /// Direction of unidirectional link `l`.
    pub fn direction(&self, l: LinkId) -> LinkDirection {
        self.dir[l.index()]
    }

    /// Whether the turn `from -> to` is legal under up*/down* rules
    /// (down→up is the forbidden turn).
    pub fn is_legal_turn(&self, from: LinkId, to: LinkId) -> bool {
        !(self.dir[from.index()] == LinkDirection::Down
            && self.dir[to.index()] == LinkDirection::Up)
    }

    /// Phase implied by the link a packet arrived on (`None` = injected
    /// here, so no down link taken yet).
    pub fn phase_after(&self, arrived_via: Option<LinkId>) -> Phase {
        match arrived_via {
            Some(l) if self.dir[l.index()] == LinkDirection::Down => Phase::DownOnly,
            _ => Phase::CanUp,
        }
    }

    /// Minimal legal hop count from `cur` (in `phase`) to `dest`
    /// (`u16::MAX` if unreachable in that phase).
    pub fn legal_distance(&self, cur: NodeId, dest: NodeId, phase: Phase) -> u16 {
        self.dist[phase as usize][cur.index() * self.num_nodes + dest.index()]
    }

    /// Next-hop links on a minimal legal path from `cur` to `dest` given the
    /// packet's `phase`.
    pub fn next_hops(&self, cur: NodeId, dest: NodeId, phase: Phase) -> &[LinkId] {
        &self.hops[phase as usize][cur.index() * self.num_nodes + dest.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultInjector;

    fn check_all_pairs_route(topo: &Topology, ud: &UpDownRouting) {
        // Follow next_hops greedily from every (src, dest): must terminate.
        for src in topo.nodes() {
            for dest in topo.nodes() {
                if src == dest {
                    continue;
                }
                let mut cur = src;
                let mut phase = Phase::CanUp;
                let mut hops = 0;
                while cur != dest {
                    let nh = ud.next_hops(cur, dest, phase);
                    assert!(
                        !nh.is_empty(),
                        "no legal next hop from {cur:?} to {dest:?} in {phase:?}"
                    );
                    let l = nh[0];
                    phase = match (phase, ud.direction(l)) {
                        (Phase::CanUp, LinkDirection::Up) => Phase::CanUp,
                        _ => Phase::DownOnly,
                    };
                    cur = topo.link(l).dst;
                    hops += 1;
                    assert!(hops <= topo.num_nodes() as u32 * 2, "routing loop");
                }
            }
        }
    }

    #[test]
    fn routes_complete_on_mesh() {
        let t = Topology::mesh(4, 4);
        let ud = UpDownRouting::new(&t);
        check_all_pairs_route(&t, &ud);
    }

    #[test]
    fn routes_complete_on_faulty_mesh() {
        for seed in 0..5 {
            let t = FaultInjector::new(seed)
                .remove_links(&Topology::mesh(8, 8), 12)
                .unwrap();
            let ud = UpDownRouting::new(&t);
            check_all_pairs_route(&t, &ud);
        }
    }

    #[test]
    fn no_cycle_in_legal_turns() {
        // The legal-turn graph over links must be acyclic when restricted to
        // the up*/down* rule... more precisely, any cycle of links must
        // contain a down->up (illegal) turn. Verify via DFS on the legal
        // dependency graph.
        let t = FaultInjector::new(3)
            .remove_links(&Topology::mesh(6, 6), 8)
            .unwrap();
        let ud = UpDownRouting::new(&t);
        let m = t.num_unidirectional_links();
        // 0 = unvisited, 1 = on stack, 2 = done
        let mut state = vec![0u8; m];
        let mut stack: Vec<(LinkId, usize)> = Vec::new();
        for start in t.link_ids() {
            if state[start.index()] != 0 {
                continue;
            }
            stack.push((start, 0));
            state[start.index()] = 1;
            while let Some(&mut (l, ref mut i)) = stack.last_mut() {
                let pivot = t.link(l).dst;
                let outs = t.out_links(pivot);
                let mut advanced = false;
                while *i < outs.len() {
                    let nxt = outs[*i];
                    *i += 1;
                    if !ud.is_legal_turn(l, nxt) {
                        continue;
                    }
                    match state[nxt.index()] {
                        0 => {
                            state[nxt.index()] = 1;
                            stack.push((nxt, 0));
                            advanced = true;
                            break;
                        }
                        1 => panic!("cycle of legal turns found: up*/down* broken"),
                        _ => {}
                    }
                }
                if !advanced && stack.last().map(|&(x, _)| x) == Some(l) {
                    state[l.index()] = 2;
                    stack.pop();
                }
            }
        }
    }

    #[test]
    fn up_down_direction_antisymmetric() {
        let t = Topology::mesh(5, 5);
        let ud = UpDownRouting::new(&t);
        for l in t.link_ids() {
            assert_ne!(
                ud.direction(l),
                ud.direction(l.reverse()),
                "a link and its reverse must have opposite directions"
            );
        }
    }

    #[test]
    fn root_has_highest_degree() {
        let t = Topology::mesh(5, 5);
        let ud = UpDownRouting::new(&t);
        assert_eq!(t.degree(ud.root()), t.max_degree());
        assert_eq!(ud.level(ud.root()), 0);
    }

    #[test]
    fn non_minimal_paths_exist_under_updown() {
        // up*/down* often forces non-minimal routes; verify at least one
        // pair on a faulty mesh pays extra hops vs. the unrestricted
        // shortest path (this is the Fig 5 latency-gap mechanism).
        let t = FaultInjector::new(1)
            .remove_links(&Topology::mesh(8, 8), 8)
            .unwrap();
        let ud = UpDownRouting::new(&t);
        let d = crate::distance::DistanceMap::new(&t);
        let mut stretched = 0;
        for a in t.nodes() {
            for b in t.nodes() {
                if a == b {
                    continue;
                }
                let legal = ud.legal_distance(a, b, Phase::CanUp);
                let min = d.distance(a, b);
                assert!(legal >= min);
                assert_ne!(legal, u16::MAX);
                if legal > min {
                    stretched += 1;
                }
            }
        }
        assert!(stretched > 0, "expected some non-minimal up*/down* routes");
    }
}
