//! All-pairs shortest-path machinery for minimal adaptive routing.
//!
//! The simulator's fully-adaptive router consults a [`DistanceMap`] to find
//! the set of *productive* output links (those on some minimal path to the
//! destination). Distances are hop counts from BFS over the unidirectional
//! link graph, recomputed whenever the topology changes (fault events).

use std::collections::VecDeque;

use crate::{LinkId, NodeId, Topology};

/// Dense all-pairs hop-count table plus per-(node, dest) productive-link
/// sets.
///
/// # Examples
///
/// ```
/// use drain_topology::{Topology, NodeId, distance::DistanceMap};
///
/// let t = Topology::mesh(4, 4);
/// let d = DistanceMap::new(&t);
/// assert_eq!(d.distance(NodeId(0), NodeId(15)), 6);
/// assert_eq!(d.diameter(), 6);
/// // From a corner toward the opposite corner, both mesh directions are
/// // productive.
/// assert_eq!(d.productive_links(NodeId(0), NodeId(15)).len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct DistanceMap {
    num_nodes: usize,
    /// `dist[src * n + dst]`, `u16::MAX` = unreachable.
    dist: Vec<u16>,
    /// Productive-link sets in CSR form: the links for pair `(cur, dst)`
    /// are `prod_links[prod_off[cur * n + dst] .. prod_off[cur * n + dst + 1]]`.
    /// One lookup is two loads into contiguous arrays — the per-packet
    /// routing query in the simulator's hot loop — instead of chasing a
    /// per-pair heap `Vec`.
    prod_off: Vec<u32>,
    prod_links: Vec<LinkId>,
    diameter: u16,
    avg_distance: f64,
}

impl DistanceMap {
    /// Computes BFS distances and productive-link sets for `topo`.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        let mut dist = vec![u16::MAX; n * n];
        // BFS from every destination over reversed edges gives
        // dist(x, dest) for all x in one pass.
        for dest in topo.nodes() {
            let base = |x: usize| x * n + dest.index();
            dist[base(dest.index())] = 0;
            let mut q = VecDeque::new();
            q.push_back(dest);
            while let Some(v) = q.pop_front() {
                let dv = dist[base(v.index())];
                for &l in topo.in_links(v) {
                    let u = topo.link(l).src;
                    if dist[base(u.index())] == u16::MAX {
                        dist[base(u.index())] = dv + 1;
                        q.push_back(u);
                    }
                }
            }
        }
        // Build the CSR directly: the (cur, dest) row-major visit order is
        // exactly the offset order, so links append to one flat buffer.
        let mut prod_off = Vec::with_capacity(n * n + 1);
        let mut prod_links = Vec::new();
        prod_off.push(0u32);
        for cur in topo.nodes() {
            for dest in topo.nodes() {
                let d = dist[cur.index() * n + dest.index()];
                if cur != dest && d != u16::MAX {
                    prod_links.extend(topo.out_links(cur).iter().copied().filter(|&l| {
                        let next = topo.link(l).dst;
                        dist[next.index() * n + dest.index()] == d - 1
                    }));
                }
                prod_off.push(prod_links.len() as u32);
            }
        }
        let mut diameter = 0u16;
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                let d = dist[s * n + t];
                if d != u16::MAX {
                    diameter = diameter.max(d);
                    sum += d as u64;
                    pairs += 1;
                }
            }
        }
        DistanceMap {
            num_nodes: n,
            dist,
            prod_off,
            prod_links,
            diameter,
            avg_distance: if pairs == 0 {
                0.0
            } else {
                sum as f64 / pairs as f64
            },
        }
    }

    /// Hop count from `src` to `dst` (`u16::MAX` if unreachable).
    #[inline]
    pub fn distance(&self, src: NodeId, dst: NodeId) -> u16 {
        self.dist[src.index() * self.num_nodes + dst.index()]
    }

    /// Outgoing links of `cur` that lie on a minimal path to `dest`.
    #[inline]
    pub fn productive_links(&self, cur: NodeId, dest: NodeId) -> &[LinkId] {
        let p = cur.index() * self.num_nodes + dest.index();
        &self.prod_links[self.prod_off[p] as usize..self.prod_off[p + 1] as usize]
    }

    /// Longest shortest path between any reachable pair.
    pub fn diameter(&self) -> u16 {
        self.diameter
    }

    /// Mean shortest-path hop count over all ordered reachable pairs.
    pub fn avg_distance(&self) -> f64 {
        self.avg_distance
    }

    /// Average number of minimal next hops over all (cur, dest) pairs with
    /// `cur != dest` — a simple path-diversity metric.
    pub fn path_diversity(&self) -> f64 {
        let n = self.num_nodes;
        let mut sum = 0usize;
        let mut count = 0usize;
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                sum += (self.prod_off[s * n + t + 1] - self.prod_off[s * n + t]) as usize;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultInjector;

    #[test]
    fn mesh_distances_are_manhattan() {
        let t = Topology::mesh(5, 5);
        let d = DistanceMap::new(&t);
        for a in t.nodes() {
            for b in t.nodes() {
                let (ax, ay) = t.coord(a).unwrap();
                let (bx, by) = t.coord(b).unwrap();
                let manhattan = ax.abs_diff(bx) + ay.abs_diff(by);
                assert_eq!(d.distance(a, b), manhattan);
            }
        }
    }

    #[test]
    fn productive_links_decrease_distance() {
        let t = FaultInjector::new(11)
            .remove_links(&Topology::mesh(6, 6), 8)
            .unwrap();
        let d = DistanceMap::new(&t);
        for a in t.nodes() {
            for b in t.nodes() {
                if a == b {
                    continue;
                }
                let links = d.productive_links(a, b);
                assert!(!links.is_empty(), "connected graph must have a next hop");
                for &l in links {
                    let next = t.link(l).dst;
                    assert_eq!(d.distance(next, b) + 1, d.distance(a, b));
                }
            }
        }
    }

    #[test]
    fn faults_increase_average_distance() {
        let base = Topology::mesh(8, 8);
        let d0 = DistanceMap::new(&base);
        let faulty = FaultInjector::new(2).remove_links(&base, 12).unwrap();
        let d1 = DistanceMap::new(&faulty);
        assert!(d1.avg_distance() >= d0.avg_distance());
        assert!(d1.path_diversity() <= d0.path_diversity());
    }

    #[test]
    fn ring_diameter() {
        let t = Topology::ring(8);
        let d = DistanceMap::new(&t);
        assert_eq!(d.diameter(), 4);
    }
}
