//! Composed (chiplet) and random topologies.
//!
//! §VI of the paper motivates DRAIN for heterogeneous chiplet-based systems
//! — independently designed networks joined through an interposer — and for
//! random topologies, both of which are hard to make deadlock-free with turn
//! restrictions. These builders produce such topologies for the
//! corresponding example and tests.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Topology, TopologyError};

/// A chiplet to be composed into a larger system.
#[derive(Clone, Debug)]
pub struct Chiplet {
    /// The chiplet's internal network.
    pub topology: Topology,
    /// Local node ids that expose an interposer connection.
    pub boundary: Vec<u16>,
}

impl Chiplet {
    /// Wraps a topology, exposing the given local nodes as boundary ports.
    pub fn new(topology: Topology, boundary: Vec<u16>) -> Self {
        Chiplet { topology, boundary }
    }
}

/// Composes chiplets into one network by wiring boundary nodes in a ring
/// through the "interposer": boundary node `i` of chiplet `k` connects to
/// boundary node `i` of chiplet `k+1` (wrapping), for each shared index.
///
/// The result is connected iff each chiplet is connected and every chiplet
/// exposes at least one boundary node.
///
/// # Errors
///
/// Returns [`TopologyError::Empty`] when `chiplets` is empty, or propagates
/// edge errors (e.g. a boundary index out of range).
///
/// # Examples
///
/// ```
/// use drain_topology::{Topology, chiplet::{Chiplet, compose}};
///
/// let a = Chiplet::new(Topology::mesh(2, 2), vec![1, 3]);
/// let b = Chiplet::new(Topology::ring(5), vec![0, 2]);
/// let sys = compose("sys", &[a, b])?;
/// assert_eq!(sys.num_nodes(), 9);
/// assert!(sys.is_connected());
/// # Ok::<(), drain_topology::TopologyError>(())
/// ```
pub fn compose(name: &str, chiplets: &[Chiplet]) -> Result<Topology, TopologyError> {
    if chiplets.is_empty() {
        return Err(TopologyError::Empty);
    }
    let mut offsets = Vec::with_capacity(chiplets.len());
    let mut total = 0u16;
    for c in chiplets {
        offsets.push(total);
        total = total
            .checked_add(c.topology.num_nodes() as u16)
            .expect("composed system too large");
    }
    let mut edges = Vec::new();
    for (k, c) in chiplets.iter().enumerate() {
        let off = offsets[k];
        for (a, b) in c.topology.edge_list() {
            edges.push((off + a, off + b));
        }
        if chiplets.len() > 1 {
            let next = (k + 1) % chiplets.len();
            let noff = offsets[next];
            let pairs = c.boundary.len().min(chiplets[next].boundary.len());
            for i in 0..pairs {
                let a = off + c.boundary[i];
                let b = noff + chiplets[next].boundary[i];
                // Avoid duplicate edges in 2-chiplet rings (k->next and
                // next->k would wire the same pair twice).
                if chiplets.len() == 2 && k == 1 {
                    break;
                }
                edges.push((a, b));
            }
        }
    }
    Topology::from_edges(name, total as usize, &edges)
}

/// Builds a random connected graph with `n` nodes where every node has
/// degree at least 2 and roughly `avg_degree` on average — in the spirit of
/// the random/small-world NoC topologies (§VI) the paper cites.
///
/// Construction: a random spanning tree (guaranteeing connectivity), then
/// random extra edges until the target edge count is reached.
///
/// # Panics
///
/// Panics if `n < 4` or `avg_degree < 2.0`.
pub fn random_connected(n: u16, avg_degree: f64, seed: u64) -> Topology {
    assert!(n >= 4, "random topology needs at least 4 nodes");
    assert!(avg_degree >= 2.0, "average degree must be at least 2");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<u16> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut edges: Vec<(u16, u16)> = Vec::new();
    let mut present = std::collections::HashSet::new();
    // Random spanning tree: attach each node to a random earlier node.
    for i in 1..n as usize {
        let j = rng.gen_range(0..i);
        let (a, b) = (order[i], order[j]);
        present.insert((a.min(b), a.max(b)));
        edges.push((a, b));
    }
    let target_edges = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let max_edges = (n as usize * (n as usize - 1)) / 2;
    let target_edges = target_edges.min(max_edges);
    let mut guard = 0;
    while edges.len() < target_edges && guard < 100_000 {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if present.insert(key) {
            edges.push((a, b));
        }
    }
    Topology::from_edges(format!("rand{n}d{avg_degree}s{seed}"), n as usize, &edges)
        .expect("random edges are valid")
}

/// The paper's Fig 8 walk-through topology: a 3×3 mesh with the link
/// between routers 2 and 5 faulty.
pub fn fig8_topology() -> Topology {
    let mesh = Topology::mesh(3, 3);
    let l = mesh
        .link_between(crate::NodeId(2), crate::NodeId(5))
        .expect("3x3 mesh has link 2-5");
    let mut t = mesh.without_link(l).expect("not a bridge");
    t.set_name("fig8");
    t
}

/// Builds a small heterogeneous multi-chiplet system (two meshes of
/// different sizes plus a ring accelerator fabric) used by the chiplet
/// example and tests.
pub fn demo_heterogeneous_system(seed: u64) -> Topology {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let boundary_of_mesh = |w: u16, h: u16, rng: &mut ChaCha8Rng| {
        // Two random boundary-row nodes.
        let a = rng.gen_range(0..w);
        let b = rng.gen_range(0..w) + w * (h - 1);
        vec![a, b]
    };
    let m1 = Topology::mesh(4, 4);
    let m2 = Topology::mesh(3, 3);
    let ring = Topology::ring(6);
    let chiplets = vec![
        Chiplet::new(m1, boundary_of_mesh(4, 4, &mut rng)),
        Chiplet::new(m2, boundary_of_mesh(3, 3, &mut rng)),
        Chiplet::new(ring, vec![0, 3]),
    ];
    let mut t = compose("hetero-demo", &chiplets).expect("valid composition");
    t.set_name("hetero-demo");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn compose_two_meshes() {
        let a = Chiplet::new(Topology::mesh(3, 3), vec![2, 8]);
        let b = Chiplet::new(Topology::mesh(2, 2), vec![0, 1]);
        let sys = compose("ab", &[a, b]).unwrap();
        assert_eq!(sys.num_nodes(), 13);
        assert!(sys.is_connected());
        // Interposer links exist.
        assert!(sys.link_between(NodeId(2), NodeId(9)).is_some());
    }

    #[test]
    fn compose_empty_fails() {
        assert_eq!(compose("x", &[]).unwrap_err(), TopologyError::Empty);
    }

    #[test]
    fn random_is_connected_and_min_degree() {
        for seed in 0..10 {
            let t = random_connected(32, 3.0, seed);
            assert!(t.is_connected());
            assert_eq!(t.num_nodes(), 32);
        }
    }

    #[test]
    fn random_is_deterministic() {
        let a = random_connected(24, 3.0, 5);
        let b = random_connected(24, 3.0, 5);
        assert_eq!(a.edge_list(), b.edge_list());
    }

    #[test]
    fn fig8_matches_paper() {
        let t = fig8_topology();
        assert_eq!(t.num_nodes(), 9);
        assert!(t.link_between(NodeId(2), NodeId(5)).is_none());
        assert!(t.link_between(NodeId(1), NodeId(2)).is_some());
        assert!(t.is_connected());
        assert_eq!(t.num_bidirectional_links(), 11);
    }

    #[test]
    fn hetero_demo_is_connected() {
        let t = demo_heterogeneous_system(0);
        assert!(t.is_connected());
        assert_eq!(t.num_nodes(), 16 + 9 + 6);
    }
}
