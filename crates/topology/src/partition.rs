//! Deterministic edge-cut partitioning of a topology into router shards.
//!
//! The sharded simulation kernel (`drain-netsim`) assigns every router to
//! exactly one of `K` shards; each shard is owned by one worker thread and
//! packets crossing a *cut* link are handed over through the kernel's
//! shard-to-shard queue fabric at the cycle barrier. The partitioner here
//! only decides the node → shard map; it is a locality heuristic, not an
//! optimal min-cut: nodes are laid out in breadth-first order (so
//! neighbourhoods stay together) and the BFS sequence is split into `K`
//! contiguous, balanced blocks.
//!
//! Everything is deterministic: the BFS starts from the lowest unvisited
//! node id and expands neighbours in the topology's stable out-link order,
//! so the same `(topology, K)` pair always yields byte-identical maps —
//! a prerequisite for the kernel's bit-identity contract across shard
//! counts and across runs.

use crate::graph::{LinkId, NodeId, Topology};

/// A node → shard assignment (see the module docs).
///
/// # Examples
///
/// ```
/// use drain_topology::{partition::Partition, Topology};
///
/// let topo = Topology::mesh(4, 4);
/// let part = Partition::balanced(&topo, 4);
/// assert_eq!(part.num_shards(), 4);
/// assert_eq!(part.shard_sizes().iter().sum::<usize>(), topo.num_nodes());
/// assert!(part.cut_links(&topo) > 0, "a 4-way split of a mesh has cut links");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    k: usize,
    shard_of: Vec<u16>,
}

impl Partition {
    /// Splits `topo` into `k` balanced shards of BFS-contiguous nodes.
    ///
    /// Shard sizes differ by at most one (`n mod k` shards hold
    /// `ceil(n / k)` nodes, the rest `floor(n / k)`); with `k > n` the
    /// trailing shards are empty. Disconnected topologies are handled by
    /// restarting the BFS at the lowest unvisited node.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn balanced(topo: &Topology, k: usize) -> Partition {
        assert!(k > 0, "need at least one shard");
        let n = topo.num_nodes();
        // BFS layout: visit order groups each node with its neighbourhood.
        let mut order: Vec<u16> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for root in 0..n {
            if seen[root] {
                continue;
            }
            seen[root] = true;
            queue.push_back(root as u16);
            while let Some(cur) = queue.pop_front() {
                order.push(cur);
                for &l in topo.out_links(NodeId(cur)) {
                    let next = topo.link(l).dst;
                    if !seen[next.index()] {
                        seen[next.index()] = true;
                        queue.push_back(next.0);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n, "BFS must visit every node once");
        // Contiguous balanced blocks over the BFS sequence.
        let base = n / k;
        let extra = n % k;
        let mut shard_of = vec![0u16; n];
        let mut at = 0usize;
        for s in 0..k {
            let size = base + usize::from(s < extra);
            for &node in &order[at..at + size] {
                shard_of[node as usize] = s as u16;
            }
            at += size;
        }
        Partition { k, shard_of }
    }

    /// Number of shards (including empty ones when `k > num_nodes`).
    pub fn num_shards(&self) -> usize {
        self.k
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range for the partitioned topology.
    pub fn shard_of(&self, node: NodeId) -> u16 {
        self.shard_of[node.index()]
    }

    /// Node count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Whether `link` crosses a shard boundary (its endpoints live in
    /// different shards). Cross-shard links are the ones whose packet
    /// hand-overs go through the sharded kernel's queue fabric.
    pub fn is_cross(&self, topo: &Topology, link: LinkId) -> bool {
        let l = topo.link(link);
        self.shard_of[l.src.index()] != self.shard_of[l.dst.index()]
    }

    /// Number of unidirectional links crossing shard boundaries (the edge
    /// cut the heuristic tries to keep small).
    pub fn cut_links(&self, topo: &Topology) -> usize {
        topo.link_ids().filter(|&l| self.is_cross(topo, l)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_node_exactly_once() {
        let topo = Topology::mesh(5, 3);
        for k in 1..=8 {
            let p = Partition::balanced(&topo, k);
            assert_eq!(p.shard_sizes().iter().sum::<usize>(), 15);
            for n in 0..15u16 {
                assert!((p.shard_of(NodeId(n)) as usize) < k);
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        let topo = Topology::mesh(4, 4);
        for k in [2usize, 3, 5, 7] {
            let sizes = Partition::balanced(&topo, k).shard_sizes();
            let (min, max) = (
                sizes.iter().copied().min().unwrap(),
                sizes.iter().copied().max().unwrap(),
            );
            assert!(max - min <= 1, "k={k}: sizes {sizes:?}");
        }
    }

    #[test]
    fn deterministic_and_single_shard_trivial() {
        let topo = Topology::mesh(4, 4);
        assert_eq!(
            Partition::balanced(&topo, 4),
            Partition::balanced(&topo, 4)
        );
        let p1 = Partition::balanced(&topo, 1);
        assert_eq!(p1.cut_links(&topo), 0);
        assert_eq!(p1.shard_sizes(), vec![16]);
    }

    #[test]
    fn more_shards_than_nodes_leaves_empty_tails() {
        let topo = Topology::ring(3);
        let p = Partition::balanced(&topo, 8);
        let sizes = p.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 3);
        assert_eq!(sizes[3..], [0, 0, 0, 0, 0]);
    }

    #[test]
    fn cross_classification_is_endpoint_symmetric() {
        let topo = Topology::mesh(4, 4);
        let p = Partition::balanced(&topo, 4);
        for l in topo.link_ids() {
            assert_eq!(
                p.is_cross(&topo, l),
                p.is_cross(&topo, l.reverse()),
                "a link and its reverse must classify identically"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        Partition::balanced(&Topology::ring(4), 0);
    }
}
