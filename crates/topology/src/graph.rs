//! Core graph types: nodes, unidirectional links and the [`Topology`].

use std::collections::VecDeque;
use std::fmt;

/// Identifier of a router (node) in a topology.
///
/// Node ids are dense: `0..topology.num_nodes()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index into dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Identifier of a *unidirectional* link.
///
/// Links are stored in opposing pairs: ids `2k` and `2k + 1` are the two
/// directions of bidirectional link `k`, so [`LinkId::reverse`] is `id ^ 1`.
/// Link ids are dense: `0..topology.num_unidirectional_links()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index into dense per-link arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The opposing unidirectional link of the same bidirectional link.
    #[inline]
    pub fn reverse(self) -> LinkId {
        LinkId(self.0 ^ 1)
    }

    /// Index of the bidirectional link this direction belongs to.
    #[inline]
    pub fn bidir_index(self) -> usize {
        (self.0 >> 1) as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A unidirectional link `src -> dst`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct UniLink {
    /// Router the link leaves from.
    pub src: NodeId,
    /// Router the link arrives at.
    pub dst: NodeId,
}

/// Errors produced by topology construction and editing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge referenced a node outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u16,
        /// The topology's node count.
        num_nodes: usize,
    },
    /// The same bidirectional edge was given twice.
    DuplicateEdge {
        /// First endpoint as given.
        a: u16,
        /// Second endpoint as given.
        b: u16,
    },
    /// A self-loop edge `(a, a)` was given.
    SelfLoop {
        /// The node the loop was attached to.
        node: u16,
    },
    /// Removing the requested link would disconnect the network.
    WouldDisconnect {
        /// The bridge link.
        link: LinkId,
    },
    /// The requested number of faults cannot be injected while keeping the
    /// network connected.
    TooManyFaults {
        /// Faults asked for.
        requested: usize,
        /// Faults that could be injected.
        achievable: usize,
    },
    /// A topology must have at least one node.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for {num_nodes} nodes")
            }
            TopologyError::DuplicateEdge { a, b } => {
                write!(f, "duplicate bidirectional edge ({a}, {b})")
            }
            TopologyError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            TopologyError::WouldDisconnect { link } => {
                write!(f, "removing link {link:?} would disconnect the network")
            }
            TopologyError::TooManyFaults {
                requested,
                achievable,
            } => write!(
                f,
                "cannot inject {requested} faults while keeping the network connected \
                 (at most {achievable} possible)"
            ),
            TopologyError::Empty => write!(f, "topology must have at least one node"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Conversion into a shared, reference-counted [`Topology`].
///
/// Simulator assembly builds several components (routing, mechanism, the
/// core itself) from the same topology; accepting `impl IntoSharedTopology`
/// lets callers hand over an owned `Topology`, a borrow, or an existing
/// `Arc<Topology>` — and components that already share an `Arc` pay zero
/// clones instead of one deep copy each.
pub trait IntoSharedTopology {
    /// Converts `self` into an `Arc<Topology>`.
    fn into_shared(self) -> std::sync::Arc<Topology>;
}

impl IntoSharedTopology for Topology {
    fn into_shared(self) -> std::sync::Arc<Topology> {
        std::sync::Arc::new(self)
    }
}

impl IntoSharedTopology for &Topology {
    fn into_shared(self) -> std::sync::Arc<Topology> {
        std::sync::Arc::new(self.clone())
    }
}

impl IntoSharedTopology for std::sync::Arc<Topology> {
    fn into_shared(self) -> std::sync::Arc<Topology> {
        self
    }
}

impl IntoSharedTopology for &std::sync::Arc<Topology> {
    fn into_shared(self) -> std::sync::Arc<Topology> {
        std::sync::Arc::clone(self)
    }
}

/// An interconnection-network topology.
///
/// Nodes are routers; every physical channel is a *bidirectional link*
/// stored as two opposing [`UniLink`]s (ids `2k` / `2k+1`). This matches the
/// paper's assumption (§III-A) that all routers are connected via
/// bidirectional links and that a faulty unidirectional link disables its
/// opposing twin as well.
///
/// # Examples
///
/// ```
/// use drain_topology::Topology;
///
/// let t = Topology::mesh(4, 4);
/// assert_eq!(t.num_nodes(), 16);
/// assert_eq!(t.num_bidirectional_links(), 24);
/// assert_eq!(t.num_unidirectional_links(), 48);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    name: String,
    num_nodes: usize,
    links: Vec<UniLink>,
    out_adj: Vec<Vec<LinkId>>,
    in_adj: Vec<Vec<LinkId>>,
    /// Mesh coordinates when the topology derives from a grid (used by
    /// dimension-order routing and visualization).
    coords: Option<Vec<(u16, u16)>>,
    mesh_dims: Option<(u16, u16)>,
}

impl Topology {
    /// Builds a topology from a bidirectional edge list.
    ///
    /// Each `(a, b)` pair becomes two opposing unidirectional links.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range nodes, duplicate edges, self loops
    /// or an empty node set.
    pub fn from_edges(
        name: impl Into<String>,
        num_nodes: usize,
        edges: &[(u16, u16)],
    ) -> Result<Self, TopologyError> {
        if num_nodes == 0 {
            return Err(TopologyError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        let mut links = Vec::with_capacity(edges.len() * 2);
        let mut out_adj = vec![Vec::new(); num_nodes];
        let mut in_adj = vec![Vec::new(); num_nodes];
        for &(a, b) in edges {
            if a as usize >= num_nodes {
                return Err(TopologyError::NodeOutOfRange {
                    node: a,
                    num_nodes,
                });
            }
            if b as usize >= num_nodes {
                return Err(TopologyError::NodeOutOfRange {
                    node: b,
                    num_nodes,
                });
            }
            if a == b {
                return Err(TopologyError::SelfLoop { node: a });
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                return Err(TopologyError::DuplicateEdge { a, b });
            }
            let fwd = LinkId(links.len() as u32);
            links.push(UniLink {
                src: NodeId(a),
                dst: NodeId(b),
            });
            let bwd = LinkId(links.len() as u32);
            links.push(UniLink {
                src: NodeId(b),
                dst: NodeId(a),
            });
            out_adj[a as usize].push(fwd);
            in_adj[b as usize].push(fwd);
            out_adj[b as usize].push(bwd);
            in_adj[a as usize].push(bwd);
        }
        Ok(Topology {
            name: name.into(),
            num_nodes,
            links,
            out_adj,
            in_adj,
            coords: None,
            mesh_dims: None,
        })
    }

    /// Builds a `width x height` 2D mesh.
    ///
    /// Node `(x, y)` has id `y * width + x`. Mesh coordinates are retained
    /// for dimension-order routing.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0 || height == 0`.
    pub fn mesh(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        let mut edges = Vec::new();
        let id = |x: u16, y: u16| y * width + x;
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < height {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        let mut t = Topology::from_edges(
            format!("mesh{width}x{height}"),
            (width as usize) * (height as usize),
            &edges,
        )
        .expect("mesh edges are valid");
        t.coords = Some(
            (0..t.num_nodes)
                .map(|i| ((i as u16) % width, (i as u16) / width))
                .collect(),
        );
        t.mesh_dims = Some((width, height));
        t
    }

    /// Builds a `width x height` 2D torus (mesh plus wraparound links).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 3 (smaller tori would create
    /// duplicate edges).
    pub fn torus(width: u16, height: u16) -> Self {
        assert!(width >= 3 && height >= 3, "torus dimensions must be >= 3");
        let mut edges = Vec::new();
        let id = |x: u16, y: u16| y * width + x;
        for y in 0..height {
            for x in 0..width {
                edges.push((id(x, y), id((x + 1) % width, y)));
                edges.push((id(x, y), id(x, (y + 1) % height)));
            }
        }
        let mut t = Topology::from_edges(
            format!("torus{width}x{height}"),
            (width as usize) * (height as usize),
            &edges,
        )
        .expect("torus edges are valid");
        t.coords = Some(
            (0..t.num_nodes)
                .map(|i| ((i as u16) % width, (i as u16) / width))
                .collect(),
        );
        t.mesh_dims = Some((width, height));
        t
    }

    /// Builds a bidirectional ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: u16) -> Self {
        assert!(n >= 3, "ring needs at least 3 nodes");
        let edges: Vec<(u16, u16)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Topology::from_edges(format!("ring{n}"), n as usize, &edges).expect("ring edges are valid")
    }

    /// Name given at construction (e.g. `"mesh8x8"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of routers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of unidirectional links (always even).
    pub fn num_unidirectional_links(&self) -> usize {
        self.links.len()
    }

    /// Number of bidirectional links.
    pub fn num_bidirectional_links(&self) -> usize {
        self.links.len() / 2
    }

    /// The unidirectional link with id `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[inline]
    pub fn link(&self, l: LinkId) -> UniLink {
        self.links[l.index()]
    }

    /// Outgoing unidirectional links of node `n`.
    #[inline]
    pub fn out_links(&self, n: NodeId) -> &[LinkId] {
        &self.out_adj[n.index()]
    }

    /// Incoming unidirectional links of node `n`.
    #[inline]
    pub fn in_links(&self, n: NodeId) -> &[LinkId] {
        &self.in_adj[n.index()]
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes as u16).map(NodeId)
    }

    /// Iterator over all unidirectional link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Degree (number of neighbors) of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.out_adj[n.index()].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|i| self.out_adj[i].len())
            .max()
            .unwrap_or(0)
    }

    /// Finds the unidirectional link `a -> b`, if the nodes are adjacent.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.out_adj[a.index()]
            .iter()
            .copied()
            .find(|&l| self.links[l.index()].dst == b)
    }

    /// Mesh coordinates of node `n`, when this topology derives from a grid.
    pub fn coord(&self, n: NodeId) -> Option<(u16, u16)> {
        self.coords.as_ref().map(|c| c[n.index()])
    }

    /// Grid dimensions `(width, height)` when mesh-derived.
    pub fn mesh_dims(&self) -> Option<(u16, u16)> {
        self.mesh_dims
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.num_nodes == 0 {
            return false;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId(0));
        let mut count = 1;
        while let Some(n) = queue.pop_front() {
            for &l in self.out_links(n) {
                let d = self.links[l.index()].dst;
                if !seen[d.index()] {
                    seen[d.index()] = true;
                    count += 1;
                    queue.push_back(d);
                }
            }
        }
        count == self.num_nodes
    }

    /// Whether the graph stays connected after removing bidirectional link
    /// `l` (either direction id may be given).
    pub fn connected_without(&self, l: LinkId) -> bool {
        if self.num_nodes <= 1 {
            return true;
        }
        let skip = l.bidir_index();
        let mut seen = vec![false; self.num_nodes];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId(0));
        let mut count = 1;
        while let Some(n) = queue.pop_front() {
            for &ol in self.out_links(n) {
                if ol.bidir_index() == skip {
                    continue;
                }
                let d = self.links[ol.index()].dst;
                if !seen[d.index()] {
                    seen[d.index()] = true;
                    count += 1;
                    queue.push_back(d);
                }
            }
        }
        count == self.num_nodes
    }

    /// Returns a new topology with bidirectional link `l` removed (either
    /// direction id may be given). Link ids are recompacted, so previously
    /// held [`LinkId`]s are invalidated.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::WouldDisconnect`] if removal would
    /// disconnect the network.
    pub fn without_link(&self, l: LinkId) -> Result<Topology, TopologyError> {
        if !self.connected_without(l) {
            return Err(TopologyError::WouldDisconnect { link: l });
        }
        let skip = l.bidir_index();
        let edges: Vec<(u16, u16)> = (0..self.num_bidirectional_links())
            .filter(|&k| k != skip)
            .map(|k| {
                let ln = self.links[k * 2];
                (ln.src.0, ln.dst.0)
            })
            .collect();
        let mut t = Topology::from_edges(self.name.clone(), self.num_nodes, &edges)?;
        t.coords = self.coords.clone();
        t.mesh_dims = self.mesh_dims;
        Ok(t)
    }

    /// Bidirectional edge list `(a, b)` with `a < b`, one entry per
    /// bidirectional link, in link-id order.
    pub fn edge_list(&self) -> Vec<(u16, u16)> {
        (0..self.num_bidirectional_links())
            .map(|k| {
                let l = self.links[k * 2];
                (l.src.0.min(l.dst.0), l.src.0.max(l.dst.0))
            })
            .collect()
    }

    /// Overrides the topology name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Attaches mesh coordinates to a topology built from an edge list
    /// (coordinates enable DoR routing and coordinate-based traffic
    /// patterns).
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != num_nodes`.
    pub fn set_coords(&mut self, coords: Vec<(u16, u16)>) {
        assert_eq!(coords.len(), self.num_nodes);
        self.coords = Some(coords);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_ids_pair_up() {
        let t = Topology::mesh(3, 3);
        for l in t.link_ids() {
            let fwd = t.link(l);
            let bwd = t.link(l.reverse());
            assert_eq!(fwd.src, bwd.dst);
            assert_eq!(fwd.dst, bwd.src);
            assert_eq!(l.reverse().reverse(), l);
        }
    }

    #[test]
    fn mesh_counts() {
        let t = Topology::mesh(8, 8);
        assert_eq!(t.num_nodes(), 64);
        // 2 * w * h - w - h bidirectional links in a mesh.
        assert_eq!(t.num_bidirectional_links(), 2 * 64 - 8 - 8);
        assert!(t.is_connected());
        assert_eq!(t.max_degree(), 4);
    }

    #[test]
    fn mesh_coords_match_ids() {
        let t = Topology::mesh(4, 3);
        assert_eq!(t.coord(NodeId(0)), Some((0, 0)));
        assert_eq!(t.coord(NodeId(5)), Some((1, 1)));
        assert_eq!(t.coord(NodeId(11)), Some((3, 2)));
    }

    #[test]
    fn torus_has_wraparound() {
        let t = Topology::torus(4, 4);
        assert_eq!(t.num_bidirectional_links(), 32);
        assert!(t.link_between(NodeId(0), NodeId(3)).is_some());
        assert!(t.link_between(NodeId(0), NodeId(12)).is_some());
    }

    #[test]
    fn ring_degree_two() {
        let t = Topology::ring(6);
        for n in t.nodes() {
            assert_eq!(t.degree(n), 2);
        }
        assert!(t.is_connected());
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert_eq!(
            Topology::from_edges("t", 2, &[(0, 0)]),
            Err(TopologyError::SelfLoop { node: 0 })
        );
        assert_eq!(
            Topology::from_edges("t", 2, &[(0, 1), (1, 0)]),
            Err(TopologyError::DuplicateEdge { a: 1, b: 0 })
        );
        assert_eq!(
            Topology::from_edges("t", 2, &[(0, 2)]),
            Err(TopologyError::NodeOutOfRange {
                node: 2,
                num_nodes: 2
            })
        );
        assert_eq!(
            Topology::from_edges("t", 0, &[]),
            Err(TopologyError::Empty)
        );
    }

    #[test]
    fn disconnected_detected() {
        let t = Topology::from_edges("t", 4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn bridge_removal_rejected() {
        // Path 0-1-2: every link is a bridge.
        let t = Topology::from_edges("path", 3, &[(0, 1), (1, 2)]).unwrap();
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        assert!(matches!(
            t.without_link(l),
            Err(TopologyError::WouldDisconnect { .. })
        ));
    }

    #[test]
    fn non_bridge_removal_ok() {
        let t = Topology::mesh(3, 3);
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        let t2 = t.without_link(l).unwrap();
        assert!(t2.is_connected());
        assert_eq!(
            t2.num_bidirectional_links(),
            t.num_bidirectional_links() - 1
        );
        assert!(t2.link_between(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn adjacency_is_consistent() {
        let t = Topology::mesh(5, 4);
        for n in t.nodes() {
            for &l in t.out_links(n) {
                assert_eq!(t.link(l).src, n);
            }
            for &l in t.in_links(n) {
                assert_eq!(t.link(l).dst, n);
            }
        }
        let total_out: usize = t.nodes().map(|n| t.out_links(n).len()).sum();
        assert_eq!(total_out, t.num_unidirectional_links());
    }
}
