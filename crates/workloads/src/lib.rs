//! Application workload models (PARSEC, SPLASH-2, Ligra).
//!
//! **Substitution notice** (see DESIGN.md §3): the paper runs the real
//! benchmark binaries on gem5 cores. Those binaries and a full-system
//! timing CPU are out of scope here, so each application is modeled as a
//! statistical memory-reference stream (an [`AppModel`]) feeding the MESI
//! coherence engine: issue rate, write fraction, working-set size, sharing
//! fraction and burstiness. The parameters are synthesized to match each
//! app's qualitative character in the paper — e.g. `canneal` has the
//! highest injection rate of the PARSEC set (its Fig 3 row deadlocks
//! first), graph workloads (Ligra) are sharing-heavy and bursty.
//!
//! What this preserves: the *relative* network load and message-class mix
//! that determine deadlock likelihood and scheme-vs-scheme deltas. What it
//! does not preserve: absolute miss curves of the real binaries.
//!
//! # Examples
//!
//! ```
//! use drain_workloads::{parsec, AppModel};
//!
//! let apps = parsec();
//! assert!(apps.iter().any(|a| a.name == "canneal"));
//! let canneal = apps.iter().find(|a| a.name == "canneal").unwrap();
//! let most_intense = apps.iter().all(|a| a.issue_rate <= canneal.issue_rate);
//! assert!(most_intense);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use drain_coherence::{MemOp, MemoryTrace};
use drain_topology::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A statistical application model.
#[derive(Clone, Debug, PartialEq)]
pub struct AppModel {
    /// Application name (paper figure labels).
    pub name: &'static str,
    /// Suite the app belongs to.
    pub suite: Suite,
    /// Memory ops per cycle per core offered by the core model.
    pub issue_rate: f64,
    /// Fraction of ops that are stores.
    pub write_frac: f64,
    /// Shared working set in cache lines.
    pub shared_lines: u32,
    /// Fraction of accesses hitting the shared region (the rest are
    /// private and mostly L1 hits).
    pub sharing: f64,
    /// Mean burst length in ops (issue comes in bursts, graph-style).
    pub burst_len: f64,
}

/// Benchmark suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// PARSEC (16-core x86 in the paper).
    Parsec,
    /// SPLASH-2 (16-core x86 in the paper).
    Splash2,
    /// Ligra graph workloads (64-core RISC-V in the paper).
    Ligra,
}

/// The five PARSEC apps of Fig 3/13, calibrated so `canneal` is the most
/// network-intensive.
pub fn parsec() -> Vec<AppModel> {
    vec![
        AppModel {
            name: "blackscholes",
            suite: Suite::Parsec,
            issue_rate: 0.006,
            write_frac: 0.20,
            shared_lines: 256,
            sharing: 0.25,
            burst_len: 1.5,
        },
        AppModel {
            name: "bodytrack",
            suite: Suite::Parsec,
            issue_rate: 0.009,
            write_frac: 0.25,
            shared_lines: 512,
            sharing: 0.35,
            burst_len: 2.0,
        },
        AppModel {
            name: "canneal",
            suite: Suite::Parsec,
            issue_rate: 0.012,
            write_frac: 0.35,
            shared_lines: 2048,
            sharing: 0.70,
            burst_len: 3.0,
        },
        AppModel {
            name: "fluidanimate",
            suite: Suite::Parsec,
            issue_rate: 0.010,
            write_frac: 0.30,
            shared_lines: 1024,
            sharing: 0.40,
            burst_len: 2.0,
        },
        AppModel {
            name: "swaptions",
            suite: Suite::Parsec,
            issue_rate: 0.007,
            write_frac: 0.22,
            shared_lines: 256,
            sharing: 0.20,
            burst_len: 1.5,
        },
    ]
}

/// A SPLASH-2 subset (Fig 13's companion suite).
pub fn splash2() -> Vec<AppModel> {
    vec![
        AppModel {
            name: "fft",
            suite: Suite::Splash2,
            issue_rate: 0.0095,
            write_frac: 0.30,
            shared_lines: 1024,
            sharing: 0.50,
            burst_len: 2.5,
        },
        AppModel {
            name: "lu",
            suite: Suite::Splash2,
            issue_rate: 0.008,
            write_frac: 0.28,
            shared_lines: 768,
            sharing: 0.45,
            burst_len: 2.0,
        },
        AppModel {
            name: "radix",
            suite: Suite::Splash2,
            issue_rate: 0.011,
            write_frac: 0.40,
            shared_lines: 1024,
            sharing: 0.55,
            burst_len: 2.5,
        },
        AppModel {
            name: "barnes",
            suite: Suite::Splash2,
            issue_rate: 0.0075,
            write_frac: 0.25,
            shared_lines: 512,
            sharing: 0.40,
            burst_len: 2.0,
        },
    ]
}

/// Ligra graph workloads (Fig 12): sharing-heavy, bursty, 64 cores.
pub fn ligra() -> Vec<AppModel> {
    vec![
        AppModel {
            name: "bfs",
            suite: Suite::Ligra,
            issue_rate: 0.010,
            write_frac: 0.25,
            shared_lines: 4096,
            sharing: 0.80,
            burst_len: 4.0,
        },
        AppModel {
            name: "pagerank",
            suite: Suite::Ligra,
            issue_rate: 0.011,
            write_frac: 0.30,
            shared_lines: 4096,
            sharing: 0.85,
            burst_len: 3.0,
        },
        AppModel {
            name: "components",
            suite: Suite::Ligra,
            issue_rate: 0.009,
            write_frac: 0.28,
            shared_lines: 2048,
            sharing: 0.75,
            burst_len: 3.5,
        },
        AppModel {
            name: "radii",
            suite: Suite::Ligra,
            issue_rate: 0.008,
            write_frac: 0.24,
            shared_lines: 2048,
            sharing: 0.70,
            burst_len: 3.0,
        },
        AppModel {
            name: "bellman-ford",
            suite: Suite::Ligra,
            issue_rate: 0.010,
            write_frac: 0.32,
            shared_lines: 4096,
            sharing: 0.80,
            burst_len: 4.0,
        },
        AppModel {
            name: "triangle",
            suite: Suite::Ligra,
            issue_rate: 0.007,
            write_frac: 0.20,
            shared_lines: 2048,
            sharing: 0.65,
            burst_len: 2.5,
        },
    ]
}

/// All suites concatenated.
pub fn all_apps() -> Vec<AppModel> {
    let mut v = parsec();
    v.extend(splash2());
    v.extend(ligra());
    v
}

/// Looks up an app by name across all suites.
pub fn app_by_name(name: &str) -> Option<AppModel> {
    all_apps().into_iter().find(|a| a.name == name)
}

/// Per-core bursty memory-reference stream realizing an [`AppModel`].
#[derive(Clone, Debug)]
pub struct AppTrace {
    model: AppModel,
    rng: ChaCha8Rng,
    /// Remaining ops in the current burst, per core.
    burst_left: Vec<u32>,
    quota: Option<u64>,
}

impl AppTrace {
    /// Creates a trace for `num_cores` cores.
    pub fn new(model: AppModel, num_cores: usize, seed: u64) -> Self {
        AppTrace {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xAB1E),
            burst_left: vec![0; num_cores],
            model,
            quota: None,
        }
    }

    /// Stops each core after `ops` completed operations (runtime metric).
    pub fn with_quota(mut self, ops: u64) -> Self {
        self.quota = Some(ops);
        self
    }

    /// The model parameters.
    pub fn model(&self) -> &AppModel {
        &self.model
    }
}

impl MemoryTrace for AppTrace {
    fn next_op(&mut self, core: NodeId, _cycle: u64) -> Option<MemOp> {
        let idx = core.index() % self.burst_left.len();
        let slot = &mut self.burst_left[idx];
        if *slot == 0 {
            // Start a new burst with probability issue_rate / burst_len so
            // the long-run rate stays at issue_rate.
            let p_start = self.model.issue_rate / self.model.burst_len;
            if self.rng.gen::<f64>() >= p_start {
                return None;
            }
            // Geometric-ish burst length with the configured mean.
            let len = 1 + self.rng.gen_range(0..(2.0 * self.model.burst_len) as u32 + 1);
            *slot = len;
        }
        *slot -= 1;
        let shared = self.rng.gen::<f64>() < self.model.sharing;
        let addr = if shared {
            self.rng.gen_range(0..self.model.shared_lines)
        } else {
            self.model.shared_lines + (core.0 as u32) * 8192 + self.rng.gen_range(0..128)
        };
        Some(MemOp {
            addr,
            is_write: self.rng.gen::<f64>() < self.model.write_frac,
        })
    }

    fn name(&self) -> &str {
        self.model.name
    }

    fn quota(&self) -> Option<u64> {
        self.quota
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canneal_is_most_intense_parsec() {
        let apps = parsec();
        let canneal = app_by_name("canneal").unwrap();
        for a in &apps {
            assert!(a.issue_rate <= canneal.issue_rate, "{}", a.name);
        }
    }

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(parsec().len(), 5);
        assert_eq!(splash2().len(), 4);
        assert_eq!(ligra().len(), 6);
        assert_eq!(all_apps().len(), 15);
    }

    #[test]
    fn unknown_app_is_none() {
        assert!(app_by_name("doom").is_none());
    }

    #[test]
    fn trace_long_run_rate_close_to_model() {
        let model = app_by_name("canneal").unwrap();
        let mut t = AppTrace::new(model.clone(), 1, 7);
        let n = 2_000_000u64;
        let issued = (0..n).filter(|&c| t.next_op(NodeId(0), c).is_some()).count() as f64;
        let rate = issued / n as f64;
        assert!(
            (rate - model.issue_rate).abs() < model.issue_rate * 0.5,
            "long-run rate {rate} vs model {}",
            model.issue_rate
        );
    }

    #[test]
    fn trace_is_bursty() {
        let model = app_by_name("bfs").unwrap();
        let mut t = AppTrace::new(model, 1, 9);
        // Count back-to-back issue pairs; a Bernoulli stream at the same
        // rate would have far fewer.
        let mut prev = false;
        let mut pairs = 0;
        let mut issues = 0;
        for c in 0..1_000_000u64 {
            let now = t.next_op(NodeId(0), c).is_some();
            if now {
                issues += 1;
                if prev {
                    pairs += 1;
                }
            }
            prev = now;
        }
        let pair_rate = pairs as f64 / issues as f64;
        assert!(
            pair_rate > 0.2,
            "bursty stream should have many adjacent issues (got {pair_rate})"
        );
    }

    #[test]
    fn ligra_apps_share_heavily() {
        for a in ligra() {
            assert!(a.sharing >= 0.6, "{} sharing {}", a.name, a.sharing);
        }
    }
}
