//! Observability overhead: simulator cycles/second with tracing disabled
//! (the default; must stay within ~2% of the pre-observability kernel),
//! with event capture into the null-sink ring buffer, with telemetry
//! sampling, and with the kernel phase profiler at its default and a
//! dense cadence — all on the same 8×8 DRAIN point as `sim_kernel`.
//!
//! The `disabled` variant doubles as the metrics-subsystem regression
//! gate: the registry is pull-based and the profiler costs one branch
//! per phase mark when off, so `disabled` must match the pre-metrics
//! kernel within noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drain_bench::scheme::DrainVariant;
use drain_bench::Scheme;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::TraceConfig;
use drain_topology::Topology;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    let scheme = Scheme::Drain(DrainVariant::Vn1Vc2);
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    const CYCLES: u64 = 5_000;
    g.throughput(Throughput::Elements(CYCLES));

    // (name, trace config, profiler period; 0 = profiler off)
    let variants: [(&str, TraceConfig, u64); 5] = [
        ("disabled", TraceConfig::default(), 0),
        ("ring-null", TraceConfig::events_on(), 0),
        ("telemetry-256", TraceConfig::default().with_telemetry(256), 0),
        ("profiler-64", TraceConfig::default(), 64),
        ("profiler-1", TraceConfig::default(), 1),
    ];
    for (name, cfg, profile_period) in variants {
        let input = (cfg, profile_period);
        g.bench_with_input(BenchmarkId::new("cycles", name), &input, |b, (cfg, period)| {
            b.iter(|| {
                let mut sim = scheme.synthetic_sim_traced(
                    &topo,
                    true,
                    SyntheticPattern::UniformRandom,
                    0.08,
                    1,
                    Scheme::DEFAULT_EPOCH,
                    1,
                    cfg.clone(),
                );
                sim.set_profile_period(*period);
                sim.run(CYCLES);
                sim.stats().ejected
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
