//! Observability overhead: simulator cycles/second with tracing disabled
//! (the default; must stay within ~2% of the pre-observability kernel),
//! with event capture into the null-sink ring buffer, and with telemetry
//! sampling — all on the same 8×8 DRAIN point as `sim_kernel`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drain_bench::scheme::DrainVariant;
use drain_bench::Scheme;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::TraceConfig;
use drain_topology::Topology;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    let scheme = Scheme::Drain(DrainVariant::Vn1Vc2);
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    const CYCLES: u64 = 5_000;
    g.throughput(Throughput::Elements(CYCLES));

    let variants: [(&str, TraceConfig); 3] = [
        ("disabled", TraceConfig::default()),
        ("ring-null", TraceConfig::events_on()),
        ("telemetry-256", TraceConfig::default().with_telemetry(256)),
    ];
    for (name, cfg) in variants {
        g.bench_with_input(BenchmarkId::new("cycles", name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sim = scheme.synthetic_sim_traced(
                    &topo,
                    true,
                    SyntheticPattern::UniformRandom,
                    0.08,
                    1,
                    Scheme::DEFAULT_EPOCH,
                    1,
                    cfg.clone(),
                );
                sim.run(CYCLES);
                sim.stats().ejected
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
