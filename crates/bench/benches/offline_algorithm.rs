//! Ablation (DESIGN.md §5.1): cost of the two offline drain-path
//! constructions — Hierholzer (linear) vs the Hawick–James-style search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drain_path::{Algorithm, DrainPath};
use drain_topology::{faults::FaultInjector, Topology};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline_algorithm");
    g.sample_size(20);
    for (w, h, faults) in [(4u16, 4u16, 0usize), (8, 8, 0), (8, 8, 12), (16, 16, 0)] {
        let topo = if faults == 0 {
            Topology::mesh(w, h)
        } else {
            FaultInjector::new(1)
                .remove_links(&Topology::mesh(w, h), faults)
                .unwrap()
        };
        let label = format!("{w}x{h}-f{faults}");
        for algo in [Algorithm::Hierholzer, Algorithm::HawickJames] {
            g.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), &label),
                &topo,
                |b, topo| {
                    b.iter(|| DrainPath::compute_with(topo, algo).unwrap());
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
