//! Fig 9 kernel: area/power model for the three router configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use drain_power::{network_model, MechanismKind};
use drain_topology::Topology;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    c.bench_function("fig09/normalized-ratios", |b| {
        b.iter(|| {
            let esc = network_model(&topo, 3, 2, MechanismKind::EscapeVc, 0, 1, 1.0);
            let spin = network_model(&topo, 3, 1, MechanismKind::Spin, 0, 1, 1.0);
            let drain = network_model(&topo, 1, 1, MechanismKind::Drain, 0, 1, 1.0);
            (
                spin.router_area_um2 / esc.router_area_um2,
                drain.router_static_mw / esc.router_static_mw,
            )
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
