//! Fig 5 kernel: one up*/down* and one ideal operating point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drain_baselines::{baseline_sim, Baseline};
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_topology::{faults::FaultInjector, Topology};

fn bench(c: &mut Criterion) {
    let topo = FaultInjector::new(4)
        .remove_links(&Topology::mesh(8, 8), 8)
        .unwrap();
    let mut g = c.benchmark_group("fig05");
    g.sample_size(10);
    for baseline in [Baseline::UpDown, Baseline::Ideal] {
        g.bench_with_input(
            BenchmarkId::new("point", baseline.name()),
            &baseline,
            |b, &bl| {
                b.iter(|| {
                    let mut sim = baseline_sim(
                        &topo,
                        bl,
                        false,
                        Box::new(SyntheticTraffic::new(
                            SyntheticPattern::UniformRandom,
                            0.05,
                            1,
                            2,
                        )),
                        2,
                    );
                    sim.warmup_and_measure(1_000, 2_000);
                    sim.stats().net_latency.mean()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
