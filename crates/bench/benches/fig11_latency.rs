//! Fig 11 kernel: one low-load latency point per scheme on a faulty mesh.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drain_bench::sweep::measure_point;
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_topology::{faults::FaultInjector, Topology};

fn bench(c: &mut Criterion) {
    let topo = FaultInjector::new(2)
        .remove_links(&Topology::mesh(8, 8), 8)
        .unwrap();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for scheme in Scheme::headline() {
        g.bench_with_input(
            BenchmarkId::new("lowload-point", scheme.label()),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    measure_point(
                        s,
                        &topo,
                        false,
                        &SyntheticPattern::UniformRandom,
                        0.02,
                        1,
                        Scheme::DEFAULT_EPOCH,
                        Scale::Quick,
                    )
                    .latency
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
