//! Fig 14 kernel: DRAIN epoch-sensitivity endpoints (16 vs 64K cycles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drain_core::builder::DrainNetworkBuilder;
use drain_netsim::traffic::SyntheticPattern;
use drain_topology::Topology;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    for epoch in [16u64, 65_536] {
        g.bench_with_input(BenchmarkId::new("epoch", epoch), &epoch, |b, &e| {
            b.iter(|| {
                let mut sim = DrainNetworkBuilder::new(topo.clone())
                    .epoch(e)
                    .pattern(SyntheticPattern::UniformRandom)
                    .injection_rate(0.02)
                    .seed(7)
                    .build()
                    .unwrap();
                sim.warmup_and_measure(1_000, 2_000);
                sim.stats().net_latency.mean()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
