//! Fig 15 kernel: p99 latency of one application run per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drain_bench::scheme::DrainVariant;
use drain_bench::Scheme;
use drain_topology::Topology;
use drain_workloads::app_by_name;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(4, 4);
    let app = app_by_name("fluidanimate").unwrap();
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    for scheme in [Scheme::EscapeVc, Scheme::Drain(DrainVariant::Vn1Vc2)] {
        g.bench_with_input(
            BenchmarkId::new("p99", scheme.label()),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    let mut sim =
                        s.coherence_sim(&topo, true, &app, None, 3, Scheme::DEFAULT_EPOCH);
                    sim.run(10_000);
                    sim.stats().net_latency.p99()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
