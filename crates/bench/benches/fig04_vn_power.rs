//! Fig 4 kernel: escape-VC run + active/wasted power attribution.

use criterion::{criterion_group, criterion_main, Criterion};
use drain_baselines::{baseline_sim, Baseline};
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_power::{network_model, MechanismKind};
use drain_topology::Topology;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(4, 4);
    let mut g = c.benchmark_group("fig04");
    g.sample_size(10);
    g.bench_function("vn-power-split", |b| {
        b.iter(|| {
            let mut sim = baseline_sim(
                &topo,
                Baseline::EscapeVc,
                true,
                Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.03, 1, 1)),
                1,
            );
            sim.run(2_000);
            let p = network_model(
                &topo,
                3,
                2,
                MechanismKind::EscapeVc,
                sim.stats().flit_hops,
                sim.core().cycle(),
                1.0,
            );
            (p.active_mw, p.wasted_mw)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
