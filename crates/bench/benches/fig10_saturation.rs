//! Fig 10 kernel: one near-saturation operating point per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drain_bench::sweep::measure_point;
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_topology::Topology;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for scheme in Scheme::headline() {
        g.bench_with_input(
            BenchmarkId::new("saturation-point", scheme.label()),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    measure_point(
                        s,
                        &topo,
                        true,
                        &SyntheticPattern::UniformRandom,
                        0.16,
                        1,
                        Scheme::DEFAULT_EPOCH,
                        Scale::Quick,
                    )
                    .throughput
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
