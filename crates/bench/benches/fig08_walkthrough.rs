//! Fig 8 kernel: scripted double deadlock resolved by one drain window.

use criterion::{criterion_group, criterion_main, Criterion};
use drain_core::{DrainConfig, DrainMechanism};
use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_netsim::{MessageClass, Sim, SimConfig, VcRef};
use drain_path::DrainPath;
use drain_topology::{chiplet::fig8_topology, NodeId};

fn bench(c: &mut Criterion) {
    let topo = fig8_topology();
    let mut g = c.benchmark_group("fig08");
    g.sample_size(30);
    g.bench_function("deadlock+drain+deliver", |b| {
        b.iter(|| {
            let path = DrainPath::compute(&topo).unwrap();
            let mech = DrainMechanism::new(
                path,
                DrainConfig {
                    epoch: 50,
                    full_drain_period: 0,
                    ..DrainConfig::default()
                },
            );
            let mut sim = Sim::new(
                topo.clone(),
                SimConfig {
                    vns: 1,
                    vcs_per_vn: 1,
                    num_classes: 1,
                    escape_sticky: true,
                    watchdog_threshold: 0,
                    ..SimConfig::default()
                },
                Box::new(FullyAdaptive::with_deflection(&topo, None)),
                Box::new(mech),
                Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 0)),
            );
            for &((src, at), dest) in &[
                ((1u16, 0u16), 6u16),
                ((0, 3), 5),
                ((3, 4), 2),
                ((4, 1), 0),
                ((7, 4), 5),
                ((4, 5), 8),
                ((5, 8), 7),
                ((8, 7), 4),
            ] {
                let link = topo.link_between(NodeId(src), NodeId(at)).unwrap();
                sim.core_mut().place_packet(
                    VcRef { link, vn: 0, vc: 0 },
                    NodeId(src),
                    NodeId(dest),
                    MessageClass::REQUEST,
                    1,
                );
            }
            sim.run(2_000);
            assert_eq!(sim.stats().ejected, 8);
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
