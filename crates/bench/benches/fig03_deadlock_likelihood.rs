//! Fig 3 kernel: one deadlock-likelihood probe (canneal model, faulty
//! mesh, unprotected adaptive routing) at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use drain_coherence::{CoherenceConfig, CoherenceEngine};
use drain_netsim::mechanism::NoMechanism;
use drain_netsim::routing::FullyAdaptive;
use drain_netsim::{Sim, SimConfig};
use drain_topology::{faults::FaultInjector, Topology};
use drain_workloads::{app_by_name, AppTrace};

fn bench(c: &mut Criterion) {
    let topo = FaultInjector::new(7)
        .remove_links(&Topology::mesh(8, 8), 8)
        .unwrap();
    let app = app_by_name("canneal").unwrap();
    let mut g = c.benchmark_group("fig03");
    g.sample_size(10);
    g.bench_function("canneal-8faults-probe", |b| {
        b.iter(|| {
            let engine = CoherenceEngine::new(
                &topo,
                CoherenceConfig::default(),
                Box::new(AppTrace::new(app.clone(), topo.num_nodes(), 3)),
            );
            let mut sim = Sim::new(
                topo.clone(),
                SimConfig {
                    vns: 3,
                    vcs_per_vn: 1,
                    inj_queue_capacity: topo.num_nodes() + 8,
                    deadlock_check_interval: 512,
                    watchdog_threshold: 5_000,
                    ..SimConfig::default()
                },
                Box::new(FullyAdaptive::new(&topo)),
                Box::new(NoMechanism),
                Box::new(engine),
            )
            .stop_on_deadlock(true);
            sim.run(8_000);
            sim.stats().deadlocked()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
