//! Fig 6 kernel: drain-path construction + verification + turn-tables on
//! the figure's topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drain_path::DrainPath;
use drain_topology::{faults::FaultInjector, Topology};

fn bench(c: &mut Criterion) {
    let regular = Topology::mesh(4, 4);
    let irregular = FaultInjector::new(0xF166)
        .remove_links(&Topology::mesh(4, 4), 3)
        .unwrap();
    let mut g = c.benchmark_group("fig06");
    for (name, topo) in [("regular", &regular), ("irregular", &irregular)] {
        g.bench_with_input(BenchmarkId::new("path+verify", name), topo, |b, t| {
            b.iter(|| {
                let p = DrainPath::compute(t).unwrap();
                p.verify(t).unwrap();
                p.turn_table().is_permutation()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
