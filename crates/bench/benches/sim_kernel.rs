//! Raw simulator speed of the per-cycle kernel (an engineering metric,
//! not a paper figure).
//!
//! Two presets bracket the sweep grids every paper figure is built from:
//!
//! * `low` — 0.5% uniform-random injection, the bottom of the Fig 10/11
//!   rate grids, where almost every VC buffer is empty and the
//!   occupancy-driven kernel (active-VC index) earns its keep;
//! * `saturated` — 40% injection, far past saturation, where nearly every
//!   buffer is occupied and the kernel must not regress against a plain
//!   dense sweep.
//!
//! Simulation construction (drain-path/routing-table precompute) happens
//! in the batch setup and is *not* measured — samples time `Sim::run`
//! only. `scripts/bench_kernel.sh` turns the criterion estimates into
//! `BENCH_kernel.json`; keep the preset names, rates, and cycle counts in
//! sync with that script.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use drain_bench::scheme::DrainVariant;
use drain_bench::Scheme;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::RngMode;
use drain_topology::faults::FaultInjector;
use drain_topology::Topology;

/// Directory-safe scheme ids (criterion mangles `label()`'s punctuation).
fn scheme_id(s: Scheme) -> &'static str {
    match s {
        Scheme::EscapeVc => "escapevc",
        Scheme::Spin => "spin",
        _ => "drain",
    }
}

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    let mut g = c.benchmark_group("sim_kernel");
    g.sample_size(10);
    // `saturated_keyed` is the tentpole comparison: same point as
    // `saturated` under the keyed counter-based RNG (`RngMode::Keyed`),
    // where parked heads draw nothing and the draw stream needs no
    // serial bookkeeping.
    for (preset, rate, cycles, mode) in [
        ("low", 0.005, 20_000u64, RngMode::Stream),
        ("saturated", 0.40, 5_000, RngMode::Stream),
        ("saturated_keyed", 0.40, 5_000, RngMode::Keyed),
    ] {
        g.throughput(Throughput::Elements(cycles));
        for scheme in Scheme::headline() {
            g.bench_with_input(
                BenchmarkId::new(preset, scheme_id(scheme)),
                &scheme,
                |b, &s| {
                    b.iter_batched(
                        || {
                            let mut sim = s.synthetic_sim(
                                &topo,
                                true,
                                SyntheticPattern::UniformRandom,
                                rate,
                                1,
                                Scheme::DEFAULT_EPOCH,
                            );
                            sim.set_rng_mode(mode);
                            sim
                        },
                        |mut sim| {
                            sim.run(cycles);
                            sim.stats().ejected
                        },
                        BatchSize::PerIteration,
                    );
                },
            );
        }
    }
    g.finish();
}

/// Serial (K=1) saturated mesh(16,16) preset over the three headline
/// schemes — the same topology/rate/cycle-count as the sharded group
/// below, so its per-K numbers have a same-preset serial comparison
/// that is not drain-only. `scripts/bench_kernel.sh --shards` records
/// these medians next to the shard medians in BENCH_kernel.json.
fn bench_mesh16_serial(c: &mut Criterion) {
    let topo = Topology::mesh(16, 16);
    let cycles = 1_500u64;
    let mut g = c.benchmark_group("sim_kernel_mesh16");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cycles));
    for scheme in Scheme::headline() {
        g.bench_with_input(
            BenchmarkId::new("saturated", scheme_id(scheme)),
            &scheme,
            |b, &s| {
                b.iter_batched(
                    || {
                        s.synthetic_sim(
                            &topo,
                            true,
                            SyntheticPattern::UniformRandom,
                            0.40,
                            1,
                            Scheme::DEFAULT_EPOCH,
                        )
                    },
                    |mut sim| {
                        sim.run(cycles);
                        sim.stats().ejected
                    },
                    BatchSize::PerIteration,
                );
            },
        );
    }
    g.finish();
}

/// Congested irregular network — the regime the wake-driven Phase A
/// scheduler targets: a faulty mesh(12,12) (24 random links removed)
/// past its (much lower) saturation point, where blocked episodes span
/// many cycles and parked heads skip real routing work. On the healthy
/// mesh(8,8) `saturated` preset above blocked episodes last 1–2 cycles
/// and the scheduler only breaks even; this preset is where it pays.
fn bench_irregular(c: &mut Criterion) {
    let topo = FaultInjector::new(9)
        .remove_links(&Topology::mesh(12, 12), 24)
        .expect("mesh(12,12) tolerates 24 removals");
    let cycles = 2_000u64;
    let mut g = c.benchmark_group("sim_kernel_irregular");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cycles));
    // `congested_keyed`: the same congested point under the keyed RNG —
    // the regime where parked heads skipping their draws compounds with
    // skipping their routing work.
    for (preset, mode) in [
        ("congested", RngMode::Stream),
        ("congested_keyed", RngMode::Keyed),
    ] {
        for scheme in Scheme::headline() {
            g.bench_with_input(
                BenchmarkId::new(preset, scheme_id(scheme)),
                &scheme,
                |b, &s| {
                    b.iter_batched(
                        || {
                            let mut sim = s.synthetic_sim(
                                &topo,
                                false,
                                SyntheticPattern::UniformRandom,
                                0.25,
                                11,
                                512,
                            );
                            sim.set_rng_mode(mode);
                            sim
                        },
                        |mut sim| {
                            sim.run(cycles);
                            sim.stats().ejected
                        },
                        BatchSize::PerIteration,
                    );
                },
            );
        }
    }
    g.finish();
}

/// Shard-count scaling of the allocation kernel: one saturated DRAIN
/// point on mesh(16,16) per shard count K ∈ {1, 2, 4, 8}, the sharded
/// path forced on from cycle 0. `scripts/bench_kernel.sh --shards`
/// records these medians into BENCH_kernel.json; keep the cycle count
/// and benchmark ids in sync with that script.
fn bench_shards(c: &mut Criterion) {
    let topo = Topology::mesh(16, 16);
    let cycles = 1_500u64;
    let mut g = c.benchmark_group("sim_kernel_shards");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cycles));
    for k in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("mesh16", format!("k{k}")), &k, |b, &k| {
            b.iter_batched(
                || {
                    let mut sim = Scheme::Drain(DrainVariant::Vn1Vc2).synthetic_sim(
                        &topo,
                        true,
                        SyntheticPattern::UniformRandom,
                        0.40,
                        1,
                        Scheme::DEFAULT_EPOCH,
                    );
                    sim.set_shards(k);
                    sim
                },
                |mut sim| {
                    sim.run(cycles);
                    sim.stats().ejected
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench,
    bench_mesh16_serial,
    bench_irregular,
    bench_shards
);
criterion_main!(benches);
