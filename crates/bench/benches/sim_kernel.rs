//! Raw simulator speed: cycles/second for each mechanism at moderate load
//! (an engineering metric, not a paper figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drain_bench::Scheme;
use drain_netsim::traffic::SyntheticPattern;
use drain_topology::Topology;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    let mut g = c.benchmark_group("sim_kernel");
    g.sample_size(10);
    const CYCLES: u64 = 5_000;
    g.throughput(Throughput::Elements(CYCLES));
    for scheme in Scheme::headline() {
        g.bench_with_input(
            BenchmarkId::new("cycles", scheme.label()),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    let mut sim = s.synthetic_sim(
                        &topo,
                        true,
                        SyntheticPattern::UniformRandom,
                        0.08,
                        1,
                        Scheme::DEFAULT_EPOCH,
                    );
                    sim.run(CYCLES);
                    sim.stats().ejected
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
