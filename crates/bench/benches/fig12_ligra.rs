//! Fig 12 kernel: one short Ligra (bfs) closed-loop run per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drain_bench::scheme::DrainVariant;
use drain_bench::Scheme;
use drain_topology::Topology;
use drain_workloads::app_by_name;

fn bench(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    let app = app_by_name("bfs").unwrap();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for scheme in [Scheme::EscapeVc, Scheme::Drain(DrainVariant::Vn1Vc2)] {
        g.bench_with_input(
            BenchmarkId::new("bfs-8x8", scheme.label()),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    let mut sim =
                        s.coherence_sim(&topo, true, &app, Some(30), 2, Scheme::DEFAULT_EPOCH);
                    sim.run(20_000);
                    sim.stats().ejected
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
