//! A tiny blocking HTTP listener for Prometheus-style metric scrapes —
//! the seed of the sim-as-a-service wire layer.
//!
//! [`MetricsServer`] binds a TCP socket, spawns one background thread,
//! and answers every request with the current snapshot body (text
//! format 0.0.4). The simulation thread updates the body with
//! [`MetricsServer::set_body`] whenever it takes a fresh
//! [`drain_netsim::MetricsSnapshot`]; scrapes never touch simulator
//! state, so serving cannot perturb results.
//!
//! Deliberately minimal — std-only, one request per connection, no
//! keep-alive, no routing (every path returns the same body). That is
//! all a Prometheus scraper or `curl` needs.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared state between the serving thread and the owner.
struct Shared {
    body: Mutex<String>,
    stop: AtomicBool,
}

/// A blocking metrics endpoint serving the latest snapshot over HTTP.
///
/// Dropping the server stops the background thread (it unblocks the
/// accept loop by connecting to itself).
pub struct MetricsServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `bind` (e.g. `127.0.0.1:9184`; port 0 picks a free port)
    /// and starts serving an empty body. Fails if the address cannot be
    /// bound — callers should degrade gracefully (metrics files still
    /// get written without the listener).
    pub fn serve(bind: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            body: Mutex::new(String::new()),
            stop: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("drain-metrics-http".into())
            .spawn(move || serve_loop(listener, &thread_shared))?;
        Ok(MetricsServer {
            shared,
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the body served to subsequent scrapes.
    pub fn set_body(&self, body: String) {
        *self.shared.body.lock().expect("metrics body lock poisoned") = body;
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_loop(listener: TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        // Drain the request line + headers (best-effort; we answer any
        // request the same way, so parsing failures are harmless).
        let mut buf = [0u8; 2048];
        let _ = stream.read(&mut buf);
        let body = shared
            .body
            .lock()
            .expect("metrics body lock poisoned")
            .clone();
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("send request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn serves_current_body_and_shuts_down() {
        // Loopback sockets may be denied in sandboxed environments; skip
        // rather than fail — the server is optional everywhere it is used.
        let server = match MetricsServer::serve("127.0.0.1:0") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping metrics server test (bind failed: {e})");
                return;
            }
        };
        let addr = server.local_addr();

        let first = scrape(addr);
        assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
        assert!(first.contains("text/plain; version=0.0.4"), "{first}");

        server.set_body("drain_cycle 42\n".into());
        let second = scrape(addr);
        assert!(second.ends_with("drain_cycle 42\n"), "{second}");

        drop(server);
        // After drop the port must be released or refuse connections —
        // either way a fresh scrape cannot return our body.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(!out.contains("drain_cycle 42"), "{out}");
        }
    }
}
