//! Fig 9: router area and static power, normalized to the escape-VC
//! baseline.
//!
//! Configurations per the paper §V-A: escape VC = 3 VNets × 2 VCs, SPIN =
//! 3 VNets × 1 VC plus ~15% control overhead, DRAIN = 1 VNet × 1 VC plus
//! its tiny epoch/turn-table control. Paper results: DRAIN saves ~72%
//! area and ~77% router power.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::table::{banner, f3, pct, print_table};
use drain_bench::Scale;
use drain_power::{network_model, MechanismKind};
use drain_topology::Topology;

fn main() {
    let scale = Scale::from_env();
    banner("Fig 9", "router area & power normalized to escape VC", scale);
    let engine = SweepEngine::new("fig09", scale);
    let topo = Topology::mesh(8, 8);
    let esc = network_model(&topo, 3, 2, MechanismKind::EscapeVc, 0, 1, 1.0);
    let spin = network_model(&topo, 3, 1, MechanismKind::Spin, 0, 1, 1.0);
    let drain = network_model(&topo, 1, 1, MechanismKind::Drain, 0, 1, 1.0);
    let mut rows = Vec::new();
    for (name, m) in [("EscapeVC", &esc), ("SPIN", &spin), ("DRAIN", &drain)] {
        rows.push(vec![
            name.to_string(),
            f3(m.router_area_um2 / esc.router_area_um2),
            f3(m.router_static_mw / esc.router_static_mw),
        ]);
    }
    print_table(
        "Fig 9 — normalized router area and static power",
        &["scheme", "area (norm)", "static power (norm)"],
        &rows,
    );
    write_csv("fig09", &["scheme", "area_norm", "static_power_norm"], &rows);
    println!(
        "\nDRAIN saves {} area and {} router power vs escape VC (paper: ~72% and ~77%).",
        pct(1.0 - drain.router_area_um2 / esc.router_area_um2),
        pct(1.0 - drain.router_static_mw / esc.router_static_mw),
    );
    println!("SPIN control overhead vs a basic (1VNx1VC, DoR) router: {} (paper: ~15%).", {
        let with = network_model(&topo, 3, 1, MechanismKind::Spin, 0, 1, 1.0);
        let without = network_model(&topo, 3, 1, MechanismKind::None, 0, 1, 1.0);
        let basic = network_model(&topo, 1, 1, MechanismKind::None, 0, 1, 1.0);
        pct((with.router_area_um2 - without.router_area_um2) / basic.router_area_um2)
    });
    engine.finish();
}
