//! Fig 6: drain paths computed by the offline algorithm for an irregular
//! and a regular topology, rendered as link sequences and per-router
//! turn-tables.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::table::banner;
use drain_bench::Scale;
use drain_path::DrainPath;
use drain_topology::{faults::FaultInjector, Topology};

fn describe(topo: &Topology, title: &str) -> Vec<String> {
    let path = DrainPath::compute(topo).expect("connected topology");
    println!("\n## {title}");
    println!(
        "nodes: {}, bidirectional links: {}, drain path length: {} (covers every unidirectional link exactly once)",
        topo.num_nodes(),
        topo.num_bidirectional_links(),
        path.len()
    );
    let hops: Vec<String> = path
        .circuit()
        .iter()
        .map(|&l| {
            let e = topo.link(l);
            format!("{}->{}", e.src, e.dst)
        })
        .collect();
    println!("path: {}", hops.join(" "));
    path.verify(topo).expect("verified covering cycle");
    println!("verified: elementary cycle in the dependency graph covering all links ✓");
    vec![
        title.to_string(),
        topo.num_nodes().to_string(),
        topo.num_bidirectional_links().to_string(),
        path.len().to_string(),
    ]
}

fn main() {
    let scale = Scale::from_env();
    banner("Fig 6", "drain path examples (offline algorithm output)", scale);
    let engine = SweepEngine::new("fig06", scale);
    let mut rows = Vec::new();
    // Irregular: 4x4 mesh with 3 faulty links (like the paper's left
    // panel).
    let irregular = FaultInjector::new(0xF166)
        .remove_links(&Topology::mesh(4, 4), 3)
        .unwrap();
    rows.push(describe(&irregular, "Irregular topology (4x4 mesh, 3 faulty links)"));
    // Regular: full 4x4 mesh (the paper's right panel).
    rows.push(describe(&Topology::mesh(4, 4), "Regular topology (4x4 mesh)"));
    write_csv(
        "fig06",
        &["topology", "nodes", "bidirectional_links", "drain_path_length"],
        &rows,
    );
    engine.finish();
}
