//! Fig 6: drain paths computed by the offline algorithm for an irregular
//! and a regular topology, rendered as link sequences and per-router
//! turn-tables.

use drain_bench::table::banner;
use drain_bench::Scale;
use drain_path::DrainPath;
use drain_topology::{faults::FaultInjector, Topology};

fn describe(topo: &Topology, title: &str) {
    let path = DrainPath::compute(topo).expect("connected topology");
    println!("\n## {title}");
    println!(
        "nodes: {}, bidirectional links: {}, drain path length: {} (covers every unidirectional link exactly once)",
        topo.num_nodes(),
        topo.num_bidirectional_links(),
        path.len()
    );
    let hops: Vec<String> = path
        .circuit()
        .iter()
        .map(|&l| {
            let e = topo.link(l);
            format!("{}->{}", e.src, e.dst)
        })
        .collect();
    println!("path: {}", hops.join(" "));
    path.verify(topo).expect("verified covering cycle");
    println!("verified: elementary cycle in the dependency graph covering all links ✓");
}

fn main() {
    let scale = Scale::from_env();
    banner("Fig 6", "drain path examples (offline algorithm output)", scale);
    // Irregular: 4x4 mesh with 3 faulty links (like the paper's left
    // panel).
    let irregular = FaultInjector::new(0xF16_6)
        .remove_links(&Topology::mesh(4, 4), 3)
        .unwrap();
    describe(&irregular, "Irregular topology (4x4 mesh, 3 faulty links)");
    // Regular: full 4x4 mesh (the paper's right panel).
    describe(&Topology::mesh(4, 4), "Regular topology (4x4 mesh)");
}
