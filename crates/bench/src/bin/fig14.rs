//! Fig 14: DRAIN epoch sensitivity — low-load latency and saturation
//! throughput for epochs from 16 to 64K cycles (uniform random, 8×8
//! mesh), plus the paper's footnote-3 ablation: hops per drain window.
//!
//! Paper shape: a 16-cycle epoch thrashes the network with continuous
//! misrouting; latency falls and throughput rises monotonically with the
//! epoch; draining more than one hop per window never helps.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::scheme::DrainVariant;
use drain_bench::sweep::plan::{load_sweep_specs, PointSpec, TopoSpec};
use drain_bench::sweep::{low_load_latency, saturation_throughput};
use drain_bench::table::{banner, f1, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;

fn main() {
    let scale = Scale::from_env();
    banner("Fig 14", "epoch sensitivity (uniform random, 8x8)", scale);
    let mut engine = SweepEngine::new("fig14", scale);
    let drain = Scheme::Drain(DrainVariant::Vn1Vc2);
    let topo = TopoSpec::Mesh { w: 8, h: 8 };
    let epochs: &[u64] = &[16, 64, 256, 1_024, 4_096, 16_384, 65_536];

    // One full load sweep per epoch; the lowest swept rate (2%) doubles
    // as the low-load latency measurement.
    let specs: Vec<PointSpec> = epochs
        .iter()
        .flat_map(|&epoch| {
            load_sweep_specs(
                drain,
                &topo,
                &SyntheticPattern::UniformRandom,
                7,
                epoch,
                scale,
            )
        })
        .collect();
    let points = engine.run_points(&specs);

    let mut sweeps = points.chunks(scale.rate_sweep().len());
    let mut rows = Vec::new();
    for &epoch in epochs {
        let pts = sweeps.next().expect("grid order");
        rows.push(vec![
            epoch.to_string(),
            f1(low_load_latency(pts)),
            f3(saturation_throughput(pts)),
        ]);
    }
    print_table(
        "Fig 14 — latency/throughput vs epoch",
        &["epoch (cycles)", "low-load latency", "saturation throughput"],
        &rows,
    );
    write_csv(
        "fig14",
        &["epoch_cycles", "low_load_latency", "saturation_throughput"],
        &rows,
    );

    // Ablation: hops per drain window (paper footnote 3: >1 always
    // worse). Needs the forced-hops counter, which a cached Point does
    // not carry, so these run as plain jobs.
    let built = topo.build();
    let hop_settings = [1u32, 2, 4];
    let results = engine.run_jobs(
        &hop_settings,
        |&hops| {
            let mut sim = drain.synthetic_sim_hops(
                &built,
                true,
                SyntheticPattern::UniformRandom,
                0.02,
                9,
                1_024,
                hops,
            );
            sim.warmup_and_measure(scale.warmup(), scale.measure());
            (sim.stats().net_latency.mean(), sim.stats().forced_hops)
        },
        |_, _| scale.warmup() + scale.measure(),
    );
    let mut rows = Vec::new();
    for (&hops, &(lat, forced)) in hop_settings.iter().zip(&results) {
        rows.push(vec![hops.to_string(), f1(lat), forced.to_string()]);
    }
    print_table(
        "Fig 14 ablation — hops per drain window (epoch 1024, 2% load)",
        &["hops/drain", "low-load latency", "forced hops"],
        &rows,
    );
    write_csv(
        "fig14_ablation",
        &["hops_per_drain", "low_load_latency", "forced_hops"],
        &rows,
    );
    println!("\nPaper shape: frequent draining (16-cycle epoch) hurts both metrics; draining is best done rarely; one hop per window wins.");
    engine.finish();
}
