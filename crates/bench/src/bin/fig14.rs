//! Fig 14: DRAIN epoch sensitivity — low-load latency and saturation
//! throughput for epochs from 16 to 64K cycles (uniform random, 8×8
//! mesh), plus the paper's footnote-3 ablation: hops per drain window.
//!
//! Paper shape: a 16-cycle epoch thrashes the network with continuous
//! misrouting; latency falls and throughput rises monotonically with the
//! epoch; draining more than one hop per window never helps.

use drain_bench::sweep::{load_sweep, low_load_latency, saturation_throughput};
use drain_bench::table::{banner, f1, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_core::{DrainConfig, DrainMechanism};
use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_netsim::{Sim, SimConfig};
use drain_path::DrainPath;
use drain_topology::Topology;

fn drain_sim_with(topo: &Topology, epoch: u64, hops: u32, rate: f64, seed: u64) -> Sim {
    let path = DrainPath::compute(topo).unwrap();
    let mech = DrainMechanism::new(
        path,
        DrainConfig {
            epoch,
            hops_per_drain: hops,
            ..DrainConfig::default()
        },
    );
    let mut cfg = SimConfig::drain_default();
    cfg.num_classes = 1;
    cfg.watchdog_threshold = 0;
    cfg.seed = seed;
    Sim::new(
        topo.clone(),
        cfg,
        Box::new(FullyAdaptive::new(topo)),
        Box::new(mech),
        Box::new(SyntheticTraffic::new(
            SyntheticPattern::UniformRandom,
            rate,
            1,
            seed ^ 0x14,
        )),
    )
}

fn main() {
    let scale = Scale::from_env();
    banner("Fig 14", "epoch sensitivity (uniform random, 8x8)", scale);
    let topo = Topology::mesh(8, 8);
    let epochs: &[u64] = &[16, 64, 256, 1_024, 4_096, 16_384, 65_536];
    let mut rows = Vec::new();
    for &epoch in epochs {
        // Low-load latency at 2% injection.
        let mut sim = drain_sim_with(&topo, epoch, 1, 0.02, 7);
        sim.warmup_and_measure(scale.warmup(), scale.measure());
        let lat = sim.stats().net_latency.mean();
        // Saturation: sweep rates using the harness.
        let pts = load_sweep(
            Scheme::Drain(drain_bench::scheme::DrainVariant::Vn1Vc2),
            &topo,
            true,
            &SyntheticPattern::UniformRandom,
            7,
            epoch,
            scale,
        );
        let _ = low_load_latency(&pts);
        rows.push(vec![
            epoch.to_string(),
            f1(lat),
            f3(saturation_throughput(&pts)),
        ]);
    }
    print_table(
        "Fig 14 — latency/throughput vs epoch",
        &["epoch (cycles)", "low-load latency", "saturation throughput"],
        &rows,
    );

    // Ablation: hops per drain window (paper footnote 3: >1 always worse).
    let mut rows = Vec::new();
    for hops in [1u32, 2, 4] {
        let mut sim = drain_sim_with(&topo, 1_024, hops, 0.02, 9);
        sim.warmup_and_measure(scale.warmup(), scale.measure());
        rows.push(vec![
            hops.to_string(),
            f1(sim.stats().net_latency.mean()),
            sim.stats().forced_hops.to_string(),
        ]);
    }
    print_table(
        "Fig 14 ablation — hops per drain window (epoch 1024, 2% load)",
        &["hops/drain", "low-load latency", "forced hops"],
        &rows,
    );
    println!("\nPaper shape: frequent draining (16-cycle epoch) hurts both metrics; draining is best done rarely; one hop per window wins.");
}
