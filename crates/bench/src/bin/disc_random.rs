//! §VI discussion experiments: DRAIN on random topologies and composed
//! chiplet systems, where proactive routing restrictions are hardest to
//! design.
//!
//! Paper argument: random topologies (Koibuchi et al., Dodec) pair fully
//! adaptive routing with an up*/down* escape VC and pay for the extra
//! buffers; chiplet compositions are not deadlock-free even when every
//! chiplet is. DRAIN covers both with one drain path and no restrictions.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::scheme::DrainVariant;
use drain_bench::sweep::plan::{load_sweep_specs, PointSpec, TopoSpec};
use drain_bench::sweep::{low_load_latency, mean, saturation_throughput};
use drain_bench::table::{banner, f1, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;

const SCHEMES: [Scheme; 3] = [
    Scheme::EscapeVc, // up*/down* escape on non-mesh topologies
    Scheme::Spin,
    Scheme::Drain(DrainVariant::Vn1Vc2),
];

fn main() {
    let scale = Scale::from_env();
    banner(
        "§VI",
        "random topologies & chiplet composition (DRAIN vs escape VC vs SPIN)",
        scale,
    );
    let mut engine = SweepEngine::new("disc_random", scale);
    let topologies = [
        (
            TopoSpec::Random {
                n: 32,
                degree_milli: 3000,
                seed: 11,
            },
            "random-32 (deg~3)",
        ),
        (
            TopoSpec::Random {
                n: 64,
                degree_milli: 4000,
                seed: 12,
            },
            "random-64 (deg~4)",
        ),
        (TopoSpec::Chiplet { seed: 13 }, "chiplet (4x4+3x3+ring6)"),
    ];

    let mut specs: Vec<PointSpec> = Vec::new();
    for (topo, _) in &topologies {
        for scheme in SCHEMES {
            for s in 0..scale.seeds() {
                specs.extend(load_sweep_specs(
                    scheme,
                    topo,
                    &SyntheticPattern::UniformRandom,
                    s as u64,
                    Scheme::DEFAULT_EPOCH,
                    scale,
                ));
            }
        }
    }
    let points = engine.run_points(&specs);

    let mut sweeps = points.chunks(scale.rate_sweep().len());
    let mut rows = Vec::new();
    for (_, label) in &topologies {
        for scheme in SCHEMES {
            let mut lats = Vec::new();
            let mut sats = Vec::new();
            for _s in 0..scale.seeds() {
                let pts = sweeps.next().expect("grid order");
                lats.push(low_load_latency(pts));
                sats.push(saturation_throughput(pts));
            }
            rows.push(vec![
                label.to_string(),
                scheme.label().to_string(),
                f1(mean(&lats)),
                f3(mean(&sats)),
            ]);
        }
    }
    print_table(
        "§VI — low-load latency (cycles) and saturation throughput (pkts/node/cycle)",
        &["topology", "scheme", "low-load latency", "sat. throughput"],
        &rows,
    );
    write_csv(
        "disc_random",
        &["topology", "scheme", "low_load_latency", "sat_throughput"],
        &rows,
    );
    println!("\nPaper argument: DRAIN brings unrestricted adaptive routing to topologies where turn restrictions are costly to design, at one virtual network.");
    engine.finish();
}
