//! §VI discussion experiments: DRAIN on random topologies and composed
//! chiplet systems, where proactive routing restrictions are hardest to
//! design.
//!
//! Paper argument: random topologies (Koibuchi et al., Dodec) pair fully
//! adaptive routing with an up*/down* escape VC and pay for the extra
//! buffers; chiplet compositions are not deadlock-free even when every
//! chiplet is. DRAIN covers both with one drain path and no restrictions.

use drain_bench::sweep::{load_sweep, low_load_latency, mean, saturation_throughput};
use drain_bench::table::{banner, f1, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_topology::chiplet::{demo_heterogeneous_system, random_connected};
use drain_topology::Topology;

fn compare_on(topo: &Topology, label: &str, scale: Scale, rows: &mut Vec<Vec<String>>) {
    for scheme in [
        Scheme::EscapeVc, // up*/down* escape on non-mesh topologies
        Scheme::Spin,
        Scheme::Drain(drain_bench::scheme::DrainVariant::Vn1Vc2),
    ] {
        let mut lats = Vec::new();
        let mut sats = Vec::new();
        for s in 0..scale.seeds() {
            let pts = load_sweep(
                scheme,
                topo,
                false, // never a full mesh here: escape VC uses up*/down*
                &SyntheticPattern::UniformRandom,
                s as u64,
                Scheme::DEFAULT_EPOCH,
                scale,
            );
            lats.push(low_load_latency(&pts));
            sats.push(saturation_throughput(&pts));
        }
        rows.push(vec![
            label.to_string(),
            scheme.label().to_string(),
            f1(mean(&lats)),
            f3(mean(&sats)),
        ]);
    }
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "§VI",
        "random topologies & chiplet composition (DRAIN vs escape VC vs SPIN)",
        scale,
    );
    let mut rows = Vec::new();
    let random32 = random_connected(32, 3.0, 11);
    compare_on(&random32, "random-32 (deg~3)", scale, &mut rows);
    let random64 = random_connected(64, 4.0, 12);
    compare_on(&random64, "random-64 (deg~4)", scale, &mut rows);
    let chiplets = demo_heterogeneous_system(13);
    compare_on(&chiplets, "chiplet (4x4+3x3+ring6)", scale, &mut rows);
    print_table(
        "§VI — low-load latency (cycles) and saturation throughput (pkts/node/cycle)",
        &["topology", "scheme", "low-load latency", "sat. throughput"],
        &rows,
    );
    println!("\nPaper argument: DRAIN brings unrestricted adaptive routing to topologies where turn restrictions are costly to design, at one virtual network.");
}
