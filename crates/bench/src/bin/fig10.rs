//! Fig 10: saturation throughput vs faults for escape VCs, SPIN and DRAIN
//! on an 8×8 mesh, uniform random and transpose traffic.
//!
//! Paper shape: escape VCs lowest; SPIN highest; DRAIN matches SPIN on
//! uniform random and is slightly lower on transpose.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::sweep::plan::{load_sweep_specs, PointSpec, TopoSpec};
use drain_bench::sweep::{mean, saturation_throughput};
use drain_bench::table::{banner, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;

fn main() {
    let scale = Scale::from_env();
    banner("Fig 10", "saturation throughput vs faults (8x8 mesh)", scale);
    let mut engine = SweepEngine::new("fig10", scale);
    let patterns = [SyntheticPattern::UniformRandom, SyntheticPattern::Transpose];
    let fault_counts = [0usize, 1, 4, 8, 12];

    // Expand the whole grid up front so the engine can fan every
    // operating point across the workers at once.
    let mut specs: Vec<PointSpec> = Vec::new();
    for pattern in &patterns {
        for &faults in &fault_counts {
            for scheme in Scheme::headline() {
                for s in 0..scale.seeds() {
                    let seed = (faults * 1000 + s) as u64;
                    let topo = TopoSpec::mesh_with_faults(8, 8, faults, seed);
                    specs.extend(load_sweep_specs(
                        scheme,
                        &topo,
                        pattern,
                        seed,
                        Scheme::DEFAULT_EPOCH,
                        scale,
                    ));
                }
            }
        }
    }
    let points = engine.run_points(&specs);

    // Walk the results back in grid order: each (pattern, faults, scheme,
    // seed) cell owns one contiguous rate sweep.
    let mut sweeps = points.chunks(scale.rate_sweep().len());
    let mut csv_rows = Vec::new();
    for pattern in &patterns {
        let mut rows = Vec::new();
        for &faults in &fault_counts {
            let mut per_scheme = Vec::new();
            for _scheme in Scheme::headline() {
                let sats: Vec<f64> = (0..scale.seeds())
                    .map(|_| saturation_throughput(sweeps.next().expect("grid order")))
                    .collect();
                per_scheme.push(mean(&sats));
            }
            let cells = vec![
                faults.to_string(),
                f3(per_scheme[0]),
                f3(per_scheme[1]),
                f3(per_scheme[2]),
            ];
            let mut csv = vec![pattern.name().to_string()];
            csv.extend(cells.iter().cloned());
            csv_rows.push(csv);
            rows.push(cells);
        }
        print_table(
            &format!(
                "Fig 10 — saturation throughput, {} traffic (packets/node/cycle)",
                pattern.name()
            ),
            &["faults", "EscapeVC", "SPIN", "DRAIN (VN-1,VC-2)"],
            &rows,
        );
    }
    write_csv(
        "fig10",
        &["pattern", "faults", "escapevc", "spin", "drain_vn1vc2"],
        &csv_rows,
    );
    println!("\nPaper shape: EscapeVC lowest; DRAIN ≈ SPIN on uniform random, slightly below SPIN on transpose.");
    engine.finish();
}
