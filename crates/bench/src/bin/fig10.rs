//! Fig 10: saturation throughput vs faults for escape VCs, SPIN and DRAIN
//! on an 8×8 mesh, uniform random and transpose traffic.
//!
//! Paper shape: escape VCs lowest; SPIN highest; DRAIN matches SPIN on
//! uniform random and is slightly lower on transpose.

use drain_bench::sweep::{load_sweep, mean, saturation_throughput};
use drain_bench::table::{banner, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_topology::{faults::FaultInjector, Topology};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 10",
        "saturation throughput vs faults (8x8 mesh)",
        scale,
    );
    let base = Topology::mesh(8, 8);
    for pattern in [SyntheticPattern::UniformRandom, SyntheticPattern::Transpose] {
        let mut rows = Vec::new();
        for faults in [0usize, 1, 4, 8, 12] {
            let mut per_scheme = Vec::new();
            for scheme in Scheme::headline() {
                let mut sats = Vec::new();
                for s in 0..scale.seeds() {
                    let seed = (faults * 1000 + s) as u64;
                    let topo = if faults == 0 {
                        base.clone()
                    } else {
                        FaultInjector::new(seed).remove_links(&base, faults).unwrap()
                    };
                    let pts = load_sweep(
                        scheme,
                        &topo,
                        faults == 0,
                        &pattern,
                        seed,
                        Scheme::DEFAULT_EPOCH,
                        scale,
                    );
                    sats.push(saturation_throughput(&pts));
                }
                per_scheme.push(mean(&sats));
            }
            rows.push(vec![
                faults.to_string(),
                f3(per_scheme[0]),
                f3(per_scheme[1]),
                f3(per_scheme[2]),
            ]);
        }
        print_table(
            &format!(
                "Fig 10 — saturation throughput, {} traffic (packets/node/cycle)",
                pattern.name()
            ),
            &["faults", "EscapeVC", "SPIN", "DRAIN (VN-1,VC-2)"],
            &rows,
        );
    }
    println!("\nPaper shape: EscapeVC lowest; DRAIN ≈ SPIN on uniform random, slightly below SPIN on transpose.");
}
