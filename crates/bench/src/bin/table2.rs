//! Table II: key simulation parameters, printed from the live defaults so
//! the table can never drift from the code.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::table::print_table;
use drain_bench::Scale;
use drain_core::DrainConfig;
use drain_netsim::SimConfig;

fn main() {
    let engine = SweepEngine::new("table2", Scale::from_env());
    let base = SimConfig::default();
    let drain = SimConfig::drain_default();
    let dcfg = DrainConfig::default();
    let rows = vec![
        vec![
            "Core".into(),
            "64 cores (Ligra models), 16 cores (PARSEC/SPLASH-2 models), 1 GHz".into(),
        ],
        vec![
            "L1 Cache".into(),
            "private; finite capacity + MSHRs (drain-coherence)".into(),
        ],
        vec![
            "Last Level Cache".into(),
            "shared, distributed directory slices, blocking TBEs".into(),
        ],
        vec![
            "Cache Coherence".into(),
            format!("MESI-lite, {} message classes", base.num_classes),
        ],
        vec![
            "Topology".into(),
            "irregular 8x8 mesh (Ligra/synthetic), irregular 4x4 mesh (PARSEC/SPLASH-2)".into(),
        ],
        vec![
            "Routing".into(),
            "DoR (regular mesh escape VC), up*/down* (irregular escape VC), fully adaptive random (SPIN, DRAIN)".into(),
        ],
        vec![
            "Router Latency".into(),
            format!("{} cycle", base.router_latency),
        ],
        vec![
            "Virtual Networks".into(),
            format!(
                "{}-VNet (EscapeVC, SPIN), {}-VNet (DRAIN), {} VCs/VNet",
                base.vns, drain.vns, base.vcs_per_vn
            ),
        ],
        vec![
            "Buffers".into(),
            format!(
                "virtual cut-through, single packet per VC, data {} flits / ctrl {} flit",
                base.data_packet_flits, base.ctrl_packet_flits
            ),
        ],
        vec!["Link Bandwidth".into(), "128 bits/cycle".into()],
        vec![
            "Faults".into(),
            "0, 8 (applications); 0, 1, 4, 8, 12 (synthetic)".into(),
        ],
        vec![
            "DRAIN epoch".into(),
            format!(
                "{} cycles (pre-drain {} cycles, full drain every {} windows)",
                dcfg.epoch, dcfg.predrain_window, dcfg.full_drain_period
            ),
        ],
    ];
    print_table("Table II — key simulation parameters", &["Parameter", "Value"], &rows);
    write_csv("table2", &["parameter", "value"], &rows);
    engine.finish();
}
