//! Table I: qualitative comparison of deadlock-freedom solutions.
//!
//! The paper's Table I is qualitative; this binary prints the same matrix,
//! with each cell backed by where in this repository the property is
//! demonstrated (a test or an experiment binary).

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::table::print_table;
use drain_bench::Scale;

fn main() {
    let engine = SweepEngine::new("table1", Scale::from_env());
    let header = [
        "Solution",
        "Type",
        "High Perf",
        "Low Area/Power",
        "Low Complexity",
        "Routing-Level",
        "Protocol-Level",
    ];
    let rows = vec![
        vec![
            "Turn Restrictions [2]".into(),
            "Proactive".into(),
            "no (fig05)".into(),
            "yes".into(),
            "yes".into(),
            "yes (updown tests)".into(),
            "no".into(),
        ],
        vec![
            "Escape VCs [3]".into(),
            "Proactive".into(),
            "partial (fig10/fig11)".into(),
            "no (fig09)".into(),
            "yes".into(),
            "yes (escape_vc tests)".into(),
            "no (needs VNs)".into(),
        ],
        vec![
            "Virtual Networks [4]".into(),
            "Proactive".into(),
            "yes".into(),
            "no (fig04)".into(),
            "yes".into(),
            "no".into(),
            "yes".into(),
        ],
        vec![
            "SPIN [5]".into(),
            "Reactive".into(),
            "yes (fig10/fig11)".into(),
            "partial (fig09)".into(),
            "no (probe h/w)".into(),
            "yes (spin tests)".into(),
            "no (needs VNs)".into(),
        ],
        vec![
            "DRAIN".into(),
            "Subactive".into(),
            "yes (fig10/fig11)".into(),
            "yes (fig09)".into(),
            "yes (turn-table)".into(),
            "yes (drain tests)".into(),
            "yes (coherence tests)".into(),
        ],
    ];
    print_table(
        "Table I — solutions for routing-level and protocol-level deadlock freedom",
        &header,
        &rows,
    );
    write_csv("table1", &header, &rows);
    engine.finish();
}
