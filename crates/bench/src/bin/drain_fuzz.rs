//! `drain-fuzz`: invariant + differential-oracle soak harness.
//!
//! Sweeps random irregular topologies × synthetic traffic patterns ×
//! seeds, running every point through both correctness layers:
//!
//! 1. the runtime invariant checker ([`drain_netsim::check`]) on both
//!    schemes — conservation, VC occupancy, reachability, forced-move
//!    validity and drain-epoch forward progress, every cycle;
//! 2. the differential oracle ([`drain_bench::oracle`]) — DRAIN and a
//!    trusted baseline fed identical traffic must deliver identical
//!    packet multisets.
//!
//! Violations are reported as structured JSON (`results/drain_fuzz.json`)
//! with everything needed to replay a failing point: its topology key,
//! pattern, rate, seed and epoch. Exit code 1 on any violation.
//!
//! ```text
//! drain_fuzz [--points N] [--seed S] [--inject CYCLES] [--smoke]
//!            [--baseline escape-vc|spin|updown|ideal] [--seed-fault]
//!            [--shards K] [--rng-mode stream|keyed] [--json PATH]
//! ```
//!
//! `--smoke` is the CI preset (few points, short runs, and the 2-shard
//! kernel so CI soaks shard determinism; used by `scripts/check.sh`).
//! `--seed-fault` corrupts the DRAIN turn-table on every point through
//! the drainpath crate's test-only hook and *expects* the checker to
//! catch each one — exit code 0 iff every seeded fault is detected.
//! `--shards K` runs both legs of every point on the K-shard allocation
//! kernel, which must not change any verdict (it is bit-identical to the
//! serial kernel). `--rng-mode keyed` runs both legs of every point
//! under the keyed counter-based sample mixer (see
//! [`drain_netsim::rng`]); tie-breaks differ from stream mode but every
//! verdict must still hold — including `--seed-fault` detection, which
//! is how CI pins sabotage detection as mode-independent. The
//! `DRAIN_RNG` environment knob overrides the flag, like every
//! `Scheme`-built simulation.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use drain_baselines::assemble::Baseline;
use drain_bench::engine::SweepEngine;
use drain_bench::json::{num, Json};
use drain_bench::oracle::{run_oracle, FaultSeed, OracleReport, OracleSpec};
use drain_bench::sweep::plan::TopoSpec;
use drain_bench::table::banner;
use drain_bench::Scale;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{RngMode, RunOutcome};
use drain_topology::NodeId;

/// One fuzz point: a fully determined (topology, traffic, scheme-config)
/// combination.
struct FuzzPoint {
    index: usize,
    topo: TopoSpec,
    spec: OracleSpec,
    fault: FaultSeed,
}

/// Expands point `i` of the sweep deterministically from the base seed.
fn gen_point(i: usize, base_seed: u64, inject_cycles: u64, fault: FaultSeed) -> FuzzPoint {
    let mut rng = ChaCha8Rng::seed_from_u64(base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
    let topo = match rng.gen_range(0..3u32) {
        0 => TopoSpec::FaultyMesh {
            w: rng.gen_range(4..=7),
            h: rng.gen_range(4..=7),
            faults: rng.gen_range(1..=6),
            seed: rng.gen_range(0..1_000_000),
        },
        1 => TopoSpec::Random {
            n: rng.gen_range(8..=24),
            degree_milli: rng.gen_range(2500..=4000),
            seed: rng.gen_range(0..1_000_000),
        },
        _ => TopoSpec::Chiplet {
            seed: rng.gen_range(0..1_000_000),
        },
    };
    let pattern = match rng.gen_range(0..6u32) {
        0 => SyntheticPattern::UniformRandom,
        1 => SyntheticPattern::Transpose,
        2 => SyntheticPattern::BitComplement,
        3 => SyntheticPattern::Shuffle,
        4 => SyntheticPattern::Neighbor,
        _ => SyntheticPattern::Hotspot(vec![NodeId(0)]),
    };
    // The hotspot funnels every node into one ejection port (1 packet per
    // cycle), so its per-node rate must stay well under 1/n or the drain
    // phase dwarfs the injection phase.
    let rate = if matches!(pattern, SyntheticPattern::Hotspot(_)) {
        rng.gen_range(0.005..0.025)
    } else {
        rng.gen_range(0.02..0.20)
    };
    let mut spec = OracleSpec {
        pattern,
        rate,
        seed: rng.gen_range(0..1_000_000),
        epoch: *[256u64, 512, 1024, 2048]
            .get(rng.gen_range(0..4usize))
            .unwrap(),
        full_drain_period: *[0u64, 4, 64].get(rng.gen_range(0..3usize)).unwrap(),
        inject_cycles,
        drain_budget: 150_000,
        baseline: Baseline::EscapeVc,
        flightrec_dir: None,
        shards: 1,
        rng_mode: RngMode::Stream,
    };
    if fault != FaultSeed::None {
        // A sabotaged turn-table is only *observable* when a drain window
        // actually forces a move, so seeded-fault points pin parameters
        // that guarantee drain activity: short epochs, a full drain every
        // window, and enough load that packets are in-network at window
        // boundaries.
        spec.epoch = 256;
        spec.full_drain_period = 1;
        spec.rate = spec.rate.max(0.08);
    }
    FuzzPoint {
        index: i,
        topo,
        spec,
        fault,
    }
}

fn outcome_str(o: RunOutcome) -> &'static str {
    match o {
        RunOutcome::BudgetExhausted => "budget-exhausted",
        RunOutcome::WorkloadFinished => "finished",
        RunOutcome::Deadlocked => "deadlocked",
        RunOutcome::InvariantViolation => "invariant-violation",
    }
}

/// JSON record for one point's outcome.
fn point_json(p: &FuzzPoint, r: &OracleReport, ok: bool) -> Json {
    let mut violations: Vec<Json> = Vec::new();
    for leg in [&r.drain, &r.baseline] {
        if let Some(v) = &leg.violation {
            violations.push(Json::obj([
                ("scheme", Json::Str(leg.scheme.to_string())),
                ("kind", Json::Str(v.kind.name().to_string())),
                ("cycle", num(v.cycle as f64)),
                ("replay_seed", num(v.seed as f64)),
                ("detail", Json::Str(v.detail.clone())),
                (
                    "flight_record",
                    leg.flight_record
                        .as_ref()
                        .map(|p| Json::Str(p.display().to_string()))
                        .unwrap_or(Json::Null),
                ),
            ]));
        }
    }
    Json::obj([
        ("index", num(p.index as f64)),
        ("topo", Json::Str(p.topo.key_material())),
        ("pattern", Json::Str(p.spec.pattern.name().to_string())),
        ("rate", num(p.spec.rate)),
        ("seed", num(p.spec.seed as f64)),
        ("epoch", num(p.spec.epoch as f64)),
        ("full_drain_period", num(p.spec.full_drain_period as f64)),
        ("baseline", Json::Str(p.spec.baseline.name().to_string())),
        ("shards", num(p.spec.shards as f64)),
        ("rng_mode", Json::Str(p.spec.rng_mode.label().to_string())),
        ("seeded_fault", Json::Bool(p.fault != FaultSeed::None)),
        ("ok", Json::Bool(ok)),
        ("drain_outcome", Json::Str(outcome_str(r.drain.outcome).into())),
        (
            "baseline_outcome",
            Json::Str(outcome_str(r.baseline.outcome).into()),
        ),
        ("delivered", num(r.drain.delivered.len() as f64)),
        (
            "failures",
            Json::Arr(r.failures.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
        ("leg_violations", Json::Arr(violations)),
    ])
}

struct Args {
    points: usize,
    seed: u64,
    inject: u64,
    seed_fault: bool,
    baseline: Baseline,
    shards: usize,
    rng_mode: RngMode,
    json_path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        points: 200,
        seed: 0xF00D,
        inject: 3_000,
        seed_fault: false,
        baseline: Baseline::EscapeVc,
        shards: 1,
        rng_mode: RngMode::Stream,
        json_path: "results/drain_fuzz.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--points" => args.points = val("--points").parse().expect("--points"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--inject" => args.inject = val("--inject").parse().expect("--inject"),
            "--json" => args.json_path = val("--json"),
            "--seed-fault" => args.seed_fault = true,
            "--shards" => args.shards = val("--shards").parse().expect("--shards"),
            "--rng-mode" => {
                let v = val("--rng-mode");
                args.rng_mode = RngMode::parse(&v)
                    .unwrap_or_else(|| panic!("--rng-mode must be 'stream' or 'keyed', got {v:?}"));
            }
            "--smoke" => {
                args.points = 24;
                args.inject = 1_500;
                // CI smoke doubles as the shard-determinism soak: every
                // point runs on the 2-shard kernel, whose verdicts must
                // match the serial kernel's exactly. The wake-driven
                // Phase A scheduler is on (config default) for every leg,
                // so the smoke also soaks the wake graph — including the
                // deep sweep's missed-wake oracle — and sabotage
                // injection (`--seed-fault`) covers the wake path too.
                args.shards = 2;
            }
            "--baseline" => {
                args.baseline = match val("--baseline").as_str() {
                    "escape-vc" => Baseline::EscapeVc,
                    "spin" => Baseline::Spin,
                    "updown" => Baseline::UpDown,
                    "ideal" => Baseline::Ideal,
                    other => panic!("unknown baseline {other:?}"),
                }
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    // Resolve the DRAIN_RNG override here, not only inside the oracle's
    // config builder, so the recorded point JSON labels the mode the
    // simulations actually ran under.
    if let Ok(v) = std::env::var("DRAIN_RNG") {
        args.rng_mode = RngMode::parse(&v)
            .unwrap_or_else(|| panic!("DRAIN_RNG must be 'stream' or 'keyed', got {v:?}"));
    }
    args
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    let fault = if args.seed_fault {
        FaultSeed::SkewTurnTable
    } else {
        FaultSeed::None
    };
    banner(
        "fuzz",
        if args.seed_fault {
            "seeded-fault detection sweep (every point sabotaged; all must be caught)"
        } else {
            "invariant + differential-oracle soak sweep"
        },
        scale,
    );

    // Failing points leave a flight-recorder dump next to the JSON report
    // (last events + VC occupancy + replay seed); `point_json` records the
    // dump path per leg violation so failures can be replayed offline.
    let flightrec_dir = std::path::Path::new(&args.json_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."))
        .join("flightrec");
    let jobs: Vec<FuzzPoint> = (0..args.points)
        .map(|i| {
            let mut p = gen_point(i, args.seed, args.inject, fault);
            p.spec.baseline = args.baseline;
            p.spec.shards = args.shards;
            p.spec.rng_mode = args.rng_mode;
            p.spec.flightrec_dir = Some(flightrec_dir.clone());
            p
        })
        .collect();

    let mut engine = SweepEngine::new("drain_fuzz", scale);
    let reports: Vec<OracleReport> = engine.run_jobs(
        &jobs,
        |p| run_oracle(&p.topo.build(), p.topo.full_mesh(), &p.spec, p.fault),
        |_, r| r.drain.cycles + r.baseline.cycles,
    );

    // A point passes when the run is clean — or, in seeded-fault mode,
    // when the sabotage was caught by the forced-move validator.
    let mut failing = 0usize;
    let mut records = Vec::with_capacity(jobs.len());
    for (p, r) in jobs.iter().zip(&reports) {
        let ok = if args.seed_fault {
            r.drain.violation.is_some()
        } else {
            r.ok()
        };
        if !ok {
            failing += 1;
            let what = if args.seed_fault {
                "seeded fault NOT caught".to_string()
            } else {
                r.failures.join("; ")
            };
            eprintln!(
                "FAIL point {} [topo={} pattern={} rate={:.3} seed={} epoch={}]: {}",
                p.index,
                p.topo.key_material(),
                p.spec.pattern.name(),
                p.spec.rate,
                p.spec.seed,
                p.spec.epoch,
                what
            );
        }
        records.push(point_json(p, r, ok));
    }

    let doc = Json::obj([
        ("mode", Json::Str(if args.seed_fault {
            "seed-fault".into()
        } else {
            "sweep".into()
        })),
        ("base_seed", num(args.seed as f64)),
        ("points", num(jobs.len() as f64)),
        ("failing", num(failing as f64)),
        ("points_detail", Json::Arr(records)),
    ]);
    std::fs::create_dir_all(
        std::path::Path::new(&args.json_path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new(".")),
    )
    .expect("create results dir");
    std::fs::write(&args.json_path, format!("{doc}\n")).expect("write fuzz report");

    engine.finish();
    if args.seed_fault {
        println!(
            "seed-fault: {}/{} sabotaged points caught ({})",
            jobs.len() - failing,
            jobs.len(),
            args.json_path
        );
    } else {
        println!(
            "fuzz: {}/{} points clean ({})",
            jobs.len() - failing,
            jobs.len(),
            args.json_path
        );
    }
    if failing > 0 {
        std::process::exit(1);
    }
}
