//! Fig 5: up*/down* routing vs ideal deadlock-free fully adaptive routing
//! on an 8×8 mesh with increasing faults (uniform random traffic).
//!
//! Reports low-load latency and saturation throughput per fault count,
//! plus the latency gap and throughput fraction the paper quotes (~22%
//! average latency gap; up*/down* leaves most of the ideal throughput on
//! the table at low fault counts; the two converge as faults increase).

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::sweep::plan::{load_sweep_specs, PointSpec, TopoSpec};
use drain_bench::sweep::{low_load_latency, mean, saturation_throughput};
use drain_bench::table::{banner, f1, f3, pct, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 5",
        "up*/down* vs ideal fully adaptive (8x8 mesh, uniform random)",
        scale,
    );
    let mut engine = SweepEngine::new("fig05", scale);
    let fault_counts = [0usize, 1, 4, 8, 12];
    let schemes = [Scheme::UpDown, Scheme::Ideal];

    let mut specs: Vec<PointSpec> = Vec::new();
    for &faults in &fault_counts {
        for s in 0..scale.seeds() {
            let seed = (faults * 100 + s) as u64;
            let topo = TopoSpec::mesh_with_faults(8, 8, faults, seed);
            for scheme in schemes {
                specs.extend(load_sweep_specs(
                    scheme,
                    &topo,
                    &SyntheticPattern::UniformRandom,
                    seed,
                    Scheme::DEFAULT_EPOCH,
                    scale,
                ));
            }
        }
    }
    let points = engine.run_points(&specs);

    let mut sweeps = points.chunks(scale.rate_sweep().len());
    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for &faults in &fault_counts {
        let mut lat = [Vec::new(), Vec::new()];
        let mut sat = [Vec::new(), Vec::new()];
        for _s in 0..scale.seeds() {
            for (i, _scheme) in schemes.into_iter().enumerate() {
                let pts = sweeps.next().expect("grid order");
                lat[i].push(low_load_latency(pts));
                sat[i].push(saturation_throughput(pts));
            }
        }
        let (l_ud, l_id) = (mean(&lat[0]), mean(&lat[1]));
        let (s_ud, s_id) = (mean(&sat[0]), mean(&sat[1]));
        gaps.push(l_ud / l_id - 1.0);
        rows.push(vec![
            faults.to_string(),
            f1(l_ud),
            f1(l_id),
            pct(l_ud / l_id - 1.0),
            f3(s_ud),
            f3(s_id),
            pct(s_ud / s_id),
        ]);
    }
    let header = [
        "faults",
        "lat up*/down*",
        "lat ideal",
        "lat gap",
        "sat thpt up*/down*",
        "sat thpt ideal",
        "thpt fraction",
    ];
    print_table("Fig 5 — up*/down* vs ideal", &header, &rows);
    write_csv("fig05", &header, &rows);
    println!("\nAverage latency gap: {}", pct(mean(&gaps)));
    println!("Paper: ~22% average latency gap (24% worst case); up*/down* reaches only a small fraction of ideal throughput at low fault counts, converging as faults grow.");
    engine.finish();
}
