//! Fig 15: 99th-percentile packet latency on application models —
//! escape VCs vs SPIN vs the three DRAIN configurations.
//!
//! Paper shape: despite 64K-cycle epochs, DRAIN's tail latency stays
//! close to the baselines; only the smallest configuration (VN-1, VC-2)
//! shows a modest p99 increase on the most memory-intensive apps.

use drain_bench::apps::{app_jobs, average, AppJob, AppRun};
use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::scheme::DrainVariant;
use drain_bench::table::{banner, print_table};
use drain_bench::{Scale, Scheme};
use drain_topology::Topology;
use drain_workloads::{ligra, parsec};

fn main() {
    let scale = Scale::from_env();
    banner("Fig 15", "99th-percentile packet latency (application models)", scale);
    let mut engine = SweepEngine::new("fig15", scale);
    let schemes = [
        Scheme::EscapeVc,
        Scheme::Spin,
        Scheme::Drain(DrainVariant::Vn3Vc2),
        Scheme::Drain(DrainVariant::Vn1Vc6),
        Scheme::Drain(DrainVariant::Vn1Vc2),
    ];
    let parsec_apps = match scale {
        Scale::Quick => parsec().into_iter().take(3).collect::<Vec<_>>(),
        Scale::Full => parsec(),
    };
    let ligra_apps = match scale {
        Scale::Quick => ligra().into_iter().take(2).collect::<Vec<_>>(),
        Scale::Full => ligra(),
    };
    let mesh16 = Topology::mesh(4, 4);
    let mesh64 = Topology::mesh(8, 8);
    let suites = [(parsec_apps, &mesh16), (ligra_apps, &mesh64)];

    let mut jobs: Vec<AppJob> = Vec::new();
    for (apps, topo) in &suites {
        for app in apps {
            for s in schemes {
                jobs.extend(app_jobs(s, topo, 0, app, scale));
            }
        }
    }
    let runs = engine.run_jobs(&jobs, AppJob::run, |_, r: &AppRun| r.cycles);

    let mut cells = runs.chunks(scale.seeds()).map(average);
    let mut rows = Vec::new();
    for (apps, _topo) in &suites {
        for app in apps {
            let mut row = vec![app.name.to_string()];
            for _s in schemes {
                row.push(cells.next().expect("grid order").p99.to_string());
            }
            rows.push(row);
        }
    }
    let header = [
        "app",
        "EscapeVC",
        "SPIN",
        "DRAIN VN-3,VC-2",
        "DRAIN VN-1,VC-6",
        "DRAIN VN-1,VC-2",
    ];
    print_table("Fig 15 — p99 network latency (cycles)", &header, &rows);
    write_csv("fig15", &header, &rows);
    println!("\nPaper shape: tail latency impact of infrequent draining is small; only VN-1,VC-2 on memory-intensive apps shows a modest increase.");
    engine.finish();
}
