//! Fig 11: low-load packet latency vs faults for escape VCs, SPIN and
//! DRAIN (8×8 mesh, uniform random and transpose).
//!
//! Paper shape: DRAIN matches SPIN; both beat escape VCs (whose
//! up*/down* escape forces non-minimal paths); latency rises with faults
//! for all schemes.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::sweep::mean;
use drain_bench::sweep::plan::{PointSpec, TopoSpec};
use drain_bench::table::{banner, f1, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;

fn main() {
    let scale = Scale::from_env();
    banner("Fig 11", "low-load latency vs faults (8x8 mesh)", scale);
    let mut engine = SweepEngine::new("fig11", scale);
    let low_rate = 0.02;
    let patterns = [SyntheticPattern::UniformRandom, SyntheticPattern::Transpose];
    let fault_counts = [0usize, 1, 4, 8, 12];

    // One low-load point per (pattern, faults, scheme, seed) cell — no
    // rate sweep needed for this figure.
    let mut specs: Vec<PointSpec> = Vec::new();
    for pattern in &patterns {
        for &faults in &fault_counts {
            for scheme in Scheme::headline() {
                for s in 0..scale.seeds() {
                    let seed = (faults * 1000 + s) as u64 ^ 0x11;
                    let topo = TopoSpec::mesh_with_faults(8, 8, faults, seed);
                    specs.push(PointSpec::new(
                        scheme,
                        topo,
                        pattern.clone(),
                        low_rate,
                        seed,
                        scale,
                    ));
                }
            }
        }
    }
    let points = engine.run_points(&specs);

    let mut next = points.iter();
    let mut csv_rows = Vec::new();
    for pattern in &patterns {
        let mut rows = Vec::new();
        for &faults in &fault_counts {
            let mut per_scheme = Vec::new();
            for _scheme in Scheme::headline() {
                let lats: Vec<f64> = (0..scale.seeds())
                    .map(|_| next.next().expect("grid order").latency)
                    .collect();
                per_scheme.push(mean(&lats));
            }
            let cells = vec![
                faults.to_string(),
                f1(per_scheme[0]),
                f1(per_scheme[1]),
                f1(per_scheme[2]),
            ];
            let mut csv = vec![pattern.name().to_string()];
            csv.extend(cells.iter().cloned());
            csv_rows.push(csv);
            rows.push(cells);
        }
        print_table(
            &format!(
                "Fig 11 — low-load latency at {:.0}% injection, {} traffic (cycles)",
                low_rate * 100.0,
                pattern.name()
            ),
            &["faults", "EscapeVC", "SPIN", "DRAIN (VN-1,VC-2)"],
            &rows,
        );
    }
    write_csv(
        "fig11",
        &["pattern", "faults", "escapevc", "spin", "drain_vn1vc2"],
        &csv_rows,
    );
    println!("\nPaper shape: DRAIN ≈ SPIN, both below EscapeVC; all rise with faults.");
    engine.finish();
}
