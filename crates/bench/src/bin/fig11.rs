//! Fig 11: low-load packet latency vs faults for escape VCs, SPIN and
//! DRAIN (8×8 mesh, uniform random and transpose).
//!
//! Paper shape: DRAIN matches SPIN; both beat escape VCs (whose
//! up*/down* escape forces non-minimal paths); latency rises with faults
//! for all schemes.

use drain_bench::sweep::{mean, measure_point};
use drain_bench::table::{banner, f1, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_topology::{faults::FaultInjector, Topology};

fn main() {
    let scale = Scale::from_env();
    banner("Fig 11", "low-load latency vs faults (8x8 mesh)", scale);
    let base = Topology::mesh(8, 8);
    let low_rate = 0.02;
    for pattern in [SyntheticPattern::UniformRandom, SyntheticPattern::Transpose] {
        let mut rows = Vec::new();
        for faults in [0usize, 1, 4, 8, 12] {
            let mut per_scheme = Vec::new();
            for scheme in Scheme::headline() {
                let mut lats = Vec::new();
                for s in 0..scale.seeds() {
                    let seed = (faults * 1000 + s) as u64 ^ 0x11;
                    let topo = if faults == 0 {
                        base.clone()
                    } else {
                        FaultInjector::new(seed).remove_links(&base, faults).unwrap()
                    };
                    let p = measure_point(
                        scheme,
                        &topo,
                        faults == 0,
                        &pattern,
                        low_rate,
                        seed,
                        Scheme::DEFAULT_EPOCH,
                        scale,
                    );
                    lats.push(p.latency);
                }
                per_scheme.push(mean(&lats));
            }
            rows.push(vec![
                faults.to_string(),
                f1(per_scheme[0]),
                f1(per_scheme[1]),
                f1(per_scheme[2]),
            ]);
        }
        print_table(
            &format!(
                "Fig 11 — low-load latency at {:.0}% injection, {} traffic (cycles)",
                low_rate * 100.0,
                pattern.name()
            ),
            &["faults", "EscapeVC", "SPIN", "DRAIN (VN-1,VC-2)"],
            &rows,
        );
    }
    println!("\nPaper shape: DRAIN ≈ SPIN, both below EscapeVC; all rise with faults.");
}
