//! Fig 8: walk-through — two routing deadlock cycles on a 3×3 mesh with a
//! faulty 2–5 link, removed by a single drain window.
//!
//! Eight packets are placed exactly so that each one's only productive
//! next-hop buffer is occupied by the next packet: two four-packet
//! deadlock cycles (routers 0-3-4-1 and 4-5-8-7). The structural oracle
//! confirms the deadlock; DRAIN's drain window forces every packet one hop
//! along the offline drain path, after which adaptive routing delivers
//! everything.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::table::banner;
use drain_bench::Scale;
use drain_core::{DrainConfig, DrainMechanism};
use drain_netsim::deadlock;
use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_netsim::{MessageClass, Sim, SimConfig, VcRef};
use drain_path::DrainPath;
use drain_topology::{chiplet::fig8_topology, NodeId};

fn main() {
    let scale = Scale::from_env();
    banner("Fig 8", "walk-through: drain removes two deadlock cycles", scale);
    let engine = SweepEngine::new("fig08", scale);
    let topo = fig8_topology();
    println!(
        "\ntopology: 3x3 mesh, faulty link 2-5 removed ({} bidirectional links)",
        topo.num_bidirectional_links()
    );
    let path = DrainPath::compute(&topo).unwrap();
    println!("drain path ({} links): computed by the offline algorithm", path.len());

    let config = SimConfig {
        vns: 1,
        vcs_per_vn: 1,
        num_classes: 1,
        escape_sticky: true,
        watchdog_threshold: 0,
        ..SimConfig::default()
    };
    let mech = DrainMechanism::new(
        path,
        DrainConfig {
            epoch: 50,
            predrain_window: 5,
            hops_per_drain: 1,
            full_drain_period: 0,
        },
    );
    let mut sim = Sim::new(
        topo.clone(),
        config,
        // Strictly minimal adaptive: the walk-through's knots require
        // packets that cannot deflect sideways.
        Box::new(FullyAdaptive::with_deflection(&topo, None)),
        Box::new(mech),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 0)),
    );

    // The two deadlock cycles: (buffer of link a->b, destination).
    let placements = [
        // Cycle 1: routers 0 -> 3 -> 4 -> 1 -> 0.
        ((1u16, 0u16), 6u16), // packet 0 sits at router 0, only path to 6 is via 3
        ((0, 3), 5),          // packet 1 at router 3, only path to 5 is via 4
        ((3, 4), 2),          // packet 2 at router 4, only path to 2 is via 1
        ((4, 1), 0),          // packet 3 at router 1, next hop to 0
        // Cycle 2: routers 4 -> 5 -> 8 -> 7 -> 4 (link 4-5 still alive).
        ((7, 4), 5),
        ((4, 5), 8),
        ((5, 8), 7),
        ((8, 7), 4),
    ];
    println!("\n(a) before: eight packets, each waiting on the next one's buffer");
    for (i, &((src, at), dest)) in placements.iter().enumerate() {
        let link = topo
            .link_between(NodeId(src), NodeId(at))
            .expect("placement uses live links");
        let r = VcRef { link, vn: 0, vc: 0 };
        sim.core_mut()
            .place_packet(r, NodeId(src), NodeId(dest), MessageClass::REQUEST, 1);
        println!(
            "  packet {i}: in buffer of link {src}->{at} (at router {at}), destination {dest}"
        );
    }
    let report = deadlock::detect(sim.core());
    println!(
        "\noracle: {} VCs in a deadlock knot {}",
        report.deadlocked.len(),
        if report.is_deadlocked() { "— DEADLOCKED ✓" } else { "" }
    );
    assert!(report.is_deadlocked(), "the walk-through must start deadlocked");

    // Let the epoch expire and the drain window fire.
    sim.run(80);
    println!("\n(b)+(c) drain window at epoch 50: all packets forced one hop along the path");
    println!("  drains executed: {}", sim.stats().drains);
    println!("  forced hops: {}", sim.stats().forced_hops);
    let after = deadlock::detect(sim.core());
    println!(
        "  oracle after drain: {} deadlocked VCs",
        after.deadlocked.len()
    );
    for (r, pid) in sim.core().occupied_vcs() {
        let e = topo.link(r.link);
        let p = sim.core().packet(pid);
        println!(
            "  {:?} now in buffer of link {}->{} heading to {}",
            pid, e.src, e.dst, p.dest
        );
    }
    // Run on: adaptive routing must now deliver everything.
    sim.run(2_000);
    println!(
        "\nfinal: {} of 8 packets delivered; {} still in network",
        sim.stats().ejected,
        sim.core().packets_in_network()
    );
    assert_eq!(sim.stats().ejected, 8, "all packets must be delivered");
    println!("\nDraining for one hop successfully breaks both deadlocks (paper: 'In some cases, more than one drain window may be required').");
    write_csv(
        "fig08",
        &["deadlocked_vcs_before", "drains", "forced_hops", "deadlocked_vcs_after", "delivered"],
        &[vec![
            report.deadlocked.len().to_string(),
            sim.stats().drains.to_string(),
            sim.stats().forced_hops.to_string(),
            after.deadlocked.len().to_string(),
            sim.stats().ejected.to_string(),
        ]],
    );
    engine.finish();
}
