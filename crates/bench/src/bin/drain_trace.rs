//! `drain-trace`: single-point observability inspector.
//!
//! Runs one fully configured simulation point with event tracing and
//! telemetry sampling enabled, then post-processes its own output:
//!
//! * the structured event stream goes to `<out>/trace.jsonl` (one event
//!   per line, see [`drain_netsim::trace`]);
//! * telemetry samples (per-router VC occupancy / queue depths / credit
//!   stalls, per-link utilization) go to `<out>/telemetry.jsonl`;
//! * a per-router utilization & misroute table is printed and written to
//!   `<out>/drain_trace_routers.csv`;
//! * a scheduler/fast-forward summary (wake-driven Phase A counters plus
//!   elided-cycle accounting, read from the unified metrics registry) is
//!   printed and written to `<out>/drain_trace_scheduler.csv`;
//! * the flight recorder is armed at `<out>/flightrec/`, so a failing
//!   point leaves a replayable dump.
//!
//! The binary re-parses every line it wrote (a malformed line is fatal)
//! and — for the DRAIN scheme — asserts drain-epoch events appear at the
//! configured cadence, which makes it the trace smoke test run by
//! `scripts/check.sh`.
//!
//! ```text
//! drain_trace [--mesh WxH] [--faults N] [--fault-seed S]
//!             [--scheme drain|escape-vc|spin] [--pattern NAME]
//!             [--rate R] [--seed S] [--epoch E] [--cycles C]
//!             [--telemetry-period P] [--out DIR]
//! ```

use std::path::PathBuf;

use drain_bench::engine::SweepEngine;
use drain_bench::json::{num, Json};
use drain_bench::report::{results_dir, write_csv_in};
use drain_bench::scheme::DrainVariant;
use drain_bench::sweep::plan::TopoSpec;
use drain_bench::table::{banner, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{
    RunOutcome, TelemetrySample, TraceConfig, TraceEvent, TraceSink,
};
use drain_path::DrainPath;
use drain_topology::{LinkId, NodeId, Topology};

struct Args {
    mesh: (u16, u16),
    faults: usize,
    fault_seed: u64,
    scheme: Scheme,
    pattern: SyntheticPattern,
    rate: f64,
    seed: u64,
    epoch: u64,
    cycles: u64,
    telemetry_period: u64,
    out: PathBuf,
}

fn parse_pattern(name: &str) -> SyntheticPattern {
    match name {
        "uniform" => SyntheticPattern::UniformRandom,
        "transpose" => SyntheticPattern::Transpose,
        "bitcomp" => SyntheticPattern::BitComplement,
        "shuffle" => SyntheticPattern::Shuffle,
        "neighbor" => SyntheticPattern::Neighbor,
        "hotspot" => SyntheticPattern::Hotspot(vec![NodeId(0)]),
        other => panic!("unknown pattern {other:?}"),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        mesh: (4, 4),
        faults: 0,
        fault_seed: 1,
        scheme: Scheme::Drain(DrainVariant::Vn1Vc2),
        pattern: SyntheticPattern::UniformRandom,
        rate: 0.10,
        seed: 1,
        epoch: 1_024,
        cycles: 16_384,
        telemetry_period: 256,
        out: results_dir().join("trace"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--mesh" => {
                let v = val("--mesh");
                let (w, h) = v.split_once('x').expect("--mesh WxH");
                args.mesh = (w.parse().expect("--mesh"), h.parse().expect("--mesh"));
            }
            "--faults" => args.faults = val("--faults").parse().expect("--faults"),
            "--fault-seed" => args.fault_seed = val("--fault-seed").parse().expect("--fault-seed"),
            "--scheme" => {
                args.scheme = match val("--scheme").as_str() {
                    "drain" => Scheme::Drain(DrainVariant::Vn1Vc2),
                    "escape-vc" => Scheme::EscapeVc,
                    "spin" => Scheme::Spin,
                    other => panic!("unknown scheme {other:?}"),
                }
            }
            "--pattern" => args.pattern = parse_pattern(&val("--pattern")),
            "--rate" => args.rate = val("--rate").parse().expect("--rate"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--epoch" => args.epoch = val("--epoch").parse().expect("--epoch"),
            "--cycles" => args.cycles = val("--cycles").parse().expect("--cycles"),
            "--telemetry-period" => {
                args.telemetry_period = val("--telemetry-period").parse().expect("--telemetry-period")
            }
            "--out" => args.out = PathBuf::from(val("--out")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// What the traced run hands back to the post-processing stage.
struct TraceRun {
    outcome: RunOutcome,
    injected: u64,
    ejected: u64,
    flit_hops: u64,
    samples: Vec<TelemetrySample>,
    flight_record: Option<PathBuf>,
    sink_errors: u64,
    metrics: drain_netsim::MetricsSnapshot,
    /// RNG mode the point ran under (honours `DRAIN_RNG`); selects the
    /// `drain_rng_draws_total{mode}` rows of the scheduler table.
    rng_mode: &'static str,
}

fn telemetry_jsonl(samples: &[TelemetrySample], period: u64) -> String {
    let mut out = String::new();
    for s in samples {
        let nums = |it: &mut dyn Iterator<Item = f64>| Json::Arr(it.map(num).collect());
        let line = Json::obj([
            ("cycle", num(s.cycle as f64)),
            ("window", num(s.window as f64)),
            (
                "occupied_vcs",
                nums(&mut s.routers.iter().map(|r| r.occupied_vcs as f64)),
            ),
            (
                "inj_depth",
                nums(&mut s.routers.iter().map(|r| r.inj_depth as f64)),
            ),
            (
                "ej_depth",
                nums(&mut s.routers.iter().map(|r| r.ej_depth as f64)),
            ),
            (
                "credit_stalls",
                nums(&mut s.routers.iter().map(|r| r.credit_stalls as f64)),
            ),
            (
                "link_util",
                nums(&mut s.link_utilization(period).into_iter()),
            ),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Checks that consecutive `drain-epoch-start` events are `epoch` cycles
/// apart plus the bounded drain overhead (pre-drain window + forced steps
/// with their serialization freezes).
fn check_drain_cadence(starts: &[u64], epoch: u64, topo: &Topology, max_flits: u64) {
    if starts.len() < 2 {
        return;
    }
    let path_len = DrainPath::compute(topo).expect("connected topology").len() as u64;
    // predrain_window default (5) + worst case: a full drain of the whole
    // Eulerian circuit, each step followed by a max_packet_flits freeze.
    let slack = 8 + path_len * (1 + max_flits) + max_flits;
    for pair in starts.windows(2) {
        let delta = pair[1] - pair[0];
        assert!(
            delta >= epoch && delta <= epoch + slack,
            "drain cadence violated: consecutive epoch starts {} and {} are {delta} apart \
             (expected [{epoch}, {}])",
            pair[0],
            pair[1],
            epoch + slack
        );
    }
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    banner(
        "trace",
        "single-point event trace + telemetry inspector",
        scale,
    );

    let topo_spec = if args.faults > 0 {
        TopoSpec::FaultyMesh {
            w: args.mesh.0,
            h: args.mesh.1,
            faults: args.faults,
            seed: args.fault_seed,
        }
    } else {
        TopoSpec::Mesh {
            w: args.mesh.0,
            h: args.mesh.1,
        }
    };
    let topo = topo_spec.build();
    let full_mesh = topo_spec.full_mesh();
    std::fs::create_dir_all(&args.out).expect("create trace output dir");
    let trace_path = args.out.join("trace.jsonl");
    let telemetry_path = args.out.join("telemetry.jsonl");

    let trace_cfg = TraceConfig::events_on()
        .with_telemetry(args.telemetry_period)
        .with_flight_recorder(args.out.join("flightrec"));

    let mut engine = SweepEngine::new("drain_trace", scale);
    let runs = engine.run_jobs(
        &[args.seed],
        |&seed| {
            let mut sim = args.scheme.synthetic_sim_traced(
                &topo,
                full_mesh,
                args.pattern.clone(),
                args.rate,
                seed,
                args.epoch,
                1,
                trace_cfg.clone(),
            );
            sim.set_trace_sink(TraceSink::jsonl_file(&trace_path).expect("open trace file"));
            let outcome = sim.run(args.cycles);
            sim.flush_trace().expect("flush trace file");
            let s = sim.stats();
            TraceRun {
                outcome,
                injected: s.injected,
                ejected: s.ejected,
                flit_hops: s.flit_hops,
                flight_record: sim.flight_record().map(|p| p.to_path_buf()),
                sink_errors: sim.core().tracer().sink_errors(),
                metrics: sim.metrics_snapshot(),
                rng_mode: sim.core().config().rng_mode.label(),
                samples: sim.core_mut().telemetry_mut().take_samples(),
            }
        },
        |_, _| args.cycles,
    );
    let run = &runs[0];
    assert_eq!(run.sink_errors, 0, "trace sink reported write errors");

    // Telemetry export (JSONL, one sample per line).
    std::fs::write(
        &telemetry_path,
        telemetry_jsonl(&run.samples, args.telemetry_period),
    )
    .expect("write telemetry file");

    // Re-parse everything we just wrote; a malformed line is a bug.
    let raw = std::fs::read_to_string(&trace_path).expect("read trace back");
    let mut events = Vec::new();
    for (i, line) in raw.lines().enumerate() {
        match TraceEvent::parse_jsonl(line) {
            Ok(ev) => events.push(ev),
            Err(e) => panic!("trace line {} does not parse: {e}\n{line}", i + 1),
        }
    }
    for (i, line) in std::fs::read_to_string(&telemetry_path)
        .expect("read telemetry back")
        .lines()
        .enumerate()
    {
        if let Err(e) = drain_bench::json::parse(line) {
            panic!("telemetry line {} does not parse: {e}", i + 1);
        }
    }

    // DRAIN runs must show epoch events at the configured cadence.
    let epoch_starts: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::DrainEpochStart { cycle, .. } => Some(*cycle),
            _ => None,
        })
        .collect();
    if matches!(args.scheme, Scheme::Drain(_)) {
        assert!(
            !epoch_starts.is_empty(),
            "a DRAIN run of {} cycles with epoch {} must start at least one drain window",
            args.cycles,
            args.epoch
        );
        check_drain_cadence(&epoch_starts, args.epoch, &topo, 5);
    }

    // Per-router utilization / misroute table from the event stream +
    // telemetry series.
    let n = topo.num_nodes();
    let mut traversals = vec![0u64; n];
    let mut misroutes = vec![0u64; n];
    let mut forced = vec![0u64; n];
    let mut ejected = vec![0u64; n];
    for ev in &events {
        match ev {
            TraceEvent::LinkTraverse { link, misroute, .. } => {
                let dst = topo.link(LinkId(*link)).dst.index();
                traversals[dst] += 1;
                if *misroute {
                    misroutes[dst] += 1;
                }
            }
            TraceEvent::ForcedHop { link, misroute, .. } => {
                let dst = topo.link(LinkId(*link)).dst.index();
                traversals[dst] += 1;
                forced[dst] += 1;
                if *misroute {
                    misroutes[dst] += 1;
                }
            }
            TraceEvent::Eject { node, .. } => ejected[*node as usize] += 1,
            _ => {}
        }
    }
    let mean_occ: Vec<f64> = (0..n)
        .map(|r| {
            if run.samples.is_empty() {
                0.0
            } else {
                run.samples
                    .iter()
                    .map(|s| s.routers[r].occupied_vcs as f64)
                    .sum::<f64>()
                    / run.samples.len() as f64
            }
        })
        .collect();
    let stalls: Vec<u64> = (0..n)
        .map(|r| run.samples.iter().map(|s| s.routers[r].credit_stalls).sum())
        .collect();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|r| {
            vec![
                r.to_string(),
                traversals[r].to_string(),
                misroutes[r].to_string(),
                forced[r].to_string(),
                ejected[r].to_string(),
                f3(mean_occ[r]),
                stalls[r].to_string(),
            ]
        })
        .collect();
    let header = [
        "router",
        "traversals",
        "misroutes",
        "forced",
        "ejected",
        "mean_occ_vcs",
        "credit_stalls",
    ];
    print_table("per-router activity (from trace)", &header, &rows);
    write_csv_in(&args.out, "drain_trace_routers", &header, &rows);

    // Scheduler + fast-forward accounting, straight from the unified
    // metrics registry. Wake/park counters are network-global (the wake
    // scheduler tracks VCs, not routers), so they print as a summary
    // block beside the per-router table rather than extra columns.
    let m = &run.metrics;
    let wake = |event: &str| {
        m.counter_value_labeled("drain_wake_events_total", &[("event", event)])
            .unwrap_or(0)
    };
    // Draw-volume rows carry the mode in the counter name so a stream
    // and a keyed run are distinguishable in the same CSV schema.
    let rng_mode = run.rng_mode;
    let draws = |site: &str| {
        m.counter_value_labeled("drain_rng_draws_total", &[("site", site), ("mode", rng_mode)])
            .unwrap_or(0)
    };
    let sched_rows: Vec<Vec<String>> = [
        ("vc_parks", wake("parks")),
        ("vc_skips", wake("skips")),
        ("vc_wakes", wake("wakes")),
        ("spurious_wakes", wake("spurious_wakes")),
        ("wake_alls", wake("wake_alls")),
        ("wake_stalls", wake("stalls")),
        (
            "ff_cycles_skipped",
            m.counter_value("drain_ff_cycles_skipped_total").unwrap_or(0),
        ),
        ("ff_jumps", m.counter_value("drain_ff_jumps_total").unwrap_or(0)),
    ]
    .into_iter()
    .map(|(name, v)| vec![name.to_string(), v.to_string()])
    .chain(["phase_a", "injection", "mechanism"].into_iter().map(|s| {
        vec![format!("rng_draws_{s}_{rng_mode}"), draws(s).to_string()]
    }))
    .collect();
    let sched_header = ["counter", "total"];
    print_table(
        "scheduler & fast-forward (from metrics registry)",
        &sched_header,
        &sched_rows,
    );
    write_csv_in(&args.out, "drain_trace_scheduler", &sched_header, &sched_rows);

    println!(
        "\ntrace: {} events ({} drain-epoch starts) -> {}",
        events.len(),
        epoch_starts.len(),
        trace_path.display()
    );
    println!(
        "telemetry: {} samples (period {}) -> {}",
        run.samples.len(),
        args.telemetry_period,
        telemetry_path.display()
    );
    println!(
        "run: outcome={:?} injected={} ejected={} flit_hops={}",
        run.outcome, run.injected, run.ejected, run.flit_hops
    );
    if let Some(fr) = &run.flight_record {
        println!("flight record: {}", fr.display());
    }
    engine.finish();
    if run.outcome == RunOutcome::InvariantViolation || run.outcome == RunOutcome::Deadlocked {
        std::process::exit(1);
    }
}
