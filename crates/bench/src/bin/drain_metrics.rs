//! `drain-metrics`: metrics-registry / phase-profiler smoke harness and
//! exposition demo.
//!
//! Two phases, both exercising the unified `drain_` metrics namespace:
//!
//! 1. **Streaming**: one simulation runs with telemetry sampling and the
//!    kernel phase profiler enabled; every `--snapshot-period` cycles a
//!    registry snapshot is appended (as a `{"kind":"metrics",...}` line)
//!    to `<out>/stream.jsonl`, merged in cycle order with the telemetry
//!    samples (`{"kind":"telemetry",...}`) taken in the same window. With
//!    `--listen ADDR` the latest snapshot is also served over HTTP in
//!    Prometheus text format (see [`drain_bench::serve`]).
//! 2. **Sweep**: a small multi-point sweep runs through the
//!    [`SweepEngine`]; every per-point snapshot plus the engine's own
//!    `drain_sweep_*` job metrics merge into one registry written to
//!    `<out>/drain_metrics.prom`, which is immediately re-parsed and
//!    round-tripped (`encode(parse(encode)) == encode` — any mismatch is
//!    fatal). The merged phase-profile attribution prints as a table and
//!    its shares must sum to ~100%.
//!
//! Everything asserted here is also covered by unit/integration tests;
//! this binary is the end-to-end smoke run wired into `scripts/check.sh`.
//!
//! ```text
//! drain_metrics [--mesh WxH] [--rate R] [--cycles N] [--points K]
//!               [--profile-period P] [--telemetry-period T]
//!               [--snapshot-period S] [--shards K] [--seed S]
//!               [--listen ADDR] [--out DIR]
//! ```

use std::path::PathBuf;

use drain_bench::engine::SweepEngine;
use drain_bench::json::{num, Json};
use drain_bench::report::results_dir;
use drain_bench::scheme::DrainVariant;
use drain_bench::serve::MetricsServer;
use drain_bench::table::{banner, print_table};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{MetricsSnapshot, Phase, TelemetrySample, TraceConfig};
use drain_topology::Topology;

struct Args {
    mesh: (u16, u16),
    rate: f64,
    cycles: u64,
    points: u64,
    profile_period: u64,
    telemetry_period: u64,
    snapshot_period: u64,
    shards: usize,
    seed: u64,
    listen: Option<String>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        mesh: (8, 8),
        rate: 0.10,
        cycles: 16_384,
        points: 4,
        profile_period: 64,
        telemetry_period: 256,
        snapshot_period: 4_096,
        shards: 1,
        seed: 1,
        listen: None,
        out: results_dir().join("metrics"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--mesh" => {
                let v = val("--mesh");
                let (w, h) = v.split_once('x').expect("--mesh WxH");
                args.mesh = (w.parse().expect("--mesh"), h.parse().expect("--mesh"));
            }
            "--rate" => args.rate = val("--rate").parse().expect("--rate"),
            "--cycles" => args.cycles = val("--cycles").parse().expect("--cycles"),
            "--points" => args.points = val("--points").parse().expect("--points"),
            "--profile-period" => {
                args.profile_period = val("--profile-period").parse().expect("--profile-period")
            }
            "--telemetry-period" => {
                args.telemetry_period =
                    val("--telemetry-period").parse().expect("--telemetry-period")
            }
            "--snapshot-period" => {
                args.snapshot_period = val("--snapshot-period").parse().expect("--snapshot-period")
            }
            "--shards" => args.shards = val("--shards").parse().expect("--shards"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--listen" => args.listen = Some(val("--listen")),
            "--out" => args.out = PathBuf::from(val("--out")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn telemetry_line(s: &TelemetrySample, period: u64) -> String {
    let nums = |it: &mut dyn Iterator<Item = f64>| Json::Arr(it.map(num).collect());
    Json::obj([
        ("kind", Json::Str("telemetry".into())),
        ("cycle", num(s.cycle as f64)),
        ("window", num(s.window as f64)),
        ("total_flits", num(s.total_flits() as f64)),
        (
            "occupied_vcs",
            nums(&mut s.routers.iter().map(|r| r.occupied_vcs as f64)),
        ),
        (
            "credit_stalls",
            nums(&mut s.routers.iter().map(|r| r.credit_stalls as f64)),
        ),
        (
            "link_util",
            nums(&mut s.link_utilization(period).into_iter()),
        ),
    ])
    .to_string()
}

/// Phase 1: one streaming simulation emitting merged JSONL + HTTP body.
fn streaming_phase(args: &Args, topo: &Topology, server: Option<&MetricsServer>) -> MetricsSnapshot {
    let trace_cfg = TraceConfig::default().with_telemetry(args.telemetry_period);
    let mut sim = Scheme::Drain(DrainVariant::Vn1Vc2).synthetic_sim_traced(
        topo,
        false,
        SyntheticPattern::UniformRandom,
        args.rate,
        args.seed,
        1_024,
        1,
        trace_cfg,
    );
    sim.set_profile_period(args.profile_period);
    if args.shards > 1 {
        sim.set_shards(args.shards);
    }

    let mut stream = String::new();
    let mut next = 0;
    while next < args.cycles {
        let slice = args.snapshot_period.min(args.cycles - next);
        sim.run(slice);
        next += slice;
        // Telemetry samples taken during this slice all carry stamps at
        // or before the slice boundary, so draining them first keeps the
        // merged stream in cycle order.
        for s in sim.core_mut().telemetry_mut().take_samples() {
            stream.push_str(&telemetry_line(&s, args.telemetry_period));
            stream.push('\n');
        }
        let snap = sim.metrics_snapshot();
        stream.push_str(&snap.to_jsonl(sim.core().cycle()));
        stream.push('\n');
        if let Some(server) = server {
            server.set_body(snap.to_prometheus());
        }
    }

    let stream_path = args.out.join("stream.jsonl");
    std::fs::write(&stream_path, &stream).expect("write stream.jsonl");
    // Re-parse the merged stream; a malformed line is a bug.
    let mut metrics_lines = 0u64;
    let mut telemetry_lines = 0u64;
    for (i, line) in stream.lines().enumerate() {
        let v = drain_bench::json::parse(line)
            .unwrap_or_else(|e| panic!("stream line {} does not parse: {e}", i + 1));
        match v.get("kind").and_then(|k| k.as_str()) {
            Some("metrics") => metrics_lines += 1,
            Some("telemetry") => telemetry_lines += 1,
            other => panic!("stream line {} has unexpected kind {other:?}", i + 1),
        }
    }
    assert!(metrics_lines > 0, "streaming phase must emit metrics lines");
    println!(
        "stream: {metrics_lines} metrics + {telemetry_lines} telemetry lines -> {}",
        stream_path.display()
    );

    sim.metrics_snapshot()
}

/// Phase 2: a small sweep; returns the merged registry across all points
/// plus the engine's own job metrics.
fn sweep_phase(args: &Args, topo: &Topology, scale: Scale) -> MetricsSnapshot {
    let seeds: Vec<u64> = (0..args.points).map(|i| args.seed + i).collect();
    let mut engine = SweepEngine::new("drain_metrics", scale);
    let snapshots = engine.run_jobs(
        &seeds,
        |&seed| {
            let mut sim = Scheme::Drain(DrainVariant::Vn1Vc2).synthetic_sim(
                topo,
                false,
                SyntheticPattern::UniformRandom,
                args.rate,
                seed,
                1_024,
            );
            sim.set_profile_period(args.profile_period);
            sim.run(args.cycles);
            sim.metrics_snapshot()
        },
        |_, _| args.cycles,
    );
    let mut merged = MetricsSnapshot::new();
    for snap in &snapshots {
        merged.merge(snap);
    }
    merged.merge(&engine.metrics_snapshot());
    engine.finish();
    merged
}

/// Prints the merged phase attribution and asserts shares sum to ~100%.
fn phase_table(merged: &MetricsSnapshot) {
    let cycle_nanos = merged
        .counter_value("drain_profile_cycle_nanos_total")
        .expect("profiler was enabled, cycle nanos must be present");
    let sampled = merged
        .counter_value("drain_profile_sampled_cycles_total")
        .unwrap_or(0);
    assert!(sampled > 0, "profiler sampled no cycles");
    let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    names.push("other");
    let mut rows = Vec::new();
    let mut share_sum = 0.0;
    for name in names {
        let nanos = merged
            .counter_value_labeled("drain_profile_phase_nanos_total", &[("phase", name)])
            .unwrap_or(0);
        let share = 100.0 * nanos as f64 / cycle_nanos as f64;
        share_sum += share;
        rows.push(vec![
            name.to_string(),
            nanos.to_string(),
            format!("{share:.1}%"),
        ]);
    }
    rows.push(vec![
        "total".to_string(),
        cycle_nanos.to_string(),
        format!("{share_sum:.1}%"),
    ]);
    print_table(
        "kernel phase attribution (merged over all points)",
        &["phase", "nanos", "share"],
        &rows,
    );
    // `other` is cycle - sum(phases) by construction, but saturating
    // (clock jitter can make a phase overshoot its cycle); allow slack.
    assert!(
        (share_sum - 100.0).abs() < 2.0,
        "phase shares must sum to ~100%, got {share_sum:.2}%"
    );
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    banner(
        "metrics",
        "unified metrics registry + phase profiler smoke",
        scale,
    );
    assert!(args.profile_period > 0, "--profile-period must be > 0 here");
    assert!(args.snapshot_period > 0, "--snapshot-period must be > 0");
    std::fs::create_dir_all(&args.out).expect("create metrics output dir");

    let topo = Topology::mesh(args.mesh.0, args.mesh.1);
    let server = args.listen.as_deref().map(|addr| {
        let s = MetricsServer::serve(addr).expect("bind metrics listener");
        println!("serving metrics on http://{}/metrics", s.local_addr());
        s
    });

    let stream_snap = streaming_phase(&args, &topo, server.as_ref());
    let mut merged = sweep_phase(&args, &topo, scale);
    merged.merge(&stream_snap);

    // Exposition + round-trip: the .prom file must parse back to a
    // registry that re-encodes byte-identically.
    let prom = merged.to_prometheus();
    let prom_path = args.out.join("drain_metrics.prom");
    std::fs::write(&prom_path, &prom).expect("write .prom file");
    let reparsed = MetricsSnapshot::parse_prometheus(&prom)
        .unwrap_or_else(|e| panic!("exposition does not parse: {e}"));
    assert_eq!(
        reparsed.to_prometheus(),
        prom,
        "Prometheus exposition must round-trip byte-identically"
    );
    println!(
        "exposition: {} families, {} bytes -> {} (round-trip OK)",
        merged.families().len(),
        prom.len(),
        prom_path.display()
    );

    phase_table(&merged);

    if let Some(server) = &server {
        server.set_body(prom);
    }
    drop(server);
    println!("drain_metrics: OK");
}
