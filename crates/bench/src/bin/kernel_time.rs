//! Interleaved keyed-vs-stream timing of the per-cycle kernel.
//!
//! The `sim_kernel` criterion groups time each (preset, scheme, mode)
//! point in its own measurement window. On a shared container whose
//! throughput drifts tens of percent between windows, a cross-window
//! ratio can be pure fiction (EXPERIMENTS.md "Kernel performance"
//! documents a phantom 1.67× between two identical runs). This harness
//! alternates the two RNG determinism contracts within one process —
//! stream, keyed, stream, keyed, … — and reports the best-of-N wall
//! time per mode, so both legs sample the same machine conditions and
//! the floor estimates are comparable.
//!
//! Usage:
//!   kernel_time [--preset saturated|congested|mesh16|all] [--reps N]
//!               [--shards K]
//!
//! Presets mirror `crates/bench/benches/sim_kernel.rs` exactly:
//! `saturated` is the dense mesh(8,8) point (40% uniform-random,
//! 5 000 cycles), `congested` the irregular faulty mesh(12,12) point
//! (24 seeded link faults, 25%, 2 000 cycles), `mesh16` the sharded
//! group's saturated mesh(16,16) point (40%, 1 500 cycles — pair it
//! with `--shards` to time the keyed planners' census retirement;
//! `all` covers the first two). One JSON line per (preset, scheme)
//! goes to stdout; pipe it wherever.

use std::time::Instant;

use drain_bench::Scheme;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{RngMode, Sim};
use drain_topology::faults::FaultInjector;
use drain_topology::Topology;

struct Preset {
    name: &'static str,
    topo: Topology,
    eject: bool,
    rate: f64,
    seed: u64,
    epoch: u64,
    cycles: u64,
}

fn presets(which: &str) -> Vec<Preset> {
    let saturated = Preset {
        name: "saturated",
        topo: Topology::mesh(8, 8),
        eject: true,
        rate: 0.40,
        seed: 1,
        epoch: Scheme::DEFAULT_EPOCH,
        cycles: 5_000,
    };
    let congested = Preset {
        name: "congested",
        topo: FaultInjector::new(9)
            .remove_links(&Topology::mesh(12, 12), 24)
            .expect("mesh(12,12) tolerates 24 removals"),
        eject: false,
        rate: 0.25,
        seed: 11,
        epoch: 512,
        cycles: 2_000,
    };
    let mesh16 = Preset {
        name: "mesh16",
        topo: Topology::mesh(16, 16),
        eject: true,
        rate: 0.40,
        seed: 1,
        epoch: Scheme::DEFAULT_EPOCH,
        cycles: 1_500,
    };
    match which {
        "saturated" => vec![saturated],
        "congested" => vec![congested],
        "mesh16" => vec![mesh16],
        "all" => vec![saturated, congested],
        other => panic!("unknown preset {other:?} (want saturated|congested|mesh16|all)"),
    }
}

/// One timed `Sim::run` under `mode`; construction is excluded, like
/// the criterion bench. Returns (elapsed ns, delivered packets).
fn run_once(p: &Preset, scheme: Scheme, mode: RngMode, shards: usize) -> (u128, u64) {
    let mut sim: Sim = scheme.synthetic_sim(
        &p.topo,
        p.eject,
        SyntheticPattern::UniformRandom,
        p.rate,
        p.seed,
        p.epoch,
    );
    sim.set_rng_mode(mode);
    sim.set_shards(shards);
    let t = Instant::now();
    sim.run(p.cycles);
    (t.elapsed().as_nanos(), sim.stats().ejected)
}

fn main() {
    let mut preset = "all".to_string();
    let mut reps = 7usize;
    let mut shards = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--preset" => preset = args.next().expect("--preset needs a value"),
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps needs an integer")
            }
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards needs a value")
                    .parse()
                    .expect("--shards needs an integer")
            }
            other => panic!("unknown flag {other:?}"),
        }
    }

    for p in presets(&preset) {
        for scheme in Scheme::headline() {
            let mut best = [u128::MAX; 2];
            let mut delivered = [0u64; 2];
            // One untimed warm-up pair, then `reps` interleaved pairs.
            for warm in [true, false] {
                let n = if warm { 1 } else { reps };
                for _ in 0..n {
                    for (i, mode) in [RngMode::Stream, RngMode::Keyed].into_iter().enumerate() {
                        let (ns, ejected) = run_once(&p, scheme, mode, shards);
                        if !warm {
                            best[i] = best[i].min(ns);
                            delivered[i] = ejected;
                        }
                    }
                }
            }
            assert!(
                delivered.iter().all(|&d| d > 0),
                "timed run delivered nothing"
            );
            let npc = |ns: u128| ns as f64 / p.cycles as f64;
            println!(
                "{{\"preset\":\"{}\",\"scheme\":\"{}\",\"shards\":{},\"reps\":{},\
                 \"stream_best_ns_per_cycle\":{:.1},\
                 \"keyed_best_ns_per_cycle\":{:.1},\
                 \"keyed_speedup\":{:.3}}}",
                p.name,
                scheme.label(),
                shards,
                reps,
                npc(best[0]),
                npc(best[1]),
                npc(best[0]) / npc(best[1]),
            );
        }
    }
}
