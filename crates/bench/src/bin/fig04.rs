//! Fig 4: power consumed by virtual networks — active vs wasted.
//!
//! Runs the escape-VC (3-virtual-network) configuration on each workload
//! model, feeds the measured flit activity into the DSENT-substitute power
//! model and splits network power into *active* (moving packets) and
//! *wasted* (burned while buffers idle). The paper's takeaway — the vast
//! majority of virtual-network power is wasted — should reproduce.

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::table::{banner, f1, pct, print_table};
use drain_bench::{Scale, Scheme};
use drain_power::{network_model, MechanismKind};
use drain_topology::Topology;
use drain_workloads::{ligra, parsec, AppModel};

/// Returns (active mW, wasted mW, cycles simulated) for one model.
fn measure(app: &AppModel, scale: Scale) -> (f64, f64, u64) {
    let (w, h) = match app.suite {
        drain_workloads::Suite::Ligra => (8u16, 8u16),
        _ => (4, 4),
    };
    let topo = Topology::mesh(w, h);
    let mut sim =
        Scheme::EscapeVc.coherence_sim(&topo, true, app, None, 11, Scheme::DEFAULT_EPOCH);
    sim.run(scale.warmup() + scale.measure());
    let cycles = sim.core().cycle();
    let p = network_model(
        &topo,
        3,
        2,
        MechanismKind::EscapeVc,
        sim.stats().flit_hops,
        cycles,
        1.0,
    );
    (p.active_mw, p.wasted_mw, cycles)
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 4",
        "virtual-network power: active vs wasted (escape-VC 3-VNet config)",
        scale,
    );
    let mut engine = SweepEngine::new("fig04", scale);
    let apps: Vec<_> = parsec().into_iter().chain(ligra()).collect();
    let apps = match scale {
        Scale::Quick => apps.into_iter().take(6).collect::<Vec<_>>(),
        Scale::Full => apps,
    };
    let results = engine.run_jobs(&apps, |app| measure(app, scale), |_, &(_, _, c)| c);

    let mut rows = Vec::new();
    for (app, &(active, wasted, _)) in apps.iter().zip(&results) {
        let total = active + wasted;
        rows.push(vec![
            app.name.to_string(),
            f1(active),
            f1(wasted),
            pct(wasted / total),
        ]);
    }
    print_table(
        "Fig 4 — network power split (mW)",
        &["app", "active (mW)", "wasted (mW)", "wasted share"],
        &rows,
    );
    write_csv(
        "fig04",
        &["app", "active_mw", "wasted_mw", "wasted_share"],
        &rows,
    );
    println!("\nPaper takeaway: the vast majority of virtual-network power is wasted.");
    engine.finish();
}
