//! Fig 13: PARSEC + SPLASH-2 workload models on a 16-node mesh — packet
//! latency and runtime normalized to escape VCs, 0 and 8 faults.

use drain_bench::apps::{app_jobs, average, AppJob, AppRun};
use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::scheme::DrainVariant;
use drain_bench::table::{banner, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_topology::Topology;
use drain_workloads::{parsec, splash2};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 13",
        "PARSEC/SPLASH-2 models: latency & runtime normalized to EscapeVC (4x4)",
        scale,
    );
    let mut engine = SweepEngine::new("fig13", scale);
    let base = Topology::mesh(4, 4);
    let mut apps = parsec();
    apps.extend(splash2());
    let apps = match scale {
        Scale::Quick => apps.into_iter().take(4).collect::<Vec<_>>(),
        Scale::Full => apps,
    };
    // EscapeVC first: every cell is normalized against it.
    let schemes = [
        Scheme::EscapeVc,
        Scheme::Spin,
        Scheme::Drain(DrainVariant::Vn3Vc2),
        Scheme::Drain(DrainVariant::Vn1Vc6),
        Scheme::Drain(DrainVariant::Vn1Vc2),
    ];
    let mut csv_rows = Vec::new();
    for faults in [0usize, 8] {
        let mut jobs: Vec<AppJob> = Vec::new();
        for app in &apps {
            for s in schemes {
                jobs.extend(app_jobs(s, &base, faults, app, scale));
            }
        }
        let runs = engine.run_jobs(&jobs, AppJob::run, |_, r: &AppRun| r.cycles);

        let mut cells = runs.chunks(scale.seeds()).map(average);
        let mut lat_rows = Vec::new();
        let mut rt_rows = Vec::new();
        for app in &apps {
            let esc = cells.next().expect("grid order");
            let mut lat_row = vec![app.name.to_string()];
            let mut rt_row = vec![app.name.to_string()];
            for _s in &schemes[1..] {
                let r = cells.next().expect("grid order");
                lat_row.push(f3(r.latency / esc.latency));
                rt_row.push(f3(r.runtime / esc.runtime));
            }
            csv_rows.push(
                [faults.to_string(), "latency".into()]
                    .into_iter()
                    .chain(lat_row.iter().cloned())
                    .collect(),
            );
            csv_rows.push(
                [faults.to_string(), "runtime".into()]
                    .into_iter()
                    .chain(rt_row.iter().cloned())
                    .collect(),
            );
            lat_rows.push(lat_row);
            rt_rows.push(rt_row);
        }
        let header = [
            "app",
            "SPIN",
            "DRAIN VN-3,VC-2",
            "DRAIN VN-1,VC-6",
            "DRAIN VN-1,VC-2",
        ];
        print_table(
            &format!("Fig 13 — packet latency vs EscapeVC ({faults} faults)"),
            &header,
            &lat_rows,
        );
        print_table(
            &format!("Fig 13 — runtime vs EscapeVC ({faults} faults)"),
            &header,
            &rt_rows,
        );
    }
    write_csv(
        "fig13",
        &["faults", "metric", "app", "spin", "drain_vn3vc2", "drain_vn1vc6", "drain_vn1vc2"],
        &csv_rows,
    );
    println!("\nPaper shape: DRAIN ≈ SPIN across apps; default DRAIN trades packet latency, not runtime.");
    engine.finish();
}
