//! Fig 13: PARSEC + SPLASH-2 workload models on a 16-node mesh — packet
//! latency and runtime normalized to escape VCs, 0 and 8 faults.

use drain_bench::apps::run_app_averaged;
use drain_bench::scheme::DrainVariant;
use drain_bench::table::{banner, f3, print_table};
use drain_bench::{Scale, Scheme};
use drain_topology::Topology;
use drain_workloads::{parsec, splash2};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 13",
        "PARSEC/SPLASH-2 models: latency & runtime normalized to EscapeVC (4x4)",
        scale,
    );
    let base = Topology::mesh(4, 4);
    let mut apps = parsec();
    apps.extend(splash2());
    let apps = match scale {
        Scale::Quick => apps.into_iter().take(4).collect::<Vec<_>>(),
        Scale::Full => apps,
    };
    let schemes = [
        Scheme::Spin,
        Scheme::Drain(DrainVariant::Vn3Vc2),
        Scheme::Drain(DrainVariant::Vn1Vc6),
        Scheme::Drain(DrainVariant::Vn1Vc2),
    ];
    for faults in [0usize, 8] {
        let mut lat_rows = Vec::new();
        let mut rt_rows = Vec::new();
        for app in &apps {
            let esc = run_app_averaged(Scheme::EscapeVc, &base, faults, app, scale);
            let mut lat_row = vec![app.name.to_string()];
            let mut rt_row = vec![app.name.to_string()];
            for s in schemes {
                let r = run_app_averaged(s, &base, faults, app, scale);
                lat_row.push(f3(r.latency / esc.latency));
                rt_row.push(f3(r.runtime / esc.runtime));
            }
            lat_rows.push(lat_row);
            rt_rows.push(rt_row);
        }
        let header = [
            "app",
            "SPIN",
            "DRAIN VN-3,VC-2",
            "DRAIN VN-1,VC-6",
            "DRAIN VN-1,VC-2",
        ];
        print_table(
            &format!("Fig 13 — packet latency vs EscapeVC ({faults} faults)"),
            &header,
            &lat_rows,
        );
        print_table(
            &format!("Fig 13 — runtime vs EscapeVC ({faults} faults)"),
            &header,
            &rt_rows,
        );
    }
    println!("\nPaper shape: DRAIN ≈ SPIN across apps; default DRAIN trades packet latency, not runtime.");
}
