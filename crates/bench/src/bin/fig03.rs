//! Fig 3: likelihood of deadlocks for PARSEC workload models as links are
//! removed from an 8×8 mesh.
//!
//! Methodology (paper §II-A): fully adaptive routing with **no** deadlock
//! protection; each workload runs several times per fault count with 1 VC
//! and 4 VCs per virtual network; a cell reports the percentage of runs
//! that deadlocked (structural wait-for-graph oracle or progress
//! watchdog).

use drain_bench::engine::SweepEngine;
use drain_bench::report::write_csv;
use drain_bench::table::{banner, print_table};
use drain_bench::Scale;
use drain_coherence::{CoherenceConfig, CoherenceEngine};
use drain_netsim::{Sim, SimConfig};
use drain_topology::{faults::FaultInjector, Topology};
use drain_workloads::{parsec, AppModel, AppTrace};

/// One unprotected run: which model, how many VCs, which fault pattern.
struct Probe<'a> {
    base: &'a Topology,
    app: &'a AppModel,
    vcs_per_vn: usize,
    faults: usize,
    seed: u64,
    budget: u64,
}

impl Probe<'_> {
    /// Returns (deadlocked, cycles simulated).
    fn run(&self) -> (bool, u64) {
        let topo = if self.faults == 0 {
            self.base.clone()
        } else {
            FaultInjector::new(self.seed)
                .remove_links(self.base, self.faults)
                .unwrap()
        };
        let seed = self.seed ^ 0xDEAD;
        let config = SimConfig {
            vns: 3,
            vcs_per_vn: self.vcs_per_vn,
            num_classes: 3,
            inj_queue_capacity: topo.num_nodes() + 8,
            deadlock_check_interval: 512,
            watchdog_threshold: 20_000,
            seed,
            ..SimConfig::default()
        };
        let trace = AppTrace::new(self.app.clone(), topo.num_nodes(), seed ^ 0xF16);
        let engine = CoherenceEngine::new(
            &topo,
            CoherenceConfig {
                seed: seed ^ 0x03,
                ..CoherenceConfig::default()
            },
            Box::new(trace),
        );
        let mut sim = Sim::new(
            topo.clone(),
            config,
            Box::new(drain_netsim::routing::FullyAdaptive::new(&topo)),
            Box::new(drain_netsim::mechanism::NoMechanism),
            Box::new(engine),
        )
        .stop_on_deadlock(true);
        sim.run(self.budget);
        (sim.stats().deadlocked(), sim.core().cycle())
    }
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 3",
        "deadlock likelihood for PARSEC models vs removed links (8x8 mesh, fully adaptive, unprotected)",
        scale,
    );
    let mut engine = SweepEngine::new("fig03", scale);
    let base = Topology::mesh(8, 8);
    let fault_counts: Vec<usize> = match scale {
        Scale::Quick => vec![0, 2, 4, 8, 12],
        Scale::Full => vec![0, 1, 2, 4, 6, 8, 10, 12],
    };
    let runs = scale.seeds().max(3);
    let budget = match scale {
        Scale::Quick => 60_000,
        Scale::Full => 300_000,
    };
    let apps = parsec();

    let mut jobs: Vec<Probe> = Vec::new();
    for vcs in [1usize, 4] {
        for app in &apps {
            for &faults in &fault_counts {
                for r in 0..runs {
                    jobs.push(Probe {
                        base: &base,
                        app,
                        vcs_per_vn: vcs,
                        faults,
                        seed: (faults as u64) << 16 | r as u64,
                        budget,
                    });
                }
            }
        }
    }
    let outcomes = engine.run_jobs(&jobs, Probe::run, |_, &(_, cycles)| cycles);

    let mut cells = outcomes.chunks(runs);
    let mut csv_rows = Vec::new();
    for vcs in [1usize, 4] {
        let mut rows = Vec::new();
        for app in &apps {
            let mut row = vec![app.name.to_string()];
            for &faults in &fault_counts {
                let cell = cells.next().expect("grid order");
                let deadlocked = cell.iter().filter(|&&(d, _)| d).count();
                let share = format!("{}%", 100 * deadlocked / runs);
                csv_rows.push(vec![
                    vcs.to_string(),
                    app.name.to_string(),
                    faults.to_string(),
                    share.clone(),
                ]);
                row.push(share);
            }
            rows.push(row);
        }
        let mut header: Vec<String> = vec!["app".into()];
        header.extend(fault_counts.iter().map(|f| format!("{f} links")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(
            &format!("Fig 3 — % of runs deadlocking ({vcs} VC/VNet)"),
            &header_refs,
            &rows,
        );
    }
    write_csv(
        "fig03",
        &["vcs_per_vn", "app", "faults", "deadlocked_share"],
        &csv_rows,
    );
    engine.finish();
}
