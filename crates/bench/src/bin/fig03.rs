//! Fig 3: likelihood of deadlocks for PARSEC workload models as links are
//! removed from an 8×8 mesh.
//!
//! Methodology (paper §II-A): fully adaptive routing with **no** deadlock
//! protection; each workload runs several times per fault count with 1 VC
//! and 4 VCs per virtual network; a cell reports the percentage of runs
//! that deadlocked (structural wait-for-graph oracle or progress
//! watchdog).

use drain_bench::table::{banner, print_table};
use drain_bench::Scale;
use drain_coherence::{CoherenceConfig, CoherenceEngine};
use drain_netsim::{Sim, SimConfig};
use drain_topology::{faults::FaultInjector, Topology};
use drain_workloads::{parsec, AppModel, AppTrace};

fn run_once(
    topo: &Topology,
    app: &AppModel,
    vcs_per_vn: usize,
    seed: u64,
    budget: u64,
) -> bool {
    let config = SimConfig {
        vns: 3,
        vcs_per_vn,
        num_classes: 3,
        inj_queue_capacity: topo.num_nodes() + 8,
        deadlock_check_interval: 512,
        watchdog_threshold: 20_000,
        seed,
        ..SimConfig::default()
    };
    let trace = AppTrace::new(app.clone(), topo.num_nodes(), seed ^ 0xF16);
    let engine = CoherenceEngine::new(
        topo,
        CoherenceConfig {
            seed: seed ^ 0x03,
            ..CoherenceConfig::default()
        },
        Box::new(trace),
    );
    let mut sim = Sim::new(
        topo.clone(),
        config,
        Box::new(drain_netsim::routing::FullyAdaptive::new(topo)),
        Box::new(drain_netsim::mechanism::NoMechanism),
        Box::new(engine),
    )
    .stop_on_deadlock(true);
    sim.run(budget);
    sim.stats().deadlocked()
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 3",
        "deadlock likelihood for PARSEC models vs removed links (8x8 mesh, fully adaptive, unprotected)",
        scale,
    );
    let base = Topology::mesh(8, 8);
    let fault_counts: Vec<usize> = match scale {
        Scale::Quick => vec![0, 2, 4, 8, 12],
        Scale::Full => vec![0, 1, 2, 4, 6, 8, 10, 12],
    };
    let runs = scale.seeds().max(3);
    let budget = match scale {
        Scale::Quick => 60_000,
        Scale::Full => 300_000,
    };
    for vcs in [1usize, 4] {
        let mut rows = Vec::new();
        for app in parsec() {
            let mut row = vec![app.name.to_string()];
            for &faults in &fault_counts {
                let mut deadlocked = 0;
                for r in 0..runs {
                    let seed = (faults as u64) << 16 | r as u64;
                    let topo = if faults == 0 {
                        base.clone()
                    } else {
                        FaultInjector::new(seed).remove_links(&base, faults).unwrap()
                    };
                    if run_once(&topo, &app, vcs, seed ^ 0xDEAD, budget) {
                        deadlocked += 1;
                    }
                }
                row.push(format!("{}%", 100 * deadlocked / runs));
            }
            rows.push(row);
        }
        let mut header: Vec<String> = vec!["app".into()];
        header.extend(fault_counts.iter().map(|f| format!("{f} links")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(
            &format!("Fig 3 — % of runs deadlocking ({vcs} VC/VNet)"),
            &header_refs,
            &rows,
        );
    }
}
