//! A small scoped-thread worker pool for fanning independent simulation
//! jobs across cores.
//!
//! The build environment has no crates.io access, so instead of `rayon`
//! this is ~80 lines over [`std::thread::scope`]: workers pull job
//! indices from a shared atomic counter and write results into the slot
//! matching the job's input position. Output order therefore equals input
//! order regardless of scheduling, which — together with each job
//! carrying its own RNG seed — makes parallel runs bit-identical to
//! serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Worker-thread count: `DRAIN_THREADS` when set (≥ 1), otherwise the
/// machine's available parallelism.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("DRAIN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-job timing reported by the pool alongside each result.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobTiming {
    /// Wall-clock duration of the job body itself.
    pub wall: Duration,
    /// Queue wait: time between the pool starting and a worker picking
    /// this job up. With more jobs than workers, later jobs wait longer;
    /// the sweep engine aggregates this into a queue-pressure metric.
    pub wait: Duration,
}

/// Runs `f` over every job on up to `threads` workers; `results[i]`
/// always corresponds to `jobs[i]`. Each result is paired with the job's
/// [`JobTiming`].
///
/// With `threads <= 1` (or ≤ 1 job) everything runs in the calling
/// thread — the code path is otherwise identical.
pub fn run_indexed<J, R, F>(jobs: &[J], threads: usize, f: F) -> Vec<(R, JobTiming)>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    run_indexed_progress(jobs, threads, f, |_, _| {})
}

/// [`run_indexed`] with a completion callback: `progress(done, total)` is
/// invoked after every finished job (from whichever thread finished it, so
/// the callback must be `Sync`; completion order is scheduling-dependent
/// but `done` counts monotonically). Results are unaffected — the sweep
/// engine uses this for its live stderr progress line.
pub fn run_indexed_progress<J, R, F, P>(
    jobs: &[J],
    threads: usize,
    f: F,
    progress: P,
) -> Vec<(R, JobTiming)>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
    P: Fn(usize, usize) + Sync,
{
    let epoch = Instant::now();
    let timed = |job: &J| {
        let t0 = Instant::now();
        let r = f(job);
        (
            r,
            JobTiming {
                wall: t0.elapsed(),
                wait: t0.duration_since(epoch),
            },
        )
    };

    if threads <= 1 || jobs.len() <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(i, job)| {
                let out = timed(job);
                progress(i + 1, jobs.len());
                out
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<(R, JobTiming)>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let out = timed(&jobs[i]);
                slots.lock().expect("runner mutex poisoned")[i] = Some(out);
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(finished, jobs.len());
            });
        }
    });

    slots
        .into_inner()
        .expect("runner mutex poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = run_indexed(&jobs, 8, |&j| j * j);
        let values: Vec<u64> = out.into_iter().map(|(v, _)| v).collect();
        assert_eq!(values, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        let jobs: Vec<u32> = (0..37).collect();
        let work = |&j: &u32| {
            // Deterministic per-job computation seeded only by the job.
            let mut x = j as u64 ^ 0xD6E8FEB8;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(j as u64);
            }
            x
        };
        let serial: Vec<u64> = run_indexed(&jobs, 1, work).into_iter().map(|(v, _)| v).collect();
        let parallel: Vec<u64> = run_indexed(&jobs, 7, work).into_iter().map(|(v, _)| v).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert!(run_indexed(&empty, 4, |&j| j).is_empty());
        let one = vec![9u8];
        assert_eq!(run_indexed(&one, 4, |&j| j)[0].0, 9);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs = vec![1u8, 2, 3];
        let out = run_indexed(&jobs, 64, |&j| j + 1);
        assert_eq!(out.iter().map(|(v, _)| *v).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn job_timing_waits_are_sane() {
        let jobs: Vec<u32> = (0..16).collect();
        for threads in [1usize, 4] {
            for (_, t) in run_indexed(&jobs, threads, |&j| {
                std::hint::black_box((0..(j as u64 + 1) * 1000).sum::<u64>())
            }) {
                // A job cannot have waited longer than the whole run; the
                // wait is measured from pool start so it is always finite
                // and non-panicking. Wall time is positive for real work.
                assert!(t.wait.as_secs() < 60);
                assert!(t.wall <= Duration::from_secs(60));
            }
        }
    }

    #[test]
    fn progress_fires_once_per_job_and_reaches_total() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1usize, 6] {
            let jobs: Vec<u32> = (0..25).collect();
            let calls = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            let out = run_indexed_progress(
                &jobs,
                threads,
                |&j| j * 2,
                |done, total| {
                    assert_eq!(total, 25);
                    calls.fetch_add(1, Ordering::Relaxed);
                    peak.fetch_max(done, Ordering::Relaxed);
                },
            );
            assert_eq!(out.len(), 25);
            assert_eq!(calls.load(Ordering::Relaxed), 25, "threads={threads}");
            assert_eq!(peak.load(Ordering::Relaxed), 25, "threads={threads}");
        }
    }
}
