//! Experiment scale control.

/// How much work an experiment run does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Reduced seeds / cycles (CI-friendly; the default).
    Quick,
    /// The paper's methodology: 10 fault patterns per point, long
    /// measurement windows.
    Full,
}

impl Scale {
    /// Reads `DRAIN_SCALE` (`quick` | `full`); defaults to `Quick`.
    pub fn from_env() -> Scale {
        match std::env::var("DRAIN_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Fault patterns (seeds) per configuration point (paper: 10).
    pub fn seeds(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }

    /// Warmup cycles before the measurement window opens.
    pub fn warmup(self) -> u64 {
        match self {
            Scale::Quick => 3_000,
            Scale::Full => 20_000,
        }
    }

    /// Measurement cycles.
    pub fn measure(self) -> u64 {
        match self {
            Scale::Quick => 8_000,
            Scale::Full => 60_000,
        }
    }

    /// Cycle budget for closed-loop (application) runs.
    pub fn app_budget(self) -> u64 {
        match self {
            Scale::Quick => 150_000,
            Scale::Full => 2_000_000,
        }
    }

    /// Per-core transaction quota for closed-loop runs.
    pub fn app_quota(self) -> u64 {
        match self {
            Scale::Quick => 300,
            Scale::Full => 5_000,
        }
    }

    /// Injection rates swept for saturation search.
    pub fn rate_sweep(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![0.02, 0.05, 0.10, 0.16, 0.24, 0.34, 0.44],
            Scale::Full => vec![
                0.02, 0.04, 0.06, 0.09, 0.12, 0.16, 0.20, 0.26, 0.32, 0.40, 0.48, 0.56,
            ],
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Scale::Quick.seeds() < Scale::Full.seeds());
        assert!(Scale::Quick.measure() < Scale::Full.measure());
        assert!(Scale::Quick.rate_sweep().len() <= Scale::Full.rate_sweep().len());
    }

    #[test]
    fn env_parsing_defaults_to_quick() {
        // Do not mutate the environment (tests run in parallel); just
        // check the default path with the variable absent or unexpected.
        assert_eq!(Scale::from_env().seeds(), Scale::from_env().seeds());
    }
}
