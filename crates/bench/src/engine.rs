//! The parallel sweep engine: expands figure grids into [`PointSpec`]
//! jobs, serves them from the [result cache](crate::cache) where
//! possible, fans the misses across worker threads, and accounts
//! everything into a [`RunReport`].
//!
//! ```no_run
//! use drain_bench::engine::SweepEngine;
//! use drain_bench::sweep::plan::TopoSpec;
//! use drain_bench::{Scale, Scheme};
//! use drain_netsim::traffic::SyntheticPattern;
//!
//! let mut engine = SweepEngine::new("fig10", Scale::Quick);
//! let points = engine.load_sweep(
//!     Scheme::Spin,
//!     &TopoSpec::Mesh { w: 8, h: 8 },
//!     &SyntheticPattern::UniformRandom,
//!     /*seed*/ 1,
//!     Scheme::DEFAULT_EPOCH,
//! );
//! let report = engine.finish(); // writes results/fig10.run.json
//! println!("{}", report.summary());
//! ```
//!
//! Determinism: a [`PointSpec`] fully determines its [`Point`] (topology,
//! seeds, scale — everything), and the runner writes results by input
//! index, so engine output is bit-identical to the serial
//! [`crate::sweep::load_sweep`] path no matter the thread count.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::cache::ResultCache;
use crate::report::RunReport;
use crate::runner;
use crate::scale::Scale;
use crate::scheme::Scheme;
use crate::sweep::plan::{load_sweep_specs, PointSpec, TopoSpec};
use crate::sweep::Point;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::MetricsSnapshot;

/// Whether the engine should paint a live progress line on stderr:
/// `DRAIN_PROGRESS=0` disables it, any other value forces it on, and when
/// unset it follows whether stderr is a terminal (so redirected/CI runs
/// stay clean).
fn progress_enabled() -> bool {
    match std::env::var("DRAIN_PROGRESS") {
        Ok(v) => v.trim() != "0",
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// A `\r`-rewritten stderr progress line for one batch of jobs; a no-op
/// when [`progress_enabled`] says so.
struct Progress {
    enabled: bool,
    label: String,
    cached: usize,
    threads: usize,
    started: Instant,
    /// Busy wall nanoseconds accumulated by finished jobs (written by the
    /// worker that finished each job, read by `tick` for the live
    /// utilization figure).
    busy_nanos: AtomicU64,
}

impl Progress {
    fn new(label: &str, cached: usize, threads: usize) -> Progress {
        Progress {
            enabled: progress_enabled(),
            label: label.to_string(),
            cached,
            threads: threads.max(1),
            started: Instant::now(),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// Credits one finished job's wall time to the busy counter.
    fn note_busy(&self, nanos: u64) {
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Repaints the line; called from worker threads as jobs finish (each
    /// call writes under the stderr lock, so lines never interleave).
    fn tick(&self, done: usize, total: usize) {
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r\x1b[K[{}] {done}/{total} simulated",
            self.label
        );
        if self.cached > 0 {
            let _ = write!(err, ", {} cached", self.cached);
        }
        let _ = write!(err, " | {elapsed:.1}s");
        if elapsed > 0.0 && done > 0 {
            let busy = self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
            let util = (busy / (elapsed * self.threads as f64) * 100.0).min(100.0);
            let _ = write!(err, " | {:.1} pt/s | {util:.0}% util", done as f64 / elapsed);
        }
        let _ = err.flush();
    }

    /// Clears the line so subsequent output starts on a clean row.
    fn clear(&self) {
        if !self.enabled {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r\x1b[K");
        let _ = err.flush();
    }
}

/// Parallel, cached executor for one figure's experiments.
#[derive(Debug)]
pub struct SweepEngine {
    figure: String,
    scale: Scale,
    threads: usize,
    cache: ResultCache,
    started: Instant,
    total_points: usize,
    simulated: usize,
    cache_hits: usize,
    sim_cycles: u64,
    busy_secs: f64,
    max_job_ms: f64,
    queue_wait_secs: f64,
}

impl SweepEngine {
    /// Engine with environment defaults: `DRAIN_THREADS` workers and the
    /// `results/cache` result cache (`DRAIN_NO_CACHE`/`DRAIN_CACHE_DIR`
    /// honoured).
    pub fn new(figure: &str, scale: Scale) -> SweepEngine {
        SweepEngine::with(figure, scale, runner::worker_threads(), ResultCache::from_env())
    }

    /// Engine with explicit thread count and cache (tests; forced-serial
    /// or forced-cold runs).
    pub fn with(figure: &str, scale: Scale, threads: usize, cache: ResultCache) -> SweepEngine {
        SweepEngine {
            figure: figure.to_string(),
            scale,
            threads: threads.max(1),
            cache,
            started: Instant::now(),
            total_points: 0,
            simulated: 0,
            cache_hits: 0,
            sim_cycles: 0,
            busy_secs: 0.0,
            max_job_ms: 0.0,
            queue_wait_secs: 0.0,
        }
    }

    /// Worker threads this engine fans jobs across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every spec (cache first, then parallel simulation of the
    /// misses); `result[i]` corresponds to `specs[i]`.
    pub fn run_points(&mut self, specs: &[PointSpec]) -> Vec<Point> {
        self.total_points += specs.len();

        let mut results: Vec<Option<Point>> = specs.iter().map(|s| self.cache.lookup(s)).collect();
        let miss_idx: Vec<usize> = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        self.cache_hits += specs.len() - miss_idx.len();

        let misses: Vec<&PointSpec> = miss_idx.iter().map(|&i| &specs[i]).collect();
        let progress = Progress::new(&self.figure, specs.len() - miss_idx.len(), self.threads);
        let simulated = runner::run_indexed_progress(
            &misses,
            self.threads,
            |spec| {
                let t0 = Instant::now();
                let p = spec.run();
                progress.note_busy(t0.elapsed().as_nanos() as u64);
                p
            },
            |done, total| progress.tick(done, total),
        );
        progress.clear();

        for (&i, (point, timing)) in miss_idx.iter().zip(simulated) {
            self.cache.store(&specs[i], &point);
            self.simulated += 1;
            self.sim_cycles += specs[i].sim_cycles();
            let ms = timing.wall.as_secs_f64() * 1e3;
            self.busy_secs += timing.wall.as_secs_f64();
            self.queue_wait_secs += timing.wait.as_secs_f64();
            if ms > self.max_job_ms {
                self.max_job_ms = ms;
            }
            results[i] = Some(point);
        }

        results.into_iter().map(|r| r.expect("all slots filled")).collect()
    }

    /// Parallel, cached equivalent of [`crate::sweep::load_sweep`]: one
    /// point per rate in the scale's sweep.
    pub fn load_sweep(
        &mut self,
        scheme: Scheme,
        topo: &TopoSpec,
        pattern: &SyntheticPattern,
        seed: u64,
        epoch: u64,
    ) -> Vec<Point> {
        let specs = load_sweep_specs(scheme, topo, pattern, seed, epoch, self.scale);
        self.run_points(&specs)
    }

    /// Fans arbitrary non-cacheable jobs (application-model runs,
    /// deadlock probes) across the worker pool; `result[i]` corresponds
    /// to `jobs[i]`. `sim_cycles(job, result)` feeds the throughput
    /// metrics (results know how many cycles actually ran — closed-loop
    /// jobs stop early on quota or deadlock).
    pub fn run_jobs<J, R, F, C>(&mut self, jobs: &[J], f: F, sim_cycles: C) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
        C: Fn(&J, &R) -> u64,
    {
        self.total_points += jobs.len();
        self.simulated += jobs.len();
        let progress = Progress::new(&self.figure, 0, self.threads);
        let out = runner::run_indexed_progress(
            jobs,
            self.threads,
            |job| {
                let t0 = Instant::now();
                let r = f(job);
                progress.note_busy(t0.elapsed().as_nanos() as u64);
                r
            },
            |done, total| progress.tick(done, total),
        );
        progress.clear();
        out.into_iter()
            .enumerate()
            .map(|(i, (r, timing))| {
                self.sim_cycles += sim_cycles(&jobs[i], &r);
                let ms = timing.wall.as_secs_f64() * 1e3;
                self.busy_secs += timing.wall.as_secs_f64();
                self.queue_wait_secs += timing.wait.as_secs_f64();
                if ms > self.max_job_ms {
                    self.max_job_ms = ms;
                }
                r
            })
            .collect()
    }

    /// Closes the run: builds the [`RunReport`], writes
    /// `results/<figure>.run.json`, prints the one-line summary, and
    /// returns the report.
    pub fn finish(self) -> RunReport {
        let report = self.report();
        report.write();
        println!("\n{}", report.summary());
        report
    }

    /// Builds the [`RunReport`] without writing or printing anything.
    pub fn report(&self) -> RunReport {
        let wall = self.started.elapsed().as_secs_f64();
        RunReport {
            figure: self.figure.clone(),
            scale: self.scale.label().to_string(),
            threads: self.threads,
            total_points: self.total_points,
            simulated: self.simulated,
            cache_hits: self.cache_hits,
            sim_cycles: self.sim_cycles,
            wall_secs: wall,
            busy_secs: self.busy_secs,
            sim_cycles_per_sec: if wall > 0.0 {
                self.sim_cycles as f64 / wall
            } else {
                0.0
            },
            points_per_sec: if wall > 0.0 {
                self.total_points as f64 / wall
            } else {
                0.0
            },
            max_point_wall_ms: self.max_job_ms,
            mean_point_wall_ms: if self.simulated > 0 {
                self.busy_secs * 1e3 / self.simulated as f64
            } else {
                0.0
            },
            queue_wait_secs: self.queue_wait_secs,
            worker_utilization: if wall > 0.0 {
                (self.busy_secs / (wall * self.threads as f64)).min(1.0)
            } else {
                0.0
            },
        }
    }

    /// The engine's own counters as a mergeable [`MetricsSnapshot`] under
    /// the `drain_sweep_` namespace — per-job cache hit/miss, queue wait,
    /// worker utilization and throughput, ready to merge with per-point
    /// simulation snapshots and expose via Prometheus or JSONL.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let r = self.report();
        let mut m = MetricsSnapshot::new();
        m.counter_labeled(
            "drain_sweep_points_total",
            "Sweep points by source",
            &[("source", "simulated")],
            r.simulated as u64,
        );
        m.counter_labeled(
            "drain_sweep_points_total",
            "Sweep points by source",
            &[("source", "cached")],
            r.cache_hits as u64,
        );
        m.counter(
            "drain_sweep_sim_cycles_total",
            "Simulated cycles across sweep points",
            r.sim_cycles,
        );
        m.gauge(
            "drain_sweep_busy_seconds_total",
            "Summed job wall seconds across workers",
            r.busy_secs,
        );
        m.gauge(
            "drain_sweep_queue_wait_seconds_total",
            "Summed queue wait seconds across jobs",
            r.queue_wait_secs,
        );
        m.gauge(
            "drain_sweep_worker_utilization",
            "Busy fraction of the worker pool over the run",
            r.worker_utilization,
        );
        m.gauge(
            "drain_sweep_points_per_sec",
            "Sweep points completed per wall second",
            r.points_per_sec,
        );
        m.gauge(
            "drain_sweep_sim_cycles_per_sec",
            "Simulated cycles per wall second",
            r.sim_cycles_per_sec,
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep;

    fn tmp_cache(tag: &str) -> (std::path::PathBuf, ResultCache) {
        let dir = std::env::temp_dir().join(format!(
            "drain-engine-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (dir.clone(), ResultCache::at(dir))
    }

    #[test]
    fn engine_sweep_matches_serial_sweep() {
        let topo_spec = TopoSpec::Mesh { w: 4, h: 4 };
        let pattern = SyntheticPattern::UniformRandom;
        let serial = sweep::load_sweep(
            Scheme::Spin,
            &topo_spec.build(),
            true,
            &pattern,
            3,
            Scheme::DEFAULT_EPOCH,
            Scale::Quick,
        );
        let mut engine =
            SweepEngine::with("enginetest", Scale::Quick, 4, ResultCache::disabled());
        let parallel = engine.load_sweep(
            Scheme::Spin,
            &topo_spec,
            &pattern,
            3,
            Scheme::DEFAULT_EPOCH,
        );
        assert_eq!(serial, parallel);
        let report = engine.report();
        assert_eq!(report.total_points, serial.len());
        assert_eq!(report.simulated, serial.len());
        assert_eq!(report.cache_hits, 0);
        assert!(report.sim_cycles > 0);
    }

    #[test]
    fn warm_cache_rerun_simulates_nothing() {
        let (dir, cache) = tmp_cache("warm");
        let topo_spec = TopoSpec::Mesh { w: 4, h: 4 };
        let pattern = SyntheticPattern::Neighbor;

        let mut cold = SweepEngine::with("coldrun", Scale::Quick, 2, cache);
        let first = cold.load_sweep(Scheme::Spin, &topo_spec, &pattern, 5, Scheme::DEFAULT_EPOCH);
        let cold_report = cold.report();
        assert_eq!(cold_report.simulated, first.len());
        assert_eq!(cold_report.cache_hits, 0);

        let mut warm = SweepEngine::with("warmrun", Scale::Quick, 2, ResultCache::at(&dir));
        let second = warm.load_sweep(Scheme::Spin, &topo_spec, &pattern, 5, Scheme::DEFAULT_EPOCH);
        let warm_report = warm.report();
        assert_eq!(second, first, "cached points must be bit-identical");
        assert_eq!(warm_report.simulated, 0, "warm rerun must simulate nothing");
        assert_eq!(warm_report.cache_hits, first.len());
        assert_eq!(warm_report.sim_cycles, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_jobs_preserves_order_and_counts() {
        let mut engine =
            SweepEngine::with("jobs", Scale::Quick, 3, ResultCache::disabled());
        let jobs: Vec<u64> = (0..20).collect();
        let out = engine.run_jobs(&jobs, |&j| j + 100, |_, _| 10);
        assert_eq!(out, (100..120).collect::<Vec<u64>>());
        let report = engine.report();
        assert_eq!(report.total_points, 20);
        assert_eq!(report.simulated, 20);
        assert_eq!(report.sim_cycles, 200);
    }
}
