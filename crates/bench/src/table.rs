//! Markdown table printing for experiment outputs.

/// Prints a markdown table: header row, separator, then rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{x:.1}")
    }
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.1}%", x * 100.0)
    }
}

/// Prints the standard experiment banner (scale, scope).
pub fn banner(figure: &str, description: &str, scale: crate::Scale) {
    println!("# {figure} — {description}");
    println!("(scale: {}; set DRAIN_SCALE=full for the paper's methodology)", scale.label());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f1(12.345), "12.3");
        assert_eq!(pct(0.7761), "77.6%");
        assert_eq!(f3(f64::NAN), "n/a");
    }
}
