//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/figNN.rs` binary reproduces one paper figure/table and
//! prints the same rows/series as a markdown table. All binaries honour
//! the `DRAIN_SCALE` environment variable:
//!
//! * `quick` (default) — reduced seeds and cycle counts, minutes total;
//! * `full` — the paper's 10 fault patterns per point and long windows.
//!
//! Runs are parallel and cached: every synthetic operating point is an
//! independent [`sweep::plan::PointSpec`] job that the
//! [`engine::SweepEngine`] fans across `DRAIN_THREADS` workers and
//! memoizes in a content-addressed [`cache`] under `results/cache/`, so
//! reruns only simulate missing points. Each figure writes its CSV plus a
//! [`report::RunReport`] JSON under `results/`.
//!
//! The building blocks live here:
//!
//! * [`scale`] — run-length/seed policy (`DRAIN_SCALE`).
//! * [`scheme`] — assembling each evaluated scheme (escape VC, SPIN, the
//!   three DRAIN configurations, ideal, up*/down*) for synthetic and
//!   coherence workloads.
//! * [`sweep`] — load–latency sweeps and saturation-throughput search;
//!   [`sweep::plan`] expands figure grids into cacheable job specs.
//! * [`runner`] — the scoped-thread worker pool (order-preserving, so
//!   parallel output is bit-identical to serial).
//! * [`cache`] — the content-addressed on-disk result cache.
//! * [`engine`] — ties plan + runner + cache together per figure.
//! * [`report`] — the experiment/metrics contract ([`report::RunReport`],
//!   CSV emission).
//! * [`json`] — dependency-free JSON used by cache and reports.
//! * [`serve`] — a tiny blocking HTTP listener exposing Prometheus-format
//!   metric snapshots (see the `drain_metrics` binary).
//! * [`apps`] — closed-loop application workload runs.
//! * [`table`] — markdown row printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod cache;
pub mod engine;
pub mod json;
pub mod oracle;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scheme;
pub mod serve;
pub mod sweep;
pub mod table;

pub use scale::Scale;
pub use scheme::{Scheme, Workload};
