//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/figNN.rs` binary reproduces one paper figure/table and
//! prints the same rows/series as a markdown table. All binaries honour
//! the `DRAIN_SCALE` environment variable:
//!
//! * `quick` (default) — reduced seeds and cycle counts, minutes total;
//! * `full` — the paper's 10 fault patterns per point and long windows.
//!
//! The building blocks live here:
//!
//! * [`scale`] — run-length/seed policy.
//! * [`scheme`] — assembling each evaluated scheme (escape VC, SPIN, the
//!   three DRAIN configurations, ideal, up*/down*) for synthetic and
//!   coherence workloads.
//! * [`sweep`] — load–latency sweeps and saturation-throughput search.
//! * [`table`] — markdown row printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod scale;
pub mod scheme;
pub mod sweep;
pub mod table;

pub use scale::Scale;
pub use scheme::{Scheme, Workload};
