//! The harness's experiment/metrics contract: every figure binary emits a
//! machine-readable CSV of its table **and** a [`RunReport`] JSON with
//! run-level metrics, next to each other under `results/`.
//!
//! For figure `figNN` the artifacts are:
//!
//! * `results/figNN.csv` — the figure's rows, exactly the values printed
//!   in the markdown table;
//! * `results/figNN.run.json` — the [`RunReport`] (see field docs for
//!   units).
//!
//! The output directory is `results/` under the working directory, or
//! `DRAIN_RESULTS_DIR` when set.

use std::fs;
use std::path::PathBuf;

use crate::json::{self, Json};

/// Output directory for figure artifacts (`DRAIN_RESULTS_DIR` or
/// `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var("DRAIN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Run-level metrics for one figure invocation.
///
/// Field units:
///
/// * `total_points` / `simulated` / `cache_hits` — operating points:
///   `total_points = simulated + cache_hits`; for figures that fan out
///   non-cacheable jobs (application models), those jobs count as
///   `simulated`.
/// * `sim_cycles` — total *simulated* network cycles across all simulated
///   jobs (warmup + measurement windows; 0 for analytic figures).
/// * `wall_secs` — end-to-end wall-clock seconds for the figure.
/// * `busy_secs` — sum of per-job wall-clock seconds across workers
///   (`busy_secs / wall_secs` ≈ effective parallel speedup).
/// * `sim_cycles_per_sec` — `sim_cycles / wall_secs`.
/// * `points_per_sec` — `total_points / wall_secs`.
/// * `max_point_wall_ms` / `mean_point_wall_ms` — per-job wall-clock
///   milliseconds over simulated jobs (0 when everything was cached).
/// * `queue_wait_secs` — summed seconds jobs spent queued before a worker
///   picked them up.
/// * `worker_utilization` — `busy_secs / (wall_secs * threads)` in
///   `[0, 1]`: how busy the pool was on average.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Figure name (`fig10`, `table1`, …).
    pub figure: String,
    /// Scale label (`quick` / `full`).
    pub scale: String,
    /// Worker threads the engine used.
    pub threads: usize,
    /// Total operating points requested.
    pub total_points: usize,
    /// Points actually simulated this run.
    pub simulated: usize,
    /// Points served from the result cache.
    pub cache_hits: usize,
    /// Simulated cycles across simulated jobs.
    pub sim_cycles: u64,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// Summed per-job wall-clock seconds.
    pub busy_secs: f64,
    /// Simulation throughput (cycles/second of wall time).
    pub sim_cycles_per_sec: f64,
    /// Point throughput (points/second of wall time).
    pub points_per_sec: f64,
    /// Slowest single job (milliseconds).
    pub max_point_wall_ms: f64,
    /// Mean job duration (milliseconds).
    pub mean_point_wall_ms: f64,
    /// Summed queue-wait seconds across jobs (time between the pool
    /// starting and each job being picked up by a worker).
    pub queue_wait_secs: f64,
    /// Busy fraction of the worker pool over the run:
    /// `busy_secs / (wall_secs * threads)`, clamped to `[0, 1]`.
    pub worker_utilization: f64,
}

impl RunReport {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("figure", Json::Str(self.figure.clone())),
            ("scale", Json::Str(self.scale.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("total_points", Json::Num(self.total_points as f64)),
            ("simulated", Json::Num(self.simulated as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("sim_cycles", Json::Num(self.sim_cycles as f64)),
            ("wall_secs", json::num(self.wall_secs)),
            ("busy_secs", json::num(self.busy_secs)),
            ("sim_cycles_per_sec", json::num(self.sim_cycles_per_sec)),
            ("points_per_sec", json::num(self.points_per_sec)),
            ("max_point_wall_ms", json::num(self.max_point_wall_ms)),
            ("mean_point_wall_ms", json::num(self.mean_point_wall_ms)),
            ("queue_wait_secs", json::num(self.queue_wait_secs)),
            ("worker_utilization", json::num(self.worker_utilization)),
        ])
        .to_string()
    }

    /// Writes `results/<figure>.run.json`; returns the path. IO errors
    /// are reported to stderr and swallowed (artifacts are best-effort).
    pub fn write(&self) -> Option<PathBuf> {
        self.write_in(&results_dir())
    }

    /// [`RunReport::write`] into an explicit directory.
    pub fn write_in(&self, dir: &std::path::Path) -> Option<PathBuf> {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return None;
        }
        let path = dir.join(format!("{}.run.json", self.figure));
        match fs::write(&path, self.to_json()) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {path:?}: {e}");
                None
            }
        }
    }

    /// One-line human summary (printed at the end of each figure).
    pub fn summary(&self) -> String {
        format!(
            "{}: {} points ({} simulated, {} cached) on {} threads in {:.2}s — {:.2e} sim-cycles/s, speedup ~{:.1}x",
            self.figure,
            self.total_points,
            self.simulated,
            self.cache_hits,
            self.threads,
            self.wall_secs,
            self.sim_cycles_per_sec,
            if self.wall_secs > 0.0 {
                self.busy_secs / self.wall_secs
            } else {
                0.0
            },
        )
    }
}

/// Writes `results/<name>.csv` with the same rows a figure prints as
/// markdown. Cells containing commas/quotes/newlines are quoted per RFC
/// 4180. Returns the path (best-effort, like [`RunReport::write`]).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    write_csv_in(&results_dir(), name, header, rows)
}

/// [`write_csv`] into an explicit directory.
pub fn write_csv_in(
    dir: &std::path::Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> Option<PathBuf> {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&csv_row(header.iter().map(|s| s.to_string()).collect::<Vec<_>>().as_slice()));
    for row in rows {
        out.push_str(&csv_row(row));
    }
    match fs::write(&path, out) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {path:?}: {e}");
            None
        }
    }
}

fn csv_row(cells: &[String]) -> String {
    let escaped: Vec<String> = cells.iter().map(|c| csv_cell(c)).collect();
    format!("{}\n", escaped.join(","))
}

fn csv_cell(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            figure: "figtest".into(),
            scale: "quick".into(),
            threads: 4,
            total_points: 10,
            simulated: 6,
            cache_hits: 4,
            sim_cycles: 66_000,
            wall_secs: 2.0,
            busy_secs: 6.0,
            sim_cycles_per_sec: 33_000.0,
            points_per_sec: 5.0,
            max_point_wall_ms: 900.0,
            mean_point_wall_ms: 600.0,
            queue_wait_secs: 1.5,
            worker_utilization: 0.75,
        }
    }

    #[test]
    fn report_json_parses_back() {
        let v = crate::json::parse(&report().to_json()).unwrap();
        assert_eq!(v.get("figure").unwrap().as_str(), Some("figtest"));
        assert_eq!(v.get("cache_hits").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("sim_cycles").unwrap().as_u64(), Some(66_000));
        assert_eq!(v.get("wall_secs").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn summary_mentions_cache_and_speedup() {
        let s = report().summary();
        assert!(s.contains("4 cached"), "{s}");
        assert!(s.contains("~3.0x"), "{s}");
    }

    #[test]
    fn csv_cells_escape_specials() {
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn csv_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("drain-csv-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_csv_in(
            &dir,
            "unit",
            &["a", "b"],
            &[vec!["1".into(), "x,y".into()], vec!["2".into(), "z".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,\"x,y\"\n2,z\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_report_write_in_creates_named_file() {
        let dir = std::env::temp_dir().join(format!("drain-report-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = report().write_in(&dir).unwrap();
        assert!(path.ends_with("figtest.run.json"));
        let v = crate::json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(v.get("total_points").unwrap().as_u64(), Some(10));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
