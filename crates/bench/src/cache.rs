//! Content-addressed on-disk result cache for sweep points.
//!
//! Every [`PointSpec`] hashes its [canonical key
//! string](PointSpec::key_material) — scheme, topology, pattern, rate,
//! seed, epoch, hops, scale — plus [`HARNESS_VERSION`] into a 64-bit
//! FNV-1a digest; the measured [`Point`] is stored as
//! `results/cache/<hex-digest>.json`. Re-running a figure only simulates
//! points whose digests are absent, so a warm rerun executes **zero** new
//! simulations.
//!
//! Invalidation:
//! * changing any spec field changes the digest (unit-tested in
//!   [`crate::sweep::plan`]);
//! * bumping [`HARNESS_VERSION`] (do this whenever simulator behaviour
//!   changes!) orphans every old entry;
//! * `DRAIN_NO_CACHE=1` disables the cache for one run (force-cold);
//! * deleting `results/cache/` is always safe.
//!
//! Stored entries embed the full key string, which is compared on load —
//! a hash collision or a stale schema therefore degrades to a cache miss,
//! never to a wrong result.

use std::fs;
use std::path::{Path, PathBuf};

use crate::json::{self, Json};
use crate::sweep::plan::PointSpec;
use crate::sweep::Point;

/// Version tag mixed into every cache key. **Bump on any change that
/// alters simulation results** (simulator behaviour, scheme assembly,
/// RNG streams, scale parameters).
pub const HARNESS_VERSION: u32 = 1;

/// 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The full key string for a spec (harness version + spec fields).
pub fn key_string(spec: &PointSpec) -> String {
    format!("v{HARNESS_VERSION}|{}", spec.key_material())
}

/// The on-disk digest (filename stem) for a spec.
pub fn digest(spec: &PointSpec) -> String {
    format!("{:016x}", fnv1a64(key_string(spec).as_bytes()))
}

/// Handle to the cache directory (or to a disabled cache).
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// Default directory: `results/cache` under the working directory.
    pub const DEFAULT_DIR: &'static str = "results/cache";

    /// Cache honouring the environment: `DRAIN_NO_CACHE=1` disables it,
    /// `DRAIN_CACHE_DIR` overrides the location.
    pub fn from_env() -> ResultCache {
        if std::env::var("DRAIN_NO_CACHE").map(|v| v == "1").unwrap_or(false) {
            return ResultCache::disabled();
        }
        let dir = std::env::var("DRAIN_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from(Self::DEFAULT_DIR));
        ResultCache::at(dir)
    }

    /// Cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache {
            dir: Some(dir.into()),
        }
    }

    /// A cache that never hits and never stores.
    pub fn disabled() -> ResultCache {
        ResultCache { dir: None }
    }

    /// Whether lookups/stores can ever succeed.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    fn entry_path(&self, spec: &PointSpec) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", digest(spec))))
    }

    /// Returns the cached point for `spec`, or `None` on miss (including
    /// unreadable/mismatched entries, which degrade to misses).
    pub fn lookup(&self, spec: &PointSpec) -> Option<Point> {
        let path = self.entry_path(spec)?;
        let text = fs::read_to_string(path).ok()?;
        read_entry(&text, &key_string(spec))
    }

    /// Persists `point` under `spec`'s digest. IO errors are reported to
    /// stderr but never fail the run (the cache is an accelerator, not a
    /// dependency).
    pub fn store(&self, spec: &PointSpec, point: &Point) {
        let Some(path) = self.entry_path(spec) else {
            return;
        };
        if let Some(parent) = path.parent() {
            if let Err(e) = fs::create_dir_all(parent) {
                eprintln!("warning: cannot create cache dir {parent:?}: {e}");
                return;
            }
        }
        let text = write_entry(&key_string(spec), point);
        if let Err(e) = write_atomically(&path, &text) {
            eprintln!("warning: cannot write cache entry {path:?}: {e}");
        }
    }
}

/// Writes via a temp file + rename so concurrent runs never observe a
/// truncated entry.
fn write_atomically(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

fn write_entry(key: &str, point: &Point) -> String {
    Json::obj([
        ("harness_version", Json::Num(HARNESS_VERSION as f64)),
        ("key", Json::Str(key.to_string())),
        (
            "point",
            Json::obj([
                ("offered", json::num(point.offered)),
                ("throughput", json::num(point.throughput)),
                ("latency", json::num(point.latency)),
                ("p99", Json::Num(point.p99 as f64)),
            ]),
        ),
    ])
    .to_string()
}

fn read_entry(text: &str, expected_key: &str) -> Option<Point> {
    let v = json::parse(text).ok()?;
    if v.get("key")?.as_str()? != expected_key {
        return None;
    }
    let p = v.get("point")?;
    Some(Point {
        offered: json::float_or_nan(p.get("offered"))?,
        throughput: json::float_or_nan(p.get("throughput"))?,
        latency: json::float_or_nan(p.get("latency"))?,
        p99: p.get("p99")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::scheme::Scheme;
    use crate::sweep::plan::TopoSpec;
    use drain_netsim::traffic::SyntheticPattern;

    fn spec() -> PointSpec {
        PointSpec::new(
            Scheme::Spin,
            TopoSpec::Mesh { w: 4, h: 4 },
            SyntheticPattern::UniformRandom,
            0.05,
            1,
            Scale::Quick,
        )
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "drain-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::at(&dir);
        let point = Point {
            offered: 0.05,
            throughput: 0.048,
            latency: 11.25,
            p99: 31,
        };
        assert!(cache.lookup(&spec()).is_none(), "cold cache must miss");
        cache.store(&spec(), &point);
        assert_eq!(cache.lookup(&spec()), Some(point));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn nan_latency_survives_the_roundtrip() {
        let dir = tmp_dir("nan");
        let cache = ResultCache::at(&dir);
        let point = Point {
            offered: 0.02,
            throughput: 0.0,
            latency: f64::NAN,
            p99: 0,
        };
        cache.store(&spec(), &point);
        let back = cache.lookup(&spec()).unwrap();
        assert!(back.latency.is_nan());
        assert_eq!(back.throughput, 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_degrades_to_miss() {
        let dir = tmp_dir("mismatch");
        let cache = ResultCache::at(&dir);
        let point = Point {
            offered: 0.05,
            throughput: 0.04,
            latency: 9.0,
            p99: 20,
        };
        cache.store(&spec(), &point);
        // Overwrite the entry with one whose embedded key differs
        // (simulating a hash collision / harness-version change).
        let path = cache.entry_path(&spec()).unwrap();
        fs::write(&path, write_entry("v0|other", &point)).unwrap();
        assert!(cache.lookup(&spec()).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_degrade_to_miss() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::at(&dir);
        cache.store(
            &spec(),
            &Point {
                offered: 0.05,
                throughput: 0.04,
                latency: 9.0,
                p99: 20,
            },
        );
        let path = cache.entry_path(&spec()).unwrap();
        fs::write(&path, "{not json").unwrap();
        assert!(cache.lookup(&spec()).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = ResultCache::disabled();
        assert!(!cache.is_enabled());
        let point = Point {
            offered: 0.1,
            throughput: 0.1,
            latency: 8.0,
            p99: 12,
        };
        cache.store(&spec(), &point);
        assert!(cache.lookup(&spec()).is_none());
    }

    #[test]
    fn digest_is_hex_of_key() {
        let s = spec();
        assert_eq!(
            digest(&s),
            format!("{:016x}", fnv1a64(key_string(&s).as_bytes()))
        );
        assert!(key_string(&s).starts_with(&format!("v{HARNESS_VERSION}|")));
    }
}
