//! Dependency-free JSON reading/writing for the result cache and
//! [`crate::report::RunReport`].
//!
//! The build environment has no crates.io access, so instead of `serde`
//! the harness uses this ~150-line value model: a writer that always
//! produces valid JSON (non-finite floats become `null`), and a strict
//! recursive-descent parser for reading cache entries back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also produced for NaN/infinite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are kept sorted for stable output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric value rounded into `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    // Exactly-representable integers print without ".0"
                    // (counts, cycle totals, p99 values).
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    // `{:?}` is Rust's shortest round-trip float repr.
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact JSON serialization (`.to_string()` comes with it for free).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Converts a float for storage: NaN/±inf round-trip through `Null`.
pub fn num(x: f64) -> Json {
    if x.is_finite() {
        Json::Num(x)
    } else {
        Json::Null
    }
}

/// Reads a float stored with [`num`]: `null` comes back as NaN.
pub fn float_or_nan(v: Option<&Json>) -> Option<f64> {
    match v? {
        Json::Null => Some(f64::NAN),
        Json::Num(x) => Some(*x),
        _ => None,
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::obj([
            ("a", Json::Num(1.5)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::Str("he\"llo\nworld".into())),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.02, 1.0 / 3.0, 1e-12, 65536.0, 0.44, f64::MIN_POSITIVE] {
            let text = Json::Num(x).to_string();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(x), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::NAN), Json::Null);
        assert_eq!(num(f64::INFINITY), Json::Null);
        let v = Json::obj([("lat", num(f64::NAN))]);
        let back = parse(&v.to_string()).unwrap();
        assert!(float_or_nan(back.get("lat")).unwrap().is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn object_keys_are_sorted_in_output() {
        let v = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.to_string(), "{\"a\":2,\"z\":1}");
    }

    #[test]
    fn integral_numbers_print_without_decimal_point() {
        assert_eq!(Json::Num(630.0).to_string(), "630");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(parse("630").unwrap().as_u64(), Some(630));
    }
}
