//! Load–latency sweeps and saturation-throughput search.
//!
//! [`measure_point`] is the primitive every synthetic figure builds on;
//! [`plan`] expands figure grids into independent [`plan::PointSpec`] jobs
//! for the parallel [`crate::engine::SweepEngine`]. The serial entry
//! points here and the engine share the same measurement code, so the two
//! paths produce bit-identical [`Point`]s (asserted by the
//! `parallel_sweep_determinism` integration test).

pub mod plan;

use drain_netsim::traffic::SyntheticPattern;
use drain_topology::Topology;

use crate::scale::Scale;
use crate::scheme::Scheme;

/// One measured operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Offered injection rate (packets/node/cycle).
    pub offered: f64,
    /// Accepted (received) throughput (packets/node/cycle).
    pub throughput: f64,
    /// Mean network latency over the measurement window (cycles); NaN when
    /// no packet was delivered in the window.
    pub latency: f64,
    /// 99th-percentile network latency (cycles).
    pub p99: u64,
}

/// Measures one operating point: warmup, then a measurement window.
#[allow(clippy::too_many_arguments)]
pub fn measure_point(
    scheme: Scheme,
    topo: &Topology,
    full_mesh: bool,
    pattern: &SyntheticPattern,
    rate: f64,
    seed: u64,
    epoch: u64,
    scale: Scale,
) -> Point {
    measure_point_hops(scheme, topo, full_mesh, pattern, rate, seed, epoch, 1, scale)
}

/// [`measure_point`] with an explicit hops-per-drain-window setting (the
/// Fig 14 ablation).
#[allow(clippy::too_many_arguments)]
pub fn measure_point_hops(
    scheme: Scheme,
    topo: &Topology,
    full_mesh: bool,
    pattern: &SyntheticPattern,
    rate: f64,
    seed: u64,
    epoch: u64,
    hops_per_drain: u32,
    scale: Scale,
) -> Point {
    let mut sim = scheme.synthetic_sim_hops(
        topo,
        full_mesh,
        pattern.clone(),
        rate,
        seed,
        epoch,
        hops_per_drain,
    );
    sim.warmup_and_measure(scale.warmup(), scale.measure());
    let now = sim.core().cycle();
    let s = sim.stats();
    Point {
        offered: rate,
        throughput: s.throughput(now, topo.num_nodes()),
        latency: s.net_latency.mean(),
        p99: s.net_latency.p99(),
    }
}

/// Full load sweep for one (scheme, topology, pattern, seed), run
/// serially in the calling thread. The parallel equivalent is
/// [`crate::engine::SweepEngine::load_sweep`].
pub fn load_sweep(
    scheme: Scheme,
    topo: &Topology,
    full_mesh: bool,
    pattern: &SyntheticPattern,
    seed: u64,
    epoch: u64,
    scale: Scale,
) -> Vec<Point> {
    scale
        .rate_sweep()
        .into_iter()
        .map(|rate| measure_point(scheme, topo, full_mesh, pattern, rate, seed, epoch, scale))
        .collect()
}

/// Saturation throughput: the maximum accepted throughput over the sweep
/// (the standard plateau measure).
pub fn saturation_throughput(points: &[Point]) -> f64 {
    points.iter().map(|p| p.throughput).fold(0.0, f64::max)
}

/// Low-load latency: mean latency at the lowest swept rate.
pub fn low_load_latency(points: &[Point]) -> f64 {
    points
        .first()
        .map(|p| p.latency)
        .unwrap_or(f64::NAN)
}

/// Mean of a slice (`NaN` when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_load() {
        let topo = Topology::mesh(4, 4);
        let pat = SyntheticPattern::UniformRandom;
        let low = measure_point(
            Scheme::Spin,
            &topo,
            true,
            &pat,
            0.02,
            1,
            Scheme::DEFAULT_EPOCH,
            Scale::Quick,
        );
        let high = measure_point(
            Scheme::Spin,
            &topo,
            true,
            &pat,
            0.30,
            1,
            Scheme::DEFAULT_EPOCH,
            Scale::Quick,
        );
        assert!(high.latency > low.latency);
        assert!(high.throughput > low.throughput * 2.0);
    }

    #[test]
    fn saturation_is_max() {
        let pts = vec![
            Point {
                offered: 0.1,
                throughput: 0.1,
                latency: 10.0,
                p99: 20,
            },
            Point {
                offered: 0.4,
                throughput: 0.32,
                latency: 300.0,
                p99: 900,
            },
        ];
        assert_eq!(saturation_throughput(&pts), 0.32);
        assert_eq!(low_load_latency(&pts), 10.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert!(mean(&[]).is_nan());
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
