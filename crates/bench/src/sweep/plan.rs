//! Experiment-grid planning: every synthetic operating point a figure
//! needs, expressed as an independent, hashable [`PointSpec`] job.
//!
//! A figure's evaluation grid (scheme × topology × pattern × rate ×
//! fault-seed) is expanded up front into `PointSpec`s; the
//! [`crate::engine::SweepEngine`] then runs the specs in parallel and
//! caches each result under the spec's [cache key](PointSpec::key_material).
//! Because a spec carries *everything* that determines its result —
//! including the RNG seed and the run-length [`Scale`] — parallel and
//! serial execution produce bit-identical [`Point`]s.

use drain_netsim::traffic::SyntheticPattern;
use drain_topology::chiplet::{demo_heterogeneous_system, random_connected};
use drain_topology::{faults::FaultInjector, Topology};

use crate::scale::Scale;
use crate::scheme::{DrainVariant, Scheme};
use crate::sweep::{measure_point_hops, Point};

/// A reproducible topology description (the cacheable stand-in for a
/// built [`Topology`]).
#[derive(Clone, Debug, PartialEq)]
pub enum TopoSpec {
    /// A pristine `w`×`h` mesh.
    Mesh {
        /// Mesh width.
        w: u16,
        /// Mesh height.
        h: u16,
    },
    /// A `w`×`h` mesh with `faults` bidirectional links removed by
    /// [`FaultInjector::new(seed)`](FaultInjector).
    FaultyMesh {
        /// Mesh width.
        w: u16,
        /// Mesh height.
        h: u16,
        /// Number of removed links (> 0; use [`TopoSpec::Mesh`] for 0).
        faults: usize,
        /// Fault-injection seed.
        seed: u64,
    },
    /// [`random_connected`]`(n, avg_degree, seed)`.
    Random {
        /// Node count.
        n: u16,
        /// Average degree × 1000 (kept integral so the cache key never
        /// depends on float formatting).
        degree_milli: u32,
        /// Construction seed.
        seed: u64,
    },
    /// [`demo_heterogeneous_system`]`(seed)` — the §VI chiplet system.
    Chiplet {
        /// Composition seed.
        seed: u64,
    },
}

impl TopoSpec {
    /// A faulty mesh when `faults > 0`, a pristine mesh otherwise (the
    /// idiom every mesh figure uses).
    pub fn mesh_with_faults(w: u16, h: u16, faults: usize, seed: u64) -> TopoSpec {
        if faults == 0 {
            TopoSpec::Mesh { w, h }
        } else {
            TopoSpec::FaultyMesh { w, h, faults, seed }
        }
    }

    /// Constructs the topology.
    ///
    /// # Panics
    ///
    /// Panics when fault injection cannot remove the requested links while
    /// keeping the topology connected (mirrors the original binaries).
    pub fn build(&self) -> Topology {
        match *self {
            TopoSpec::Mesh { w, h } => Topology::mesh(w, h),
            TopoSpec::FaultyMesh { w, h, faults, seed } => FaultInjector::new(seed)
                .remove_links(&Topology::mesh(w, h), faults)
                .expect("fault injection keeps the mesh connected"),
            TopoSpec::Random {
                n,
                degree_milli,
                seed,
            } => random_connected(n, degree_milli as f64 / 1000.0, seed),
            TopoSpec::Chiplet { seed } => demo_heterogeneous_system(seed),
        }
    }

    /// Whether schemes may use mesh-specialised (XY-escape) assembly —
    /// true only for pristine meshes, matching the `full_mesh` flag the
    /// figure binaries passed by hand.
    pub fn full_mesh(&self) -> bool {
        matches!(self, TopoSpec::Mesh { .. })
    }

    /// Canonical cache-key fragment.
    pub fn key_material(&self) -> String {
        match *self {
            TopoSpec::Mesh { w, h } => format!("mesh:{w}x{h}"),
            TopoSpec::FaultyMesh { w, h, faults, seed } => {
                format!("faultymesh:{w}x{h}:f{faults}:s{seed}")
            }
            TopoSpec::Random {
                n,
                degree_milli,
                seed,
            } => format!("random:{n}:d{degree_milli}:s{seed}"),
            TopoSpec::Chiplet { seed } => format!("chiplet:s{seed}"),
        }
    }
}

/// Canonical cache-key fragment for a scheme (stable across label edits).
pub fn scheme_key(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::EscapeVc => "escapevc",
        Scheme::Spin => "spin",
        Scheme::Drain(DrainVariant::Vn1Vc2) => "drain-vn1vc2",
        Scheme::Drain(DrainVariant::Vn3Vc2) => "drain-vn3vc2",
        Scheme::Drain(DrainVariant::Vn1Vc6) => "drain-vn1vc6",
        Scheme::UpDown => "updown",
        Scheme::Ideal => "ideal",
        Scheme::Unprotected => "unprotected",
    }
}

/// Canonical cache-key fragment for a traffic pattern.
pub fn pattern_key(pattern: &SyntheticPattern) -> String {
    match pattern {
        SyntheticPattern::Hotspot(targets) => {
            let ids: Vec<String> = targets.iter().map(|n| n.0.to_string()).collect();
            format!("hotspot[{}]", ids.join(","))
        }
        p => p.name().to_string(),
    }
}

/// One independent synthetic operating point: everything that determines
/// its [`Point`] result, and nothing that doesn't.
#[derive(Clone, Debug, PartialEq)]
pub struct PointSpec {
    /// Evaluated scheme.
    pub scheme: Scheme,
    /// Topology description.
    pub topo: TopoSpec,
    /// Traffic pattern.
    pub pattern: SyntheticPattern,
    /// Offered injection rate (packets/node/cycle).
    pub rate: f64,
    /// Simulation seed (also salts traffic generation).
    pub seed: u64,
    /// Drain epoch in cycles (ignored by non-DRAIN schemes).
    pub epoch: u64,
    /// Hops drained per window (paper default 1; Fig 14 ablation only).
    pub hops_per_drain: u32,
    /// Warmup/measurement lengths.
    pub scale: Scale,
}

impl PointSpec {
    /// A spec with the paper-default epoch and 1 hop per drain window.
    pub fn new(
        scheme: Scheme,
        topo: TopoSpec,
        pattern: SyntheticPattern,
        rate: f64,
        seed: u64,
        scale: Scale,
    ) -> PointSpec {
        PointSpec {
            scheme,
            topo,
            pattern,
            rate,
            seed,
            epoch: Scheme::DEFAULT_EPOCH,
            hops_per_drain: 1,
            scale,
        }
    }

    /// Overrides the drain epoch.
    pub fn with_epoch(mut self, epoch: u64) -> PointSpec {
        self.epoch = epoch;
        self
    }

    /// Overrides hops per drain window.
    pub fn with_hops(mut self, hops: u32) -> PointSpec {
        self.hops_per_drain = hops;
        self
    }

    /// Simulated cycles this spec will run (warmup + measurement window).
    pub fn sim_cycles(&self) -> u64 {
        self.scale.warmup() + self.scale.measure()
    }

    /// Runs the simulation for this spec (builds the topology and the
    /// simulator locally, so specs can run on any worker thread).
    pub fn run(&self) -> Point {
        let topo = self.topo.build();
        measure_point_hops(
            self.scheme,
            &topo,
            self.topo.full_mesh(),
            &self.pattern,
            self.rate,
            self.seed,
            self.epoch,
            self.hops_per_drain,
            self.scale,
        )
    }

    /// The canonical string hashed into the cache key. Every field that
    /// influences the result appears here; rates are fixed-point
    /// formatted (µ-units) so the key never depends on float printing.
    pub fn key_material(&self) -> String {
        format!(
            "scheme={}|topo={}|pattern={}|rate={}|seed={}|epoch={}|hops={}|scale={}",
            scheme_key(self.scheme),
            self.topo.key_material(),
            pattern_key(&self.pattern),
            (self.rate * 1e6).round() as u64,
            self.seed,
            self.epoch,
            self.hops_per_drain,
            self.scale.label(),
        )
    }
}

/// Expands a full load sweep (one spec per swept rate) for one
/// (scheme, topology, pattern, seed) — the unit from which saturation
/// throughput and low-load latency are derived.
pub fn load_sweep_specs(
    scheme: Scheme,
    topo: &TopoSpec,
    pattern: &SyntheticPattern,
    seed: u64,
    epoch: u64,
    scale: Scale,
) -> Vec<PointSpec> {
    scale
        .rate_sweep()
        .into_iter()
        .map(|rate| {
            PointSpec::new(scheme, topo.clone(), pattern.clone(), rate, seed, scale)
                .with_epoch(epoch)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> PointSpec {
        PointSpec::new(
            Scheme::Spin,
            TopoSpec::Mesh { w: 4, h: 4 },
            SyntheticPattern::UniformRandom,
            0.05,
            1,
            Scale::Quick,
        )
    }

    #[test]
    fn key_changes_when_any_field_changes() {
        let base = base_spec();
        let variants = [
            PointSpec {
                scheme: Scheme::EscapeVc,
                ..base.clone()
            },
            PointSpec {
                topo: TopoSpec::Mesh { w: 8, h: 8 },
                ..base.clone()
            },
            PointSpec {
                topo: TopoSpec::FaultyMesh {
                    w: 4,
                    h: 4,
                    faults: 2,
                    seed: 1,
                },
                ..base.clone()
            },
            PointSpec {
                pattern: SyntheticPattern::Transpose,
                ..base.clone()
            },
            PointSpec {
                rate: 0.06,
                ..base.clone()
            },
            PointSpec {
                seed: 2,
                ..base.clone()
            },
            PointSpec {
                epoch: 1024,
                ..base.clone()
            },
            PointSpec {
                hops_per_drain: 2,
                ..base.clone()
            },
            PointSpec {
                scale: Scale::Full,
                ..base.clone()
            },
        ];
        let base_key = base.key_material();
        let mut all: Vec<String> = variants.iter().map(|s| s.key_material()).collect();
        for k in &all {
            assert_ne!(k, &base_key, "variant key must differ from base");
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), variants.len(), "variant keys must be distinct");
    }

    #[test]
    fn key_is_stable_for_equal_specs() {
        assert_eq!(base_spec().key_material(), base_spec().key_material());
    }

    #[test]
    fn mesh_with_faults_collapses_zero_faults() {
        assert_eq!(
            TopoSpec::mesh_with_faults(8, 8, 0, 99),
            TopoSpec::Mesh { w: 8, h: 8 }
        );
        assert!(matches!(
            TopoSpec::mesh_with_faults(8, 8, 4, 99),
            TopoSpec::FaultyMesh { faults: 4, seed: 99, .. }
        ));
    }

    #[test]
    fn topo_specs_build_and_report_full_mesh() {
        let mesh = TopoSpec::Mesh { w: 4, h: 4 };
        assert!(mesh.full_mesh());
        assert_eq!(mesh.build().num_nodes(), 16);
        let faulty = TopoSpec::FaultyMesh {
            w: 4,
            h: 4,
            faults: 2,
            seed: 3,
        };
        assert!(!faulty.full_mesh());
        assert_eq!(faulty.build().num_nodes(), 16);
        let rand = TopoSpec::Random {
            n: 12,
            degree_milli: 3000,
            seed: 5,
        };
        assert!(!rand.full_mesh());
        assert_eq!(rand.build().num_nodes(), 12);
    }

    #[test]
    fn load_sweep_specs_cover_every_rate() {
        let specs = load_sweep_specs(
            Scheme::Spin,
            &TopoSpec::Mesh { w: 4, h: 4 },
            &SyntheticPattern::UniformRandom,
            7,
            Scheme::DEFAULT_EPOCH,
            Scale::Quick,
        );
        let rates = Scale::Quick.rate_sweep();
        assert_eq!(specs.len(), rates.len());
        for (spec, rate) in specs.iter().zip(rates) {
            assert_eq!(spec.rate, rate);
            assert_eq!(spec.seed, 7);
        }
    }
}
