//! Evaluated schemes and their correct assembly (paper Table II).

use drain_baselines::assemble::{baseline_sim_with_config, Baseline};
use drain_coherence::{CoherenceConfig, CoherenceEngine};
use drain_core::{DrainConfig, DrainMechanism};
use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{Endpoints, SyntheticPattern, SyntheticTraffic};
use drain_netsim::{RngMode, Sim, SimConfig, TraceConfig};
use drain_path::DrainPath;
use drain_topology::Topology;
use drain_workloads::{AppModel, AppTrace};

/// DRAIN buffer configurations evaluated in Figs 12/13.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DrainVariant {
    /// VN-1, VC-2 (the paper's default).
    Vn1Vc2,
    /// VN-3, VC-2 (same virtual networks as the baselines).
    Vn3Vc2,
    /// VN-1, VC-6 (same total VCs as the baselines).
    Vn1Vc6,
}

impl DrainVariant {
    fn sim_config(self) -> SimConfig {
        match self {
            DrainVariant::Vn1Vc2 => SimConfig::drain_default(),
            DrainVariant::Vn3Vc2 => SimConfig::drain_vn3(),
            DrainVariant::Vn1Vc6 => SimConfig::drain_vc6(),
        }
    }

    /// Label used in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            DrainVariant::Vn1Vc2 => "DRAIN (VN-1,VC-2)",
            DrainVariant::Vn3Vc2 => "DRAIN (VN-3,VC-2)",
            DrainVariant::Vn1Vc6 => "DRAIN (VN-1,VC-6)",
        }
    }
}

/// Applies the `DRAIN_PHASE_A` environment override to a simulator
/// configuration: `dense` forces the re-route-every-cycle Phase A scan
/// (wake scheduler off) — the parity/baseline mode for the wake-vs-dense
/// differentials and `bench_kernel.sh --baseline` — while `wake`
/// (re-)selects the default wake-driven scheduler. Both modes are
/// bit-identical, so the result cache deliberately does not key on this.
/// Honoured by every [`Scheme`]-built simulation and by the differential
/// oracle (so `drain_fuzz` can be forced onto either path).
pub fn phase_a_env_override(config: &mut SimConfig) {
    if let Ok(v) = std::env::var("DRAIN_PHASE_A") {
        match v.trim() {
            "dense" => config.wake_scheduler = false,
            "wake" => config.wake_scheduler = true,
            other => panic!("DRAIN_PHASE_A must be 'wake' or 'dense', got {other:?}"),
        }
    }
}

/// Applies the `DRAIN_RNG` environment override to a simulator
/// configuration: `keyed` selects the counter-based keyed sample mixer
/// (draws are pure functions of `(seed, cycle, site, id)` — see
/// [`drain_netsim::rng`]), `stream` (re-)selects the default serial
/// draw stream. The two modes produce *different* (equally valid)
/// random sequences — results are NOT bit-identical across modes, only
/// within one — so unlike `DRAIN_PHASE_A`/`DRAIN_SHARDS` this knob is
/// for the keyed pin family, differentials and benchmarks, not for
/// transparently re-running cached figures. Honoured by every
/// [`Scheme`]-built simulation and by the differential oracle (it
/// overrides `drain_fuzz --rng-mode`).
pub fn rng_env_override(config: &mut SimConfig) {
    if let Ok(v) = std::env::var("DRAIN_RNG") {
        match RngMode::parse(v.trim()) {
            Some(mode) => config.rng_mode = mode,
            None => panic!("DRAIN_RNG must be 'stream' or 'keyed', got {v:?}"),
        }
    }
}

/// One evaluated scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Escape-VC proactive baseline.
    EscapeVc,
    /// SPIN reactive baseline.
    Spin,
    /// DRAIN with the given buffer configuration.
    Drain(DrainVariant),
    /// Pure up*/down* (Fig 5 only).
    UpDown,
    /// Ideal deadlock-free adaptive oracle (Fig 5 only).
    Ideal,
    /// No protection (Fig 3 only).
    Unprotected,
}

impl Scheme {
    /// The three schemes of the headline comparisons (Figs 10/11/15).
    pub fn headline() -> [Scheme; 3] {
        [
            Scheme::EscapeVc,
            Scheme::Spin,
            Scheme::Drain(DrainVariant::Vn1Vc2),
        ]
    }

    /// Label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::EscapeVc => "EscapeVC",
            Scheme::Spin => "SPIN",
            Scheme::Drain(v) => v.label(),
            Scheme::UpDown => "up*/down*",
            Scheme::Ideal => "Ideal",
            Scheme::Unprotected => "Unprotected",
        }
    }

    /// The drain epoch used by experiments (paper default 64K; override
    /// via `epoch` for the Fig 14 sweep).
    pub const DEFAULT_EPOCH: u64 = 65_536;

    #[allow(clippy::too_many_arguments)]
    fn build(
        self,
        topo: &Topology,
        full_mesh: bool,
        endpoints: Box<dyn Endpoints>,
        mut config: SimConfig,
        epoch: u64,
        hops_per_drain: u32,
        seed: u64,
    ) -> Sim {
        config.seed = seed;
        // `DRAIN_SHARDS=K` runs every experiment simulation on the
        // K-shard allocation kernel. The sharded kernel is bit-identical
        // to the serial one (enforced by the determinism and golden-pin
        // suites), which is also why the result cache deliberately does
        // NOT key on the shard count: cached serial results stay valid.
        if let Ok(v) = std::env::var("DRAIN_SHARDS") {
            let k: usize = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("DRAIN_SHARDS must be an integer, got {v:?}"));
            config.shards = k;
            config.shard_min_active = 0;
        }
        phase_a_env_override(&mut config);
        rng_env_override(&mut config);
        // `DRAIN_PROFILE=P` turns on the kernel phase profiler (sample
        // every P cycles) for every experiment simulation. The profiler
        // is a pure observer — bit-identical results at any cadence,
        // enforced by the metrics differential suite and the golden pins
        // — so the result cache deliberately does not key on it either.
        if let Ok(v) = std::env::var("DRAIN_PROFILE") {
            let p: u64 = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("DRAIN_PROFILE must be an integer, got {v:?}"));
            config.metrics.profile_period = p;
        }
        match self {
            Scheme::Drain(_) => {
                let path = DrainPath::compute(topo).expect("connected topology");
                let mech = DrainMechanism::new(
                    path,
                    DrainConfig {
                        epoch,
                        hops_per_drain,
                        ..DrainConfig::default()
                    },
                );
                // One clone, shared between routing and core.
                let topo = std::sync::Arc::new(topo.clone());
                Sim::new(
                    std::sync::Arc::clone(&topo),
                    config,
                    Box::new(FullyAdaptive::new(topo)),
                    Box::new(mech),
                    endpoints,
                )
            }
            Scheme::EscapeVc => {
                baseline_sim_with_config(topo, Baseline::EscapeVc, full_mesh, endpoints, config)
            }
            Scheme::Spin => {
                baseline_sim_with_config(topo, Baseline::Spin, full_mesh, endpoints, config)
            }
            Scheme::UpDown => {
                baseline_sim_with_config(topo, Baseline::UpDown, full_mesh, endpoints, config)
            }
            Scheme::Ideal => {
                baseline_sim_with_config(topo, Baseline::Ideal, full_mesh, endpoints, config)
            }
            Scheme::Unprotected => baseline_sim_with_config(
                topo,
                Baseline::Unprotected,
                full_mesh,
                endpoints,
                config,
            ),
        }
    }

    /// Base simulator configuration for this scheme (synthetic runs:
    /// single message class, watchdog disabled — measurement harnesses
    /// decide their own instrumentation).
    fn synthetic_config(self) -> SimConfig {
        let mut c = match self {
            Scheme::Drain(v) => v.sim_config(),
            Scheme::EscapeVc => SimConfig::escape_vc_baseline(),
            Scheme::Spin => SimConfig::spin_baseline(),
            Scheme::UpDown | Scheme::Ideal | Scheme::Unprotected => SimConfig::default(),
        };
        c.num_classes = 1;
        c.watchdog_threshold = 0;
        c
    }

    /// Builds a synthetic-traffic simulation (Figs 5/10/11/14).
    pub fn synthetic_sim(
        self,
        topo: &Topology,
        full_mesh: bool,
        pattern: SyntheticPattern,
        rate: f64,
        seed: u64,
        epoch: u64,
    ) -> Sim {
        self.synthetic_sim_hops(topo, full_mesh, pattern, rate, seed, epoch, 1)
    }

    /// [`Scheme::synthetic_sim`] with an explicit hops-per-drain-window
    /// setting (the Fig 14 footnote-3 ablation; every other experiment
    /// uses the paper's 1 hop per window).
    #[allow(clippy::too_many_arguments)]
    pub fn synthetic_sim_hops(
        self,
        topo: &Topology,
        full_mesh: bool,
        pattern: SyntheticPattern,
        rate: f64,
        seed: u64,
        epoch: u64,
        hops_per_drain: u32,
    ) -> Sim {
        self.synthetic_sim_traced(
            topo,
            full_mesh,
            pattern,
            rate,
            seed,
            epoch,
            hops_per_drain,
            TraceConfig::default(),
        )
    }

    /// [`Scheme::synthetic_sim_hops`] with an observability configuration
    /// (event capture / telemetry sampling / flight recorder); used by the
    /// `drain-trace` inspector. A sink is installed separately via
    /// [`Sim::set_trace_sink`].
    #[allow(clippy::too_many_arguments)]
    pub fn synthetic_sim_traced(
        self,
        topo: &Topology,
        full_mesh: bool,
        pattern: SyntheticPattern,
        rate: f64,
        seed: u64,
        epoch: u64,
        hops_per_drain: u32,
        trace: TraceConfig,
    ) -> Sim {
        let traffic = SyntheticTraffic::new(pattern, rate, 1, seed ^ 0x7AFF1C);
        let mut config = self.synthetic_config();
        config.trace = trace;
        self.build(
            topo,
            full_mesh,
            Box::new(traffic),
            config,
            epoch,
            hops_per_drain,
            seed,
        )
    }

    /// Builds a coherence-workload simulation (Figs 12/13/15). The
    /// watchdog threshold is set above the drain epoch so DRAIN's
    /// let-it-deadlock window is not misreported.
    pub fn coherence_sim(
        self,
        topo: &Topology,
        full_mesh: bool,
        app: &AppModel,
        quota: Option<u64>,
        seed: u64,
        epoch: u64,
    ) -> Sim {
        let mut config = match self {
            Scheme::Drain(v) => v.sim_config(),
            Scheme::EscapeVc => SimConfig::escape_vc_baseline(),
            Scheme::Spin => SimConfig::spin_baseline(),
            Scheme::UpDown | Scheme::Ideal | Scheme::Unprotected => SimConfig::default(),
        };
        config.num_classes = 3;
        config.inj_queue_capacity = (topo.num_nodes() + 8).max(64);
        config.watchdog_threshold = 4 * epoch;
        let mut trace = AppTrace::new(app.clone(), topo.num_nodes(), seed ^ 0xA99);
        if let Some(q) = quota {
            trace = trace.with_quota(q);
        }
        let engine = CoherenceEngine::new(
            topo,
            CoherenceConfig {
                seed: seed ^ 0xC0,
                ..CoherenceConfig::default()
            },
            Box::new(trace),
        );
        self.build(topo, full_mesh, Box::new(engine), config, epoch, 1, seed)
    }
}

/// Workload family used by a figure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Open-loop synthetic pattern.
    Synthetic,
    /// Closed-loop coherence application model.
    Application,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_schemes_build_and_run() {
        let topo = Topology::mesh(4, 4);
        for s in Scheme::headline() {
            let mut sim = s.synthetic_sim(
                &topo,
                true,
                SyntheticPattern::UniformRandom,
                0.05,
                1,
                Scheme::DEFAULT_EPOCH,
            );
            sim.run(2_000);
            assert!(sim.stats().ejected > 0, "{}", s.label());
        }
    }

    #[test]
    fn coherence_schemes_build_and_run() {
        let topo = Topology::mesh(4, 4);
        let app = drain_workloads::app_by_name("blackscholes").unwrap();
        for s in [Scheme::EscapeVc, Scheme::Drain(DrainVariant::Vn1Vc2)] {
            let mut sim = s.coherence_sim(&topo, true, &app, None, 2, 8_192);
            sim.run(5_000);
            assert!(sim.stats().ejected > 0, "{}", s.label());
        }
    }

    #[test]
    fn labels_are_unique() {
        let all = [
            Scheme::EscapeVc,
            Scheme::Spin,
            Scheme::Drain(DrainVariant::Vn1Vc2),
            Scheme::Drain(DrainVariant::Vn3Vc2),
            Scheme::Drain(DrainVariant::Vn1Vc6),
            Scheme::UpDown,
            Scheme::Ideal,
            Scheme::Unprotected,
        ];
        let mut labels: Vec<&str> = all.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
