//! Closed-loop application comparisons (Figs 12, 13, 15).
//!
//! App runs are closed-loop (their runtime depends on the whole history),
//! so unlike synthetic points they are not cached; they are still
//! parallelised: [`app_jobs`] expands a figure's (scheme × app × seed)
//! grid into independent [`AppJob`]s for
//! [`SweepEngine::run_jobs`](crate::engine::SweepEngine::run_jobs), and
//! [`average`] folds the per-seed results exactly like the serial
//! [`run_app_averaged`] (bit-identical, since each job carries its own
//! seed).

use drain_netsim::RunOutcome;
use drain_topology::{faults::FaultInjector, Topology};
use drain_workloads::AppModel;

use crate::scale::Scale;
use crate::scheme::Scheme;

/// Result of one closed-loop application run.
#[derive(Clone, Copy, Debug)]
pub struct AppRun {
    /// Mean packet latency over the run (cycles).
    pub latency: f64,
    /// 99th-percentile packet latency (cycles).
    pub p99: u64,
    /// Runtime: cycles to finish the per-core quota (extrapolated from
    /// progress when the budget ran out first).
    pub runtime: f64,
    /// Whether the run wedged (watchdog deadlock that never recovered).
    pub deadlocked: bool,
    /// Cycles actually simulated (≤ the scale's budget; feeds
    /// [`RunReport::sim_cycles`](crate::report::RunReport)).
    pub cycles: u64,
}

/// Runs `scheme` on `app` over `topo` until the per-core quota completes.
pub fn run_app(
    scheme: Scheme,
    topo: &Topology,
    full_mesh: bool,
    app: &AppModel,
    seed: u64,
    scale: Scale,
) -> AppRun {
    let quota = scale.app_quota();
    let budget = scale.app_budget();
    let mut sim = scheme.coherence_sim(topo, full_mesh, app, Some(quota), seed, Scheme::DEFAULT_EPOCH);
    let outcome = sim.run(budget);
    let finished = outcome == RunOutcome::WorkloadFinished;
    let cycles = sim.core().cycle() as f64;
    // Progress-based extrapolation when the budget ran out: delivered
    // response-class packets track completed transactions closely.
    let runtime = if finished {
        cycles
    } else {
        let target = (quota as f64) * topo.num_nodes() as f64;
        // `ejected` over-counts (requests + forwards + responses), so use
        // it only as a relative progress proxy against itself at quota.
        let progress = (sim.stats().ejected as f64 / target).max(1e-3);
        cycles / progress.min(1.0)
    };
    AppRun {
        latency: sim.stats().net_latency.mean(),
        p99: sim.stats().net_latency.p99(),
        runtime,
        deadlocked: sim.stats().watchdog_deadlock,
        cycles: sim.core().cycle(),
    }
}

/// One independent closed-loop run: everything [`run_app`] needs,
/// including the fault pattern, resolved from the figure's seed formula
/// so a job can run on any worker thread.
#[derive(Clone, Debug)]
pub struct AppJob<'a> {
    /// Evaluated scheme.
    pub scheme: Scheme,
    /// Application model.
    pub app: &'a AppModel,
    /// Fault-free base topology.
    pub base: &'a Topology,
    /// Links removed from `base` (0 = pristine).
    pub faults: usize,
    /// Simulation + fault-injection seed.
    pub seed: u64,
    /// Run-length policy.
    pub scale: Scale,
}

impl AppJob<'_> {
    /// Runs the job (builds the faulty topology locally).
    pub fn run(&self) -> AppRun {
        let topo = if self.faults == 0 {
            self.base.clone()
        } else {
            FaultInjector::new(self.seed)
                .remove_links(self.base, self.faults)
                .unwrap()
        };
        run_app(
            self.scheme,
            &topo,
            self.faults == 0,
            self.app,
            self.seed,
            self.scale,
        )
    }
}

/// Expands one (scheme, app, fault count) cell into its per-seed jobs,
/// using the same seed formula as [`run_app_averaged`].
pub fn app_jobs<'a>(
    scheme: Scheme,
    base: &'a Topology,
    faults: usize,
    app: &'a AppModel,
    scale: Scale,
) -> Vec<AppJob<'a>> {
    (0..scale.seeds())
        .map(|s| AppJob {
            scheme,
            app,
            base,
            faults,
            seed: (faults * 7919 + s) as u64 ^ 0xA44,
            scale,
        })
        .collect()
}

/// Folds per-seed runs into the figure's cell: mean latency/runtime,
/// worst-case p99, any-deadlock.
pub fn average(runs: &[AppRun]) -> AppRun {
    let n = runs.len().max(1) as f64;
    AppRun {
        latency: runs.iter().map(|r| r.latency).sum::<f64>() / n,
        p99: runs.iter().map(|r| r.p99).max().unwrap_or(0),
        runtime: runs.iter().map(|r| r.runtime).sum::<f64>() / n,
        deadlocked: runs.iter().any(|r| r.deadlocked),
        cycles: runs.iter().map(|r| r.cycles).sum(),
    }
}

/// Averages runs over the scale's seeds and fault patterns, serially in
/// the calling thread. The figures run the same jobs in parallel via
/// [`app_jobs`] + [`average`]; both paths produce identical numbers.
pub fn run_app_averaged(
    scheme: Scheme,
    base: &Topology,
    faults: usize,
    app: &AppModel,
    scale: Scale,
) -> AppRun {
    let runs: Vec<AppRun> = app_jobs(scheme, base, faults, app, scale)
        .iter()
        .map(AppJob::run)
        .collect();
    average(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_run_produces_sane_numbers() {
        let topo = Topology::mesh(4, 4);
        let app = drain_workloads::app_by_name("blackscholes").unwrap();
        let r = run_app(Scheme::EscapeVc, &topo, true, &app, 1, Scale::Quick);
        assert!(r.latency > 0.0);
        assert!(r.runtime > 0.0);
        assert!(!r.deadlocked);
    }
}
