//! Closed-loop application comparisons (Figs 12, 13, 15).

use drain_netsim::RunOutcome;
use drain_topology::{faults::FaultInjector, Topology};
use drain_workloads::AppModel;

use crate::scale::Scale;
use crate::scheme::Scheme;

/// Result of one closed-loop application run.
#[derive(Clone, Copy, Debug)]
pub struct AppRun {
    /// Mean packet latency over the run (cycles).
    pub latency: f64,
    /// 99th-percentile packet latency (cycles).
    pub p99: u64,
    /// Runtime: cycles to finish the per-core quota (extrapolated from
    /// progress when the budget ran out first).
    pub runtime: f64,
    /// Whether the run wedged (watchdog deadlock that never recovered).
    pub deadlocked: bool,
}

/// Runs `scheme` on `app` over `topo` until the per-core quota completes.
pub fn run_app(
    scheme: Scheme,
    topo: &Topology,
    full_mesh: bool,
    app: &AppModel,
    seed: u64,
    scale: Scale,
) -> AppRun {
    let quota = scale.app_quota();
    let budget = scale.app_budget();
    let mut sim = scheme.coherence_sim(topo, full_mesh, app, Some(quota), seed, Scheme::DEFAULT_EPOCH);
    let outcome = sim.run(budget);
    let finished = outcome == RunOutcome::WorkloadFinished;
    let cycles = sim.core().cycle() as f64;
    // Progress-based extrapolation when the budget ran out: delivered
    // response-class packets track completed transactions closely.
    let runtime = if finished {
        cycles
    } else {
        let target = (quota as f64) * topo.num_nodes() as f64;
        // `ejected` over-counts (requests + forwards + responses), so use
        // it only as a relative progress proxy against itself at quota.
        let progress = (sim.stats().ejected as f64 / target).max(1e-3);
        cycles / progress.min(1.0)
    };
    AppRun {
        latency: sim.stats().net_latency.mean(),
        p99: sim.stats().net_latency.p99(),
        runtime,
        deadlocked: sim.stats().watchdog_deadlock,
    }
}

/// Averages runs over the scale's seeds and fault patterns.
pub fn run_app_averaged(
    scheme: Scheme,
    base: &Topology,
    faults: usize,
    app: &AppModel,
    scale: Scale,
) -> AppRun {
    let mut lat = 0.0;
    let mut p99 = 0u64;
    let mut rt = 0.0;
    let mut dl = false;
    let seeds = scale.seeds();
    for s in 0..seeds {
        let seed = (faults * 7919 + s) as u64 ^ 0xA44;
        let topo = if faults == 0 {
            base.clone()
        } else {
            FaultInjector::new(seed).remove_links(base, faults).unwrap()
        };
        let r = run_app(scheme, &topo, faults == 0, app, seed, scale);
        lat += r.latency;
        p99 = p99.max(r.p99);
        rt += r.runtime;
        dl |= r.deadlocked;
    }
    AppRun {
        latency: lat / seeds as f64,
        p99,
        runtime: rt / seeds as f64,
        deadlocked: dl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_run_produces_sane_numbers() {
        let topo = Topology::mesh(4, 4);
        let app = drain_workloads::app_by_name("blackscholes").unwrap();
        let r = run_app(Scheme::EscapeVc, &topo, true, &app, 1, Scale::Quick);
        assert!(r.latency > 0.0);
        assert!(r.runtime > 0.0);
        assert!(!r.deadlocked);
    }
}
