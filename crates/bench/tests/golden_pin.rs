//! Cross-refactor golden pins for the simulator kernel.
//!
//! Unlike `golden_trace.rs` (which proves *self*-consistency: identical
//! bytes across reruns and worker-thread counts), these tests pin the
//! kernel's observable behaviour to constants captured from a known-good
//! build. Any data-layout or allocation-order rework that silently drifts
//! the RNG draw schedule, the allocation order, or the trace stream fails
//! here even though it would still be self-consistent.
//!
//! The pinned digests were captured on the occupancy-driven kernel (PR 5)
//! and must survive the struct-of-arrays arena refactor (PR 6) unchanged:
//! same seeds, same cycles, same bytes. The sharded kernel (PR 7) is held
//! to the same constants: the 4-shard runs below must reproduce the
//! digests captured on the serial kernel bit for bit.
//!
//! If a *deliberate* behaviour change invalidates them, re-capture with
//! `cargo test -p drain-bench --test golden_pin -- --nocapture` (each test
//! prints the digests it observed) and explain the re-pin in the PR.

use drain_bench::scheme::DrainVariant;
use drain_bench::Scheme;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{TraceConfig, TraceSink};
use drain_topology::Topology;

/// FNV-1a, dependency-free (the workspace builds offline).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// The three headline schemes with stable directory-safe ids.
fn headline() -> [(&'static str, Scheme); 3] {
    [
        ("escapevc", Scheme::EscapeVc),
        ("spin", Scheme::Spin),
        ("drain", Scheme::Drain(DrainVariant::Vn1Vc2)),
    ]
}

/// Digest of a saturated traced run: mesh(4,4), 40% uniform-random
/// injection (far past saturation, the bench's `saturated` preset rate),
/// a short drain epoch so forced movement appears in-window, 2 000 cycles
/// of JSONL event bytes.
fn saturated_trace_digest(scheme: Scheme, shards: usize) -> u64 {
    let topo = Topology::mesh(4, 4);
    let mut sim = scheme.synthetic_sim_traced(
        &topo,
        true,
        SyntheticPattern::UniformRandom,
        0.40,
        17,
        512,
        1,
        TraceConfig::events_on(),
    );
    sim.set_shards(shards);
    sim.set_trace_sink(TraceSink::Memory(Vec::new()));
    sim.run(2_000);
    let events = sim
        .core_mut()
        .tracer_mut()
        .take_memory()
        .expect("memory sink installed");
    assert!(
        !events.is_empty(),
        "a saturated traced run must emit events"
    );
    let mut out = String::new();
    for e in &events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    fnv1a(out.as_bytes())
}

/// Digest of a saturated untraced run's full statistics: mesh(8,8) (the
/// bench topology), 40% injection, 2 000 cycles, `Stats` debug-formatted
/// (every counter plus both full latency histograms).
fn saturated_stats_digest(scheme: Scheme, shards: usize) -> u64 {
    let topo = Topology::mesh(8, 8);
    let mut sim = scheme.synthetic_sim(
        &topo,
        true,
        SyntheticPattern::UniformRandom,
        0.40,
        17,
        Scheme::DEFAULT_EPOCH,
    );
    sim.set_shards(shards);
    sim.run(2_000);
    assert!(
        sim.stats().ejected > 0,
        "saturated run must deliver packets"
    );
    fnv1a(format!("{:?}", sim.stats()).as_bytes())
}

/// Expected per-scheme digests, captured pre-refactor (see module docs).
const PINNED_TRACE: [(&str, u64); 3] = [
    ("escapevc", 0x8ec1_d206_79fd_17a4),
    ("spin", 0x3662_c02a_c36d_e52f),
    ("drain", 0x3acb_7a6e_5720_bc45),
];

const PINNED_STATS: [(&str, u64); 3] = [
    ("escapevc", 0xe401_d053_4cb9_3be6),
    ("spin", 0x3937_bbf6_d045_8451),
    ("drain", 0x8ce1_dc7a_8e37_0223),
];

#[test]
fn saturated_golden_trace_is_pinned() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_trace_digest(scheme, 1)))
        .collect();
    for (id, d) in &got {
        println!("trace {id}: {d:#018x}");
    }
    assert_eq!(
        got, PINNED_TRACE,
        "saturated trace bytes drifted from the pinned digests"
    );
}

#[test]
fn saturated_stats_are_pinned() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_stats_digest(scheme, 1)))
        .collect();
    for (id, d) in &got {
        println!("stats {id}: {d:#018x}");
    }
    assert_eq!(
        got, PINNED_STATS,
        "saturated stats drifted from the pinned digests"
    );
}

/// The 4-shard kernel must reproduce the *same* pinned trace digests the
/// serial kernel was captured with — not merely be self-consistent.
#[test]
fn four_shard_golden_trace_matches_serial_pins() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_trace_digest(scheme, 4)))
        .collect();
    for (id, d) in &got {
        println!("trace k4 {id}: {d:#018x}");
    }
    assert_eq!(
        got, PINNED_TRACE,
        "4-shard trace bytes drifted from the serial kernel's pinned digests"
    );
}

/// Same pin on statistics: 4-shard saturated runs must hash to the serial
/// kernel's pinned constants.
#[test]
fn four_shard_stats_match_serial_pins() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_stats_digest(scheme, 4)))
        .collect();
    for (id, d) in &got {
        println!("stats k4 {id}: {d:#018x}");
    }
    assert_eq!(
        got, PINNED_STATS,
        "4-shard stats drifted from the serial kernel's pinned digests"
    );
}
