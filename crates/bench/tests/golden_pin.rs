//! Cross-refactor golden pins for the simulator kernel.
//!
//! Unlike `golden_trace.rs` (which proves *self*-consistency: identical
//! bytes across reruns and worker-thread counts), these tests pin the
//! kernel's observable behaviour to constants captured from a known-good
//! build. Any data-layout or allocation-order rework that silently drifts
//! the RNG draw schedule, the allocation order, or the trace stream fails
//! here even though it would still be self-consistent.
//!
//! The pinned digests were captured on the occupancy-driven kernel (PR 5)
//! and must survive the struct-of-arrays arena refactor (PR 6) unchanged:
//! same seeds, same cycles, same bytes. The sharded kernel (PR 7) is held
//! to the same constants: the 4-shard runs below must reproduce the
//! digests captured on the serial kernel bit for bit.
//!
//! Two pin families exist, one per RNG determinism contract (see
//! `drain_netsim::rng`): the `PINNED_*` constants are the original
//! serial-draw-stream family; the `KEYED_*` constants pin the keyed
//! counter-based mixer, which produces a different (equally valid)
//! random sequence and therefore different digests. Every helper here
//! sets its mode explicitly, so neither family is perturbed by the
//! `DRAIN_RNG` environment knob.
//!
//! If a *deliberate* behaviour change invalidates them, re-capture with
//! `cargo test -p drain-bench --test golden_pin -- --nocapture` (each test
//! prints the digests it observed) and explain the re-pin in the PR.

use drain_bench::scheme::DrainVariant;
use drain_bench::Scheme;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{RngMode, TraceConfig, TraceSink};
use drain_topology::Topology;

/// FNV-1a, dependency-free (the workspace builds offline).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// The three headline schemes with stable directory-safe ids.
fn headline() -> [(&'static str, Scheme); 3] {
    [
        ("escapevc", Scheme::EscapeVc),
        ("spin", Scheme::Spin),
        ("drain", Scheme::Drain(DrainVariant::Vn1Vc2)),
    ]
}

/// Digest of a saturated traced run: mesh(4,4), 40% uniform-random
/// injection (far past saturation, the bench's `saturated` preset rate),
/// a short drain epoch so forced movement appears in-window, 2 000 cycles
/// of JSONL event bytes.
fn saturated_trace_digest(scheme: Scheme, shards: usize, mode: RngMode) -> u64 {
    let topo = Topology::mesh(4, 4);
    let mut sim = scheme.synthetic_sim_traced(
        &topo,
        true,
        SyntheticPattern::UniformRandom,
        0.40,
        17,
        512,
        1,
        TraceConfig::events_on(),
    );
    sim.set_rng_mode(mode);
    sim.set_shards(shards);
    sim.set_trace_sink(TraceSink::Memory(Vec::new()));
    sim.run(2_000);
    let events = sim
        .core_mut()
        .tracer_mut()
        .take_memory()
        .expect("memory sink installed");
    assert!(
        !events.is_empty(),
        "a saturated traced run must emit events"
    );
    let mut out = String::new();
    for e in &events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    fnv1a(out.as_bytes())
}

/// Digest of a saturated untraced run's full statistics: mesh(8,8) (the
/// bench topology), 40% injection, 2 000 cycles, `Stats` debug-formatted
/// (every counter plus both full latency histograms).
fn saturated_stats_digest(scheme: Scheme, shards: usize, mode: RngMode) -> u64 {
    saturated_stats_digest_cfg(scheme, shards, mode, true, true)
}

/// [`saturated_stats_digest`] with the wake scheduler and fast-forward
/// axes exposed — the keyed pin family is held across the full
/// K × wake × fast-forward matrix.
fn saturated_stats_digest_cfg(
    scheme: Scheme,
    shards: usize,
    mode: RngMode,
    wake: bool,
    fast_forward: bool,
) -> u64 {
    let topo = Topology::mesh(8, 8);
    let mut sim = scheme.synthetic_sim(
        &topo,
        true,
        SyntheticPattern::UniformRandom,
        0.40,
        17,
        Scheme::DEFAULT_EPOCH,
    );
    sim.set_rng_mode(mode);
    sim.set_shards(shards);
    sim.set_wake_scheduler(wake);
    sim.set_fast_forward(fast_forward);
    sim.run(2_000);
    assert!(
        sim.stats().ejected > 0,
        "saturated run must deliver packets"
    );
    fnv1a(format!("{:?}", sim.stats()).as_bytes())
}

/// Expected per-scheme digests, captured pre-refactor (see module docs).
const PINNED_TRACE: [(&str, u64); 3] = [
    ("escapevc", 0x8ec1_d206_79fd_17a4),
    ("spin", 0x3662_c02a_c36d_e52f),
    ("drain", 0x3acb_7a6e_5720_bc45),
];

const PINNED_STATS: [(&str, u64); 3] = [
    ("escapevc", 0xe401_d053_4cb9_3be6),
    ("spin", 0x3937_bbf6_d045_8451),
    ("drain", 0x8ce1_dc7a_8e37_0223),
];

#[test]
fn saturated_golden_trace_is_pinned() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_trace_digest(scheme, 1, RngMode::Stream)))
        .collect();
    for (id, d) in &got {
        println!("trace {id}: {d:#018x}");
    }
    assert_eq!(
        got, PINNED_TRACE,
        "saturated trace bytes drifted from the pinned digests"
    );
}

#[test]
fn saturated_stats_are_pinned() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_stats_digest(scheme, 1, RngMode::Stream)))
        .collect();
    for (id, d) in &got {
        println!("stats {id}: {d:#018x}");
    }
    assert_eq!(
        got, PINNED_STATS,
        "saturated stats drifted from the pinned digests"
    );
}

/// The 4-shard kernel must reproduce the *same* pinned trace digests the
/// serial kernel was captured with — not merely be self-consistent.
#[test]
fn four_shard_golden_trace_matches_serial_pins() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_trace_digest(scheme, 4, RngMode::Stream)))
        .collect();
    for (id, d) in &got {
        println!("trace k4 {id}: {d:#018x}");
    }
    assert_eq!(
        got, PINNED_TRACE,
        "4-shard trace bytes drifted from the serial kernel's pinned digests"
    );
}

/// Same pin on statistics: 4-shard saturated runs must hash to the serial
/// kernel's pinned constants.
#[test]
fn four_shard_stats_match_serial_pins() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_stats_digest(scheme, 4, RngMode::Stream)))
        .collect();
    for (id, d) in &got {
        println!("stats k4 {id}: {d:#018x}");
    }
    assert_eq!(
        got, PINNED_STATS,
        "4-shard stats drifted from the serial kernel's pinned digests"
    );
}

/// Expected per-scheme digests for the keyed counter-based RNG
/// (`RngMode::Keyed`), captured on the serial kernel at its introduction.
/// A different sequence than the stream family by design; pinned so the
/// keyed mixer and its draw-site keys can never drift silently.
const KEYED_TRACE: [(&str, u64); 3] = [
    ("escapevc", 0xce49_ab86_21d3_29ed),
    ("spin", 0x5e02_858b_8c95_b6b9),
    ("drain", 0x0737_66c1_e779_2f5c),
];

const KEYED_STATS: [(&str, u64); 3] = [
    ("escapevc", 0xcf86_eb2f_2f37_335f),
    ("spin", 0x14b4_d9c7_ac8a_89dc),
    ("drain", 0x3784_8be9_cc04_e6fe),
];

#[test]
fn keyed_saturated_golden_trace_is_pinned() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_trace_digest(scheme, 1, RngMode::Keyed)))
        .collect();
    for (id, d) in &got {
        println!("keyed trace {id}: {d:#018x}");
    }
    assert_eq!(
        got, KEYED_TRACE,
        "keyed-mode trace bytes drifted from the pinned digests"
    );
}

#[test]
fn keyed_saturated_stats_are_pinned() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_stats_digest(scheme, 1, RngMode::Keyed)))
        .collect();
    for (id, d) in &got {
        println!("keyed stats {id}: {d:#018x}");
    }
    assert_eq!(
        got, KEYED_STATS,
        "keyed-mode stats drifted from the pinned digests"
    );
}

/// Keyed draws are a pure function of (seed, cycle, site, id), so the
/// shard planners need no census replay — and the digests must still
/// land on the exact serial-kernel pins at every shard count.
#[test]
fn keyed_four_shard_golden_trace_matches_serial_pins() {
    let got: Vec<(&str, u64)> = headline()
        .into_iter()
        .map(|(id, scheme)| (id, saturated_trace_digest(scheme, 4, RngMode::Keyed)))
        .collect();
    for (id, d) in &got {
        println!("keyed trace k4 {id}: {d:#018x}");
    }
    assert_eq!(
        got, KEYED_TRACE,
        "keyed 4-shard trace bytes drifted from the serial kernel's pins"
    );
}

/// The keyed stats pin must hold across the full determinism matrix:
/// shard count K ∈ {1, 2, 4, 8} × wake scheduler on/off × fast-forward
/// on/off. Keyed draws depend only on the key, never on visit order or
/// which cycles were actually swept, so every cell hashes identically.
/// Run on the drain scheme (the only one exercising all mechanism
/// paths); the per-scheme serial pins above cover the other schemes.
#[test]
fn keyed_stats_pins_hold_across_shards_wake_and_fast_forward() {
    let pinned = KEYED_STATS[2].1;
    for shards in [1usize, 2, 4, 8] {
        for wake in [true, false] {
            for ff in [true, false] {
                let d = saturated_stats_digest_cfg(
                    Scheme::Drain(DrainVariant::Vn1Vc2),
                    shards,
                    RngMode::Keyed,
                    wake,
                    ff,
                );
                println!("keyed stats k{shards} wake={wake} ff={ff}: {d:#018x}");
                assert_eq!(
                    d, pinned,
                    "keyed stats diverged at shards={shards} wake={wake} ff={ff}"
                );
            }
        }
    }
}
