//! Golden-trace regression tests: the observability event stream of a
//! deterministic run must be byte-identical across repeated runs and
//! across worker-thread counts (the sweep engine promises bit-identical
//! results no matter the parallelism, and the trace stream is the
//! strictest witness of that promise).

use drain_bench::cache::ResultCache;
use drain_bench::engine::SweepEngine;
use drain_bench::scheme::DrainVariant;
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{TraceConfig, TraceSink};
use drain_topology::Topology;

/// One deterministic traced run: a 2×2 mesh under DRAIN with a short
/// epoch (so drain-epoch events appear), serialized to JSONL bytes.
fn traced_jsonl(seed: u64) -> String {
    let topo = Topology::mesh(2, 2);
    let mut sim = Scheme::Drain(DrainVariant::Vn1Vc2).synthetic_sim_traced(
        &topo,
        true,
        SyntheticPattern::UniformRandom,
        0.10,
        seed,
        256,
        1,
        TraceConfig::events_on(),
    );
    sim.set_trace_sink(TraceSink::Memory(Vec::new()));
    sim.run(4_096);
    let events = sim
        .core_mut()
        .tracer_mut()
        .take_memory()
        .expect("memory sink installed");
    assert!(!events.is_empty(), "a traced run must emit events");
    let mut out = String::new();
    for e in &events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

#[test]
fn golden_trace_is_identical_across_runs() {
    let a = traced_jsonl(7);
    let b = traced_jsonl(7);
    assert_eq!(a, b, "same seed must produce a byte-identical trace");
    assert!(
        a.contains("\"ev\":\"drain-epoch-start\""),
        "short-epoch run must trace drain windows"
    );
    let c = traced_jsonl(8);
    assert_ne!(a, c, "different seeds must diverge");
}

#[test]
fn golden_trace_is_worker_thread_invariant() {
    let jobs: Vec<u64> = vec![3, 4, 5];
    let run = |threads: usize| -> Vec<String> {
        let mut engine =
            SweepEngine::with("goldentrace", Scale::Quick, threads, ResultCache::disabled());
        engine.run_jobs(&jobs, |&seed| traced_jsonl(seed), |_, _| 4_096)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "trace bytes must not depend on the worker-thread count"
    );
}
