//! Golden-trace regression tests: the observability event stream of a
//! deterministic run must be byte-identical across repeated runs, across
//! worker-thread counts (the sweep engine promises bit-identical results
//! no matter the parallelism) and across shard counts (the sharded
//! allocation kernel promises the same), with the trace stream as the
//! strictest witness of those promises. Also covered: the flight
//! recorder still dumps a replayable seed when the violating router is
//! owned by a non-zero shard.

use drain_bench::cache::ResultCache;
use drain_bench::engine::SweepEngine;
use drain_bench::scheme::DrainVariant;
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{TraceConfig, TraceSink};
use drain_topology::Topology;

/// One deterministic traced run: a 2×2 mesh under DRAIN with a short
/// epoch (so drain-epoch events appear), serialized to JSONL bytes,
/// on the `shards`-way allocation kernel (1 = serial).
fn traced_jsonl_sharded(seed: u64, shards: usize) -> String {
    let topo = Topology::mesh(2, 2);
    let mut sim = Scheme::Drain(DrainVariant::Vn1Vc2).synthetic_sim_traced(
        &topo,
        true,
        SyntheticPattern::UniformRandom,
        0.10,
        seed,
        256,
        1,
        TraceConfig::events_on(),
    );
    sim.set_shards(shards);
    sim.set_trace_sink(TraceSink::Memory(Vec::new()));
    sim.run(4_096);
    let events = sim
        .core_mut()
        .tracer_mut()
        .take_memory()
        .expect("memory sink installed");
    assert!(!events.is_empty(), "a traced run must emit events");
    let mut out = String::new();
    for e in &events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

/// Serial shorthand used by the pre-existing tests.
fn traced_jsonl(seed: u64) -> String {
    traced_jsonl_sharded(seed, 1)
}

#[test]
fn golden_trace_is_identical_across_runs() {
    let a = traced_jsonl(7);
    let b = traced_jsonl(7);
    assert_eq!(a, b, "same seed must produce a byte-identical trace");
    assert!(
        a.contains("\"ev\":\"drain-epoch-start\""),
        "short-epoch run must trace drain windows"
    );
    let c = traced_jsonl(8);
    assert_ne!(a, c, "different seeds must diverge");
}

#[test]
fn golden_trace_is_worker_thread_invariant() {
    let jobs: Vec<u64> = vec![3, 4, 5];
    let run = |threads: usize| -> Vec<String> {
        let mut engine =
            SweepEngine::with("goldentrace", Scale::Quick, threads, ResultCache::disabled());
        engine.run_jobs(&jobs, |&seed| traced_jsonl(seed), |_, _| 4_096)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "trace bytes must not depend on the worker-thread count"
    );
}

/// The same traced run must serialize to byte-identical JSONL on the
/// serial kernel and on every sharded kernel.
#[test]
fn golden_trace_is_shard_count_invariant() {
    for seed in [7u64, 8] {
        let serial = traced_jsonl_sharded(seed, 1);
        for k in [2usize, 4] {
            assert_eq!(
                serial,
                traced_jsonl_sharded(seed, k),
                "seed {seed}: trace bytes must not depend on shard count {k}"
            );
        }
    }
}

/// A violation on a router owned by a *non-zero* shard still produces a
/// complete flight-recorder dump carrying the replayable seed: the
/// drain turn-table is corrupted only on links terminating in shard 1 of
/// the 2-way partition, and the sabotaged run executes on the 2-shard
/// kernel.
#[test]
fn sharded_flight_recorder_dumps_replayable_seed() {
    use drain_core::{DrainConfig, DrainMechanism};
    use drain_netsim::routing::FullyAdaptive;
    use drain_netsim::traffic::SyntheticTraffic;
    use drain_netsim::{CheckConfig, RunOutcome, Sim, SimConfig, TraceEvent, ViolationKind};
    use drain_path::DrainPath;
    use drain_topology::partition::Partition;

    let dir = std::env::temp_dir().join(format!(
        "drain-shard-flightrec-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let topo = Topology::mesh(4, 4);
    let part = Partition::balanced(&topo, 2);
    let mut path = DrainPath::compute(&topo).expect("connected topology");
    // Skew only the turns of links whose downstream router shard 1 owns:
    // the forced-move validator must then fire inside the non-zero shard.
    let skew: Vec<_> = topo
        .link_ids()
        .filter(|&l| part.shard_of(topo.link(l).dst) == 1)
        .map(|l| (l, path.next_link(path.next_link(l))))
        .collect();
    assert!(!skew.is_empty(), "2-way mesh partition must own links");
    for (from, to) in skew {
        path.corrupt_turn_for_tests(from, to);
    }

    let seed = 0x5AAD_F11E;
    let config = SimConfig {
        num_classes: 1,
        seed,
        watchdog_threshold: 0,
        // Drain forced moves need occupied escape VCs to expose the skew.
        escape_entry_patience: 0,
        shards: 2,
        shard_min_active: 0,
        checks: CheckConfig::full().no_panic().with_progress_horizon(20_000),
        trace: TraceConfig::events_on().with_flight_recorder(dir.clone()),
        ..SimConfig::drain_default()
    };
    let mech = DrainMechanism::new(
        path,
        DrainConfig {
            epoch: 256,
            full_drain_period: 1,
            ..DrainConfig::default()
        },
    );
    let mut sim = Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(mech),
        Box::new(SyntheticTraffic::new(
            SyntheticPattern::UniformRandom,
            0.10,
            1,
            seed ^ 0x7AFF1C,
        )),
    );
    let outcome = sim.run(40_000);
    assert_eq!(outcome, RunOutcome::InvariantViolation);
    let v = sim.violation().expect("sabotaged run must trip the checker");
    assert_eq!(v.kind, ViolationKind::ForcedMove);
    assert_eq!(v.seed, seed, "violation must carry the replay seed");

    let dump = sim.flight_record().expect("failed run persists a dump");
    let text = std::fs::read_to_string(dump).unwrap();
    let last = text.lines().last().expect("non-empty dump");
    match TraceEvent::parse_jsonl(last) {
        Ok(TraceEvent::InvariantViolation { seed: s, .. }) => {
            assert_eq!(s, seed, "dump carries the replay seed");
        }
        other => panic!("final dump event should be the violation, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
