//! Regression tests for the parallel sweep engine's two core guarantees:
//!
//! 1. parallel execution is bit-identical to serial execution, and
//! 2. a warm cache rerun simulates nothing and returns identical points.

use drain_bench::engine::SweepEngine;
use drain_bench::cache::ResultCache;
use drain_bench::sweep;
use drain_bench::sweep::plan::{load_sweep_specs, PointSpec, TopoSpec};
use drain_bench::{Scale, Scheme};
use drain_netsim::traffic::SyntheticPattern;

/// The fig10-style grid this test sweeps: one scheme on a 4×4 mesh with
/// two different fault patterns.
fn grid() -> Vec<(TopoSpec, u64)> {
    vec![
        (TopoSpec::mesh_with_faults(4, 4, 2, 41), 41),
        (TopoSpec::mesh_with_faults(4, 4, 2, 42), 42),
    ]
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let pattern = SyntheticPattern::UniformRandom;

    // Serial reference: the plain sweep::load_sweep path, one thread, no
    // engine, no cache.
    let mut serial = Vec::new();
    for (topo, seed) in grid() {
        serial.extend(sweep::load_sweep(
            Scheme::Spin,
            &topo.build(),
            topo.full_mesh(),
            &pattern,
            seed,
            Scheme::DEFAULT_EPOCH,
            Scale::Quick,
        ));
    }

    // Parallel run: same grid through the engine on several workers.
    let specs: Vec<PointSpec> = grid()
        .into_iter()
        .flat_map(|(topo, seed)| {
            load_sweep_specs(
                Scheme::Spin,
                &topo,
                &pattern,
                seed,
                Scheme::DEFAULT_EPOCH,
                Scale::Quick,
            )
        })
        .collect();
    let mut engine = SweepEngine::with("determinism", Scale::Quick, 4, ResultCache::disabled());
    let parallel = engine.run_points(&specs);

    assert_eq!(
        serial, parallel,
        "parallel sweep must be point-for-point identical to serial"
    );
}

#[test]
fn warm_cache_rerun_runs_zero_simulations() {
    let dir = std::env::temp_dir().join(format!(
        "drain-determinism-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let specs: Vec<PointSpec> = grid()
        .into_iter()
        .flat_map(|(topo, seed)| {
            load_sweep_specs(
                Scheme::Spin,
                &topo,
                &SyntheticPattern::Neighbor,
                seed,
                Scheme::DEFAULT_EPOCH,
                Scale::Quick,
            )
        })
        .collect();

    let mut cold = SweepEngine::with("detcold", Scale::Quick, 2, ResultCache::at(&dir));
    let first = cold.run_points(&specs);
    let cold_report = cold.report();
    assert_eq!(cold_report.simulated, specs.len());
    assert_eq!(cold_report.cache_hits, 0);

    let mut warm = SweepEngine::with("detwarm", Scale::Quick, 2, ResultCache::at(&dir));
    let second = warm.run_points(&specs);
    let warm_report = warm.report();
    assert_eq!(warm_report.simulated, 0, "warm rerun must simulate nothing");
    assert_eq!(warm_report.cache_hits, specs.len());
    assert_eq!(first, second, "cached points must round-trip bit-identically");

    let _ = std::fs::remove_dir_all(&dir);
}
