//! Regression tests for the simulator's bit-identity guarantees:
//!
//! 1. parallel sweep execution is bit-identical to serial execution,
//! 2. a warm cache rerun simulates nothing and returns identical points,
//! 3. the occupancy-driven kernel's idle-cycle fast-forward is invisible:
//!    the same seeded point produces identical [`drain_netsim::Stats`] and
//!    byte-identical traces with the gate forced off and on,
//! 4. the sharded allocation kernel is invisible: the same seeded point
//!    produces identical [`drain_netsim::Stats`], the same final cycle and
//!    byte-identical traces at every shard count,
//! 5. the wake-driven Phase A scheduler is invisible: the same seeded
//!    point produces identical [`drain_netsim::Stats`], the same final
//!    cycle and byte-identical traces with blocked-VC parking on and with
//!    the dense re-route-every-cycle scan forced, at every shard count,
//! 6. the keyed counter-based RNG (`RngMode::Keyed`) is deterministic by
//!    construction: the same seeded point produces identical
//!    [`drain_netsim::Stats`], the same final cycle, the same draw
//!    counts and byte-identical traces across every cell of the
//!    K ∈ {1, 2, 4, 8} × wake on/off × fast-forward on/off × profiler
//!    cadence matrix — and the sharded planners produce exactly the
//!    serial kernel's draw volume (no census replay).

use drain_bench::engine::SweepEngine;
use drain_bench::cache::ResultCache;
use drain_bench::sweep;
use drain_bench::scheme::DrainVariant;
use drain_bench::sweep::plan::{load_sweep_specs, PointSpec, TopoSpec};
use drain_bench::{Scale, Scheme};
use drain_netsim::rng::NUM_DRAW_SITES;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{DrawSite, RngMode, Stats, TraceConfig, TraceSink};
use drain_topology::faults::FaultInjector;
use drain_topology::Topology;

/// The fig10-style grid this test sweeps: one scheme on a 4×4 mesh with
/// two different fault patterns.
fn grid() -> Vec<(TopoSpec, u64)> {
    vec![
        (TopoSpec::mesh_with_faults(4, 4, 2, 41), 41),
        (TopoSpec::mesh_with_faults(4, 4, 2, 42), 42),
    ]
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let pattern = SyntheticPattern::UniformRandom;

    // Serial reference: the plain sweep::load_sweep path, one thread, no
    // engine, no cache.
    let mut serial = Vec::new();
    for (topo, seed) in grid() {
        serial.extend(sweep::load_sweep(
            Scheme::Spin,
            &topo.build(),
            topo.full_mesh(),
            &pattern,
            seed,
            Scheme::DEFAULT_EPOCH,
            Scale::Quick,
        ));
    }

    // Parallel run: same grid through the engine on several workers.
    let specs: Vec<PointSpec> = grid()
        .into_iter()
        .flat_map(|(topo, seed)| {
            load_sweep_specs(
                Scheme::Spin,
                &topo,
                &pattern,
                seed,
                Scheme::DEFAULT_EPOCH,
                Scale::Quick,
            )
        })
        .collect();
    let mut engine = SweepEngine::with("determinism", Scale::Quick, 4, ResultCache::disabled());
    let parallel = engine.run_points(&specs);

    assert_eq!(
        serial, parallel,
        "parallel sweep must be point-for-point identical to serial"
    );
}

#[test]
fn warm_cache_rerun_runs_zero_simulations() {
    let dir = std::env::temp_dir().join(format!(
        "drain-determinism-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let specs: Vec<PointSpec> = grid()
        .into_iter()
        .flat_map(|(topo, seed)| {
            load_sweep_specs(
                Scheme::Spin,
                &topo,
                &SyntheticPattern::Neighbor,
                seed,
                Scheme::DEFAULT_EPOCH,
                Scale::Quick,
            )
        })
        .collect();

    let mut cold = SweepEngine::with("detcold", Scale::Quick, 2, ResultCache::at(&dir));
    let first = cold.run_points(&specs);
    let cold_report = cold.report();
    assert_eq!(cold_report.simulated, specs.len());
    assert_eq!(cold_report.cache_hits, 0);

    let mut warm = SweepEngine::with("detwarm", Scale::Quick, 2, ResultCache::at(&dir));
    let second = warm.run_points(&specs);
    let warm_report = warm.report();
    assert_eq!(warm_report.simulated, 0, "warm rerun must simulate nothing");
    assert_eq!(warm_report.cache_hits, specs.len());
    assert_eq!(first, second, "cached points must round-trip bit-identically");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The small irregular topology the fast-forward differentials run on.
fn irregular_topo() -> Topology {
    FaultInjector::new(9)
        .remove_links(&Topology::mesh(4, 4), 2)
        .expect("mesh(4,4) tolerates two removals")
}

/// One seeded point with the fast-forward gate forced to `ff`.
fn point_stats(scheme: Scheme, rate: f64, ff: bool) -> (Stats, u64, u64) {
    let topo = irregular_topo();
    // A short drain epoch so DRAIN's windows (and their fast-forward
    // horizon/rebase accounting) are exercised inside the run.
    let mut sim =
        scheme.synthetic_sim(&topo, false, SyntheticPattern::UniformRandom, rate, 11, 512);
    sim.set_fast_forward(ff);
    sim.run(6_000);
    (sim.stats().clone(), sim.core().cycle(), sim.ff_cycles_skipped())
}

/// Kernel differential: every headline scheme at a low and a saturated
/// rate must produce identical `Stats` (every counter and full latency
/// histograms) whether idle cycles are stepped or fast-forwarded.
#[test]
fn fast_forward_gate_is_bit_identical_across_schemes() {
    for scheme in Scheme::headline() {
        for rate in [0.01, 0.35] {
            let (off, cycle_off, _) = point_stats(scheme, rate, false);
            let (on, cycle_on, _) = point_stats(scheme, rate, true);
            assert_eq!(
                off,
                on,
                "{} at rate {rate}: stats must not depend on the fast-forward gate",
                scheme.label()
            );
            assert_eq!(
                cycle_off,
                cycle_on,
                "{} at rate {rate}: final cycle must not depend on the gate",
                scheme.label()
            );
            assert!(off.ejected > 0, "{} at rate {rate} delivered nothing", scheme.label());
        }
    }
}

/// Same differential on the trace stream: with event capture on, both
/// gate settings must yield byte-identical JSONL (capture itself pins the
/// clock, and the gate must respect that).
#[test]
fn fast_forward_gate_keeps_traces_byte_identical() {
    let topo = irregular_topo();
    for scheme in Scheme::headline() {
        let traced = |ff: bool| -> String {
            let mut sim = scheme.synthetic_sim_traced(
                &topo,
                false,
                SyntheticPattern::UniformRandom,
                0.10,
                11,
                512,
                1,
                TraceConfig::events_on(),
            );
            sim.set_fast_forward(ff);
            sim.set_trace_sink(TraceSink::Memory(Vec::new()));
            sim.run(2_000);
            let events = sim
                .core_mut()
                .tracer_mut()
                .take_memory()
                .expect("memory sink installed");
            assert!(!events.is_empty());
            events
                .iter()
                .map(|e| e.to_jsonl() + "\n")
                .collect()
        };
        assert_eq!(
            traced(false),
            traced(true),
            "{}: trace bytes must not depend on the fast-forward gate",
            scheme.label()
        );
    }
}

/// One seeded point on the `shards`-way kernel (1 = serial reference).
/// Forces the sharded path from cycle 0 via `set_shards`.
fn point_stats_sharded(scheme: Scheme, rate: f64, shards: usize) -> (Stats, u64) {
    let topo = irregular_topo();
    let mut sim =
        scheme.synthetic_sim(&topo, false, SyntheticPattern::UniformRandom, rate, 11, 512);
    sim.set_shards(shards);
    sim.run(6_000);
    (sim.stats().clone(), sim.core().cycle())
}

/// Sharded-kernel differential: every headline scheme at a low and a
/// saturated rate must produce identical `Stats` (every counter and full
/// latency histograms) and the same final cycle on the 2- and 4-shard
/// kernels as on the serial kernel.
#[test]
fn sharded_kernel_is_bit_identical_across_schemes() {
    for scheme in Scheme::headline() {
        for rate in [0.01, 0.35] {
            let (serial, serial_cycle) = point_stats_sharded(scheme, rate, 1);
            assert!(serial.ejected > 0, "{} at rate {rate} delivered nothing", scheme.label());
            for k in [2usize, 4] {
                let (sharded, cycle) = point_stats_sharded(scheme, rate, k);
                assert_eq!(
                    serial,
                    sharded,
                    "{} at rate {rate}: stats must not depend on shard count {k}",
                    scheme.label()
                );
                assert_eq!(
                    serial_cycle,
                    cycle,
                    "{} at rate {rate}: final cycle must not depend on shard count {k}",
                    scheme.label()
                );
            }
        }
    }
}

/// Same differential on the trace stream: with event capture on, the
/// serial and the 2-/4-shard kernels must yield byte-identical JSONL.
#[test]
fn sharded_kernel_keeps_traces_byte_identical() {
    let topo = irregular_topo();
    for scheme in Scheme::headline() {
        let traced = |shards: usize| -> String {
            let mut sim = scheme.synthetic_sim_traced(
                &topo,
                false,
                SyntheticPattern::UniformRandom,
                0.10,
                11,
                512,
                1,
                TraceConfig::events_on(),
            );
            sim.set_shards(shards);
            sim.set_trace_sink(TraceSink::Memory(Vec::new()));
            sim.run(2_000);
            let events = sim
                .core_mut()
                .tracer_mut()
                .take_memory()
                .expect("memory sink installed");
            assert!(!events.is_empty());
            events
                .iter()
                .map(|e| e.to_jsonl() + "\n")
                .collect()
        };
        let serial = traced(1);
        for k in [2usize, 4] {
            assert_eq!(
                serial,
                traced(k),
                "{}: trace bytes must not depend on shard count {k}",
                scheme.label()
            );
        }
    }
}

/// One seeded point with the wake scheduler set to `wake` on the
/// `shards`-way kernel. Returns the wake counters too, so callers can
/// assert the parking path actually engaged.
fn point_stats_wake(
    scheme: Scheme,
    rate: f64,
    wake: bool,
    shards: usize,
) -> (Stats, u64, drain_netsim::WakeCounters) {
    let topo = irregular_topo();
    let mut sim =
        scheme.synthetic_sim(&topo, false, SyntheticPattern::UniformRandom, rate, 11, 512);
    sim.set_wake_scheduler(wake);
    sim.set_shards(shards);
    sim.run(6_000);
    (
        sim.stats().clone(),
        sim.core().cycle(),
        sim.core().wake_counters(),
    )
}

/// Wake-scheduler differential: every headline scheme at a low and a
/// saturated rate, on the serial and the 2-/4-shard kernels, must produce
/// identical `Stats` (every counter and full latency histograms) and the
/// same final cycle whether blocked VCs park on wake subscriptions or the
/// dense Phase A scan re-routes them every cycle.
#[test]
fn wake_scheduler_is_bit_identical_to_dense_scan() {
    for scheme in Scheme::headline() {
        for rate in [0.01, 0.35] {
            for k in [1usize, 2, 4] {
                let (dense, dense_cycle, dense_ctrs) = point_stats_wake(scheme, rate, false, k);
                let (wake, wake_cycle, wake_ctrs) = point_stats_wake(scheme, rate, true, k);
                assert_eq!(
                    dense,
                    wake,
                    "{} at rate {rate}, {k} shards: stats must not depend on the wake scheduler",
                    scheme.label()
                );
                assert_eq!(
                    dense_cycle,
                    wake_cycle,
                    "{} at rate {rate}, {k} shards: final cycle must not depend on the wake scheduler",
                    scheme.label()
                );
                assert!(wake.ejected > 0, "{} at rate {rate} delivered nothing", scheme.label());
                assert_eq!(
                    dense_ctrs.parks, 0,
                    "dense scan must never park ({})",
                    scheme.label()
                );
                if rate > 0.1 {
                    assert!(
                        wake_ctrs.parks > 0 && wake_ctrs.skips > 0,
                        "{} saturated at {k} shards: wake scheduler never engaged ({wake_ctrs:?})",
                        scheme.label()
                    );
                }
            }
        }
    }
}

/// Same differential on the trace stream: with event capture on, the
/// wake-driven and dense Phase A schedulers must yield byte-identical
/// JSONL at every shard count.
#[test]
fn wake_scheduler_keeps_traces_byte_identical() {
    let topo = irregular_topo();
    for scheme in Scheme::headline() {
        let traced = |wake: bool, shards: usize| -> String {
            let mut sim = scheme.synthetic_sim_traced(
                &topo,
                false,
                SyntheticPattern::UniformRandom,
                0.10,
                11,
                512,
                1,
                TraceConfig::events_on(),
            );
            sim.set_wake_scheduler(wake);
            sim.set_shards(shards);
            sim.set_trace_sink(TraceSink::Memory(Vec::new()));
            sim.run(2_000);
            let events = sim
                .core_mut()
                .tracer_mut()
                .take_memory()
                .expect("memory sink installed");
            assert!(!events.is_empty());
            events
                .iter()
                .map(|e| e.to_jsonl() + "\n")
                .collect()
        };
        for k in [1usize, 2, 4] {
            assert_eq!(
                traced(false, k),
                traced(true, k),
                "{}: trace bytes must not depend on the wake scheduler at {k} shards",
                scheme.label()
            );
        }
    }
}

/// One seeded keyed-mode point across the full determinism matrix:
/// shard count, wake scheduler, fast-forward gate, profiler cadence.
/// Returns the per-site draw counts too, so callers can prove the
/// sharded planners draw exactly the serial volume (no census replay)
/// and that parked heads draw nothing.
fn point_stats_keyed(
    scheme: Scheme,
    rate: f64,
    shards: usize,
    wake: bool,
    ff: bool,
    profile_period: u64,
) -> (Stats, u64, [u64; NUM_DRAW_SITES]) {
    let topo = irregular_topo();
    let mut sim =
        scheme.synthetic_sim(&topo, false, SyntheticPattern::UniformRandom, rate, 11, 512);
    sim.set_rng_mode(RngMode::Keyed);
    sim.set_shards(shards);
    sim.set_wake_scheduler(wake);
    sim.set_fast_forward(ff);
    sim.set_profile_period(profile_period);
    sim.run(6_000);
    (
        sim.stats().clone(),
        sim.core().cycle(),
        sim.core().rng_draw_counts(),
    )
}

/// Keyed-mode differential: every headline scheme at a low and a
/// saturated rate must produce identical `Stats`, the same final cycle
/// *and the same per-site draw counts* at K ∈ {1, 2, 4, 8} with
/// fast-forward on and off. Equal draw counts across K are the census
/// retirement made observable: a stream-mode sharded planner replays
/// the whole census K times, a keyed planner sweeps only owned slots.
#[test]
fn keyed_mode_is_bit_identical_across_shards_and_fast_forward() {
    for scheme in Scheme::headline() {
        for rate in [0.01, 0.35] {
            let (serial, serial_cycle, serial_draws) =
                point_stats_keyed(scheme, rate, 1, true, true, 0);
            assert!(serial.ejected > 0, "{} at rate {rate} delivered nothing", scheme.label());
            for k in [2usize, 4, 8] {
                for ff in [true, false] {
                    let (sharded, cycle, draws) =
                        point_stats_keyed(scheme, rate, k, true, ff, 0);
                    assert_eq!(
                        serial,
                        sharded,
                        "{} at rate {rate}: keyed stats diverged at shards={k} ff={ff}",
                        scheme.label()
                    );
                    assert_eq!(serial_cycle, cycle);
                    assert_eq!(
                        serial_draws,
                        draws,
                        "{} at rate {rate}: keyed draw counts diverged at shards={k} ff={ff} \
                         (sharded planners must not replay the census)",
                        scheme.label()
                    );
                }
            }
        }
    }
}

/// Keyed-mode wake differential: parking is invisible to results, and
/// parked heads provably draw *nothing* — at a saturated rate the
/// wake-scheduled run performs strictly fewer Phase A draws than the
/// dense scan while producing identical `Stats`. (In stream mode the
/// two schedulers draw the same count by contract; the draw saving is
/// the keyed mode's whole point.)
#[test]
fn keyed_wake_scheduler_is_bit_identical_and_parked_heads_draw_nothing() {
    for scheme in Scheme::headline() {
        for rate in [0.01, 0.35] {
            for k in [1usize, 4] {
                let (dense, dense_cycle, dense_draws) =
                    point_stats_keyed(scheme, rate, k, false, true, 0);
                let (wake, wake_cycle, wake_draws) =
                    point_stats_keyed(scheme, rate, k, true, true, 0);
                assert_eq!(
                    dense,
                    wake,
                    "{} at rate {rate}, {k} shards: keyed stats must not depend on the wake scheduler",
                    scheme.label()
                );
                assert_eq!(dense_cycle, wake_cycle);
                assert_eq!(
                    dense_draws[DrawSite::Injection.index()],
                    wake_draws[DrawSite::Injection.index()],
                    "wake scheduling must not change injection draws"
                );
                if rate > 0.1 {
                    assert!(
                        wake_draws[DrawSite::PhaseA.index()]
                            < dense_draws[DrawSite::PhaseA.index()],
                        "{} saturated at {k} shards: parked heads must skip their draws \
                         (wake {} vs dense {})",
                        scheme.label(),
                        wake_draws[DrawSite::PhaseA.index()],
                        dense_draws[DrawSite::PhaseA.index()]
                    );
                }
            }
        }
    }
}

/// Keyed-mode profiler-cadence differential: the phase profiler is a
/// pure observer at any cadence, and keyed draws keyed on the actual
/// cycle number cannot be perturbed by it.
#[test]
fn keyed_mode_is_bit_identical_across_profile_cadence() {
    let scheme = Scheme::Drain(DrainVariant::Vn1Vc2);
    let (base, base_cycle, base_draws) = point_stats_keyed(scheme, 0.35, 2, true, true, 0);
    for period in [1u64, 64, 1024] {
        let (got, cycle, draws) = point_stats_keyed(scheme, 0.35, 2, true, true, period);
        assert_eq!(base, got, "profiler cadence {period} perturbed keyed stats");
        assert_eq!(base_cycle, cycle);
        assert_eq!(base_draws, draws);
    }
}

/// Keyed-mode trace differential: with event capture on, the serial and
/// the 2-/4-/8-shard kernels must yield byte-identical JSONL, wake on
/// and off.
#[test]
fn keyed_mode_keeps_traces_byte_identical() {
    let topo = irregular_topo();
    for scheme in Scheme::headline() {
        let traced = |shards: usize, wake: bool| -> String {
            let mut sim = scheme.synthetic_sim_traced(
                &topo,
                false,
                SyntheticPattern::UniformRandom,
                0.10,
                11,
                512,
                1,
                TraceConfig::events_on(),
            );
            sim.set_rng_mode(RngMode::Keyed);
            sim.set_shards(shards);
            sim.set_wake_scheduler(wake);
            sim.set_trace_sink(TraceSink::Memory(Vec::new()));
            sim.run(2_000);
            let events = sim
                .core_mut()
                .tracer_mut()
                .take_memory()
                .expect("memory sink installed");
            assert!(!events.is_empty());
            events
                .iter()
                .map(|e| e.to_jsonl() + "\n")
                .collect()
        };
        let serial = traced(1, true);
        for k in [2usize, 4, 8] {
            for wake in [true, false] {
                assert_eq!(
                    serial,
                    traced(k, wake),
                    "{}: keyed trace bytes diverged at shards={k} wake={wake}",
                    scheme.label()
                );
            }
        }
    }
}

/// A workload where fast-forward provably engages: scripted bursts with
/// long idle gaps under DRAIN with a short epoch. The fast run must skip
/// a large share of the clock yet reproduce the stepped run's stats,
/// final cycle, and drain-window count exactly.
#[test]
fn fast_forward_engages_on_idle_gaps_and_stays_exact() {
    use drain_core::{DrainConfig, DrainMechanism};
    use drain_netsim::mechanism::Mechanism;
    use drain_netsim::routing::FullyAdaptive;
    use drain_netsim::traffic::{InjectionEvent, TraceTraffic};
    use drain_netsim::{MessageClass, Sim, SimConfig};
    use drain_path::DrainPath;
    use drain_topology::NodeId;

    let topo = irregular_topo();
    let n = topo.num_nodes() as u16;
    // Three bursts separated by thousands of idle cycles.
    let mut events = Vec::new();
    for (burst, start) in [(0u64, 0u64), (1, 5_000), (2, 15_000)] {
        for i in 0..8u16 {
            events.push(InjectionEvent {
                cycle: start + u64::from(i / 4),
                // src ≡ 3i+b, dest ≡ 5i+7+b (mod n): equal only when
                // 2i ≡ -7, impossible for even n — no self-addressed packets.
                src: NodeId((i * 3 + burst as u16) % n),
                dest: NodeId((i * 5 + 7 + burst as u16) % n),
                class: MessageClass::REQUEST,
                len_flits: 1,
            });
        }
    }
    let run = |ff: bool| -> (Stats, u64, u64, u64) {
        let topo = std::sync::Arc::new(irregular_topo());
        let path = DrainPath::compute(&topo).expect("connected");
        let mech: Box<dyn Mechanism> = Box::new(DrainMechanism::new(
            path,
            DrainConfig {
                epoch: 2_048,
                ..DrainConfig::default()
            },
        ));
        let mut sim = Sim::new(
            std::sync::Arc::clone(&topo),
            SimConfig {
                num_classes: 1,
                seed: 5,
                ..SimConfig::drain_default()
            },
            Box::new(FullyAdaptive::new(topo)),
            mech,
            Box::new(TraceTraffic::new(events.clone())),
        );
        sim.set_fast_forward(ff);
        sim.run(30_000);
        (
            sim.stats().clone(),
            sim.core().cycle(),
            sim.ff_cycles_skipped(),
            sim.ff_jumps(),
        )
    };
    let (stats_off, cycle_off, skipped_off, _) = run(false);
    let (stats_on, cycle_on, skipped_on, jumps_on) = run(true);
    assert_eq!(skipped_off, 0, "gate off must step every cycle");
    assert!(
        skipped_on > 5_000,
        "bursty idle gaps must fast-forward thousands of cycles, got {skipped_on}"
    );
    assert!(jumps_on > 0);
    assert_eq!(stats_off, stats_on, "fast-forward changed the stats");
    assert_eq!(cycle_off, cycle_on, "fast-forward changed the final cycle");
    assert_eq!(stats_on.injected, events.len() as u64);
    assert_eq!(stats_on.ejected, events.len() as u64);
    assert!(
        stats_on.drains > 0,
        "short-epoch run must execute drain windows across the gaps"
    );
}
