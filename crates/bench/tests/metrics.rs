//! Regression tests for the unified metrics registry and the kernel
//! phase profiler:
//!
//! 1. the profiler is a pure observer — the same seeded point produces
//!    identical [`drain_netsim::Stats`], the same final cycle and
//!    byte-identical traces with profiling off and on, at every shard
//!    count;
//! 2. telemetry sampling coexists with idle fast-forward — stats and
//!    final cycle are bit-identical with the gate off and on, sample
//!    stamps always sit on window boundaries, and cumulative link-flit
//!    accounting agrees to the flit;
//! 3. a real simulation's Prometheus exposition parses back and
//!    re-encodes byte-identically, with registry counters agreeing with
//!    [`drain_netsim::Stats`];
//! 4. `MetricsSnapshot::merge` is associative (property-based), so
//!    fan-in order across sweep workers never changes the exposition.

use drain_bench::Scheme;
use drain_netsim::traffic::SyntheticPattern;
use drain_netsim::{MetricsSnapshot, Stats, TraceConfig, TraceSink};
use drain_topology::faults::FaultInjector;
use drain_topology::Topology;

/// The small irregular topology the differentials run on (same one the
/// determinism suite uses).
fn irregular_topo() -> Topology {
    FaultInjector::new(9)
        .remove_links(&Topology::mesh(4, 4), 2)
        .expect("mesh(4,4) tolerates two removals")
}

/// One seeded point with the phase profiler at `period` (0 = off) on the
/// `shards`-way kernel. Returns stats, final cycle, and trace bytes.
fn profiled_point(scheme: Scheme, period: u64, shards: usize) -> (Stats, u64, String) {
    let topo = irregular_topo();
    let mut sim = scheme.synthetic_sim_traced(
        &topo,
        false,
        SyntheticPattern::UniformRandom,
        0.10,
        11,
        512,
        1,
        TraceConfig::events_on(),
    );
    sim.set_profile_period(period);
    sim.set_shards(shards);
    sim.set_trace_sink(TraceSink::Memory(Vec::new()));
    sim.run(2_000);
    let trace: String = sim
        .core_mut()
        .tracer_mut()
        .take_memory()
        .expect("memory sink installed")
        .iter()
        .map(|e| e.to_jsonl() + "\n")
        .collect();
    assert!(!trace.is_empty());
    (sim.stats().clone(), sim.core().cycle(), trace)
}

/// Profiler differential: every headline scheme must produce identical
/// `Stats` (every counter and full latency histograms), the same final
/// cycle and byte-identical traces with the profiler off and sampling
/// every 32nd cycle, on the serial and the 4-shard kernels.
#[test]
fn profiler_is_bit_identical_off_and_on() {
    for scheme in Scheme::headline() {
        for shards in [1usize, 4] {
            let (off, cycle_off, trace_off) = profiled_point(scheme, 0, shards);
            let (on, cycle_on, trace_on) = profiled_point(scheme, 32, shards);
            assert_eq!(
                off,
                on,
                "{} at {shards} shards: stats must not depend on the profiler",
                scheme.label()
            );
            assert_eq!(
                cycle_off,
                cycle_on,
                "{} at {shards} shards: final cycle must not depend on the profiler",
                scheme.label()
            );
            assert_eq!(
                trace_off,
                trace_on,
                "{} at {shards} shards: trace bytes must not depend on the profiler",
                scheme.label()
            );
            assert!(off.ejected > 0, "{} delivered nothing", scheme.label());
        }
    }
}

/// Telemetry × fast-forward differential, on a workload where the gate
/// provably engages: scripted bursts separated by long idle gaps, with
/// telemetry sampling every 64 cycles. The fast leg must skip thousands
/// of cycles yet reproduce the stepped leg's stats, final cycle, and
/// cumulative per-link flit accounting exactly; every sample stamp (on
/// both legs) must sit on a window boundary.
#[test]
fn telemetry_sampling_coexists_with_fast_forward() {
    use drain_core::{DrainConfig, DrainMechanism};
    use drain_netsim::mechanism::Mechanism;
    use drain_netsim::routing::FullyAdaptive;
    use drain_netsim::traffic::{InjectionEvent, TraceTraffic};
    use drain_netsim::{MessageClass, Sim, SimConfig, TelemetrySample};
    use drain_path::DrainPath;
    use drain_topology::NodeId;

    const PERIOD: u64 = 64;

    let topo = irregular_topo();
    let n = topo.num_nodes() as u16;
    let mut events = Vec::new();
    for (burst, start) in [(0u64, 0u64), (1, 5_000), (2, 15_000)] {
        for i in 0..8u16 {
            events.push(InjectionEvent {
                cycle: start + u64::from(i / 4),
                src: NodeId((i * 3 + burst as u16) % n),
                dest: NodeId((i * 5 + 7 + burst as u16) % n),
                class: MessageClass::REQUEST,
                len_flits: 1,
            });
        }
    }
    let run = |ff: bool| -> (Stats, u64, u64, Vec<TelemetrySample>, Vec<u64>) {
        let topo = std::sync::Arc::new(irregular_topo());
        let path = DrainPath::compute(&topo).expect("connected");
        let mech: Box<dyn Mechanism> = Box::new(DrainMechanism::new(
            path,
            DrainConfig {
                epoch: 2_048,
                ..DrainConfig::default()
            },
        ));
        let num_links = topo.num_unidirectional_links();
        let mut sim = Sim::new(
            std::sync::Arc::clone(&topo),
            SimConfig {
                num_classes: 1,
                seed: 5,
                trace: TraceConfig::default().with_telemetry(PERIOD),
                ..SimConfig::drain_default()
            },
            Box::new(FullyAdaptive::new(topo)),
            mech,
            Box::new(TraceTraffic::new(events.clone())),
        );
        sim.set_fast_forward(ff);
        sim.run(30_000);
        let cumulative: Vec<u64> = (0..num_links)
            .map(|l| sim.core().telemetry().total_link_flits(l))
            .collect();
        (
            sim.stats().clone(),
            sim.core().cycle(),
            sim.ff_cycles_skipped(),
            sim.core_mut().telemetry_mut().take_samples(),
            cumulative,
        )
    };

    let (stats_off, cycle_off, skipped_off, samples_off, links_off) = run(false);
    let (stats_on, cycle_on, skipped_on, samples_on, links_on) = run(true);

    assert_eq!(skipped_off, 0, "gate off must step every cycle");
    assert!(
        skipped_on > 5_000,
        "bursty idle gaps must fast-forward thousands of cycles, got {skipped_on}"
    );
    assert_eq!(stats_off, stats_on, "fast-forward changed the stats");
    assert_eq!(cycle_off, cycle_on, "fast-forward changed the final cycle");
    assert_eq!(
        links_off, links_on,
        "cumulative per-link flit accounting must not depend on the gate"
    );

    // Every sample stamp — stepped or jump-emitted — sits on a window
    // boundary (the window's last cycle).
    for s in samples_off.iter().chain(&samples_on) {
        assert_eq!(
            (s.cycle + 1) % PERIOD,
            0,
            "sample at cycle {} is not on a boundary",
            s.cycle
        );
    }
    // The fast leg collapses each idle stretch into one jump-emitted
    // sample, so it takes strictly fewer samples — but both legs must
    // account for the same total traffic.
    assert!(!samples_on.is_empty());
    assert!(
        samples_on.len() < samples_off.len(),
        "fast leg must elide idle sample boundaries ({} vs {})",
        samples_on.len(),
        samples_off.len()
    );
    let windowed = |samples: &[TelemetrySample]| -> u64 {
        samples.iter().map(|s| s.total_flits()).sum()
    };
    assert_eq!(
        windowed(&samples_off),
        windowed(&samples_on),
        "summed window deltas must agree between the legs"
    );
    // Jump-emitted samples describe idle stretches: state frozen, so the
    // matching stepped-leg sample (same stamp) shows identical occupancy.
    for s_on in &samples_on {
        let s_off = samples_off
            .iter()
            .find(|s| s.cycle == s_on.cycle)
            .expect("every fast-leg stamp exists on the stepped leg");
        assert_eq!(
            s_off.routers.iter().map(|r| r.occupied_vcs).collect::<Vec<_>>(),
            s_on.routers.iter().map(|r| r.occupied_vcs).collect::<Vec<_>>(),
            "occupancy at stamp {} must not depend on the gate",
            s_on.cycle
        );
    }
}

/// A real simulation's exposition must round-trip through the text
/// format byte-identically, and the registry must agree with `Stats`.
#[test]
fn prometheus_round_trips_on_a_real_snapshot() {
    let topo = irregular_topo();
    let mut sim = Scheme::headline()[0].synthetic_sim_traced(
        &topo,
        false,
        SyntheticPattern::UniformRandom,
        0.10,
        11,
        512,
        1,
        TraceConfig::default().with_telemetry(64),
    );
    sim.set_profile_period(32);
    sim.set_shards(2);
    sim.run(3_000);

    let snap = sim.metrics_snapshot();
    let stats = sim.stats();
    assert_eq!(
        snap.counter_value("drain_packets_ejected_total"),
        Some(stats.ejected)
    );
    assert_eq!(
        snap.counter_value("drain_packets_injected_total"),
        Some(stats.injected)
    );
    assert_eq!(snap.counter_value("drain_hops_total"), Some(stats.hops));
    assert!(
        snap.counter_value("drain_profile_sampled_cycles_total").unwrap_or(0) > 0,
        "profiler must have sampled"
    );
    assert!(
        snap.counter_value("drain_telemetry_samples_taken_total").unwrap_or(0) > 0,
        "telemetry must have sampled"
    );

    let text = snap.to_prometheus();
    let reparsed = MetricsSnapshot::parse_prometheus(&text)
        .expect("real exposition parses");
    assert_eq!(
        reparsed.to_prometheus(),
        text,
        "exposition must round-trip byte-identically"
    );
    assert_eq!(
        reparsed.counter_value("drain_packets_ejected_total"),
        Some(stats.ejected)
    );
}

mod merge_associativity {
    use super::*;
    use drain_netsim::HistogramSnapshot;
    use proptest::prelude::*;

    /// A small arbitrary registry: a counter, a labeled counter, a gauge
    /// and a histogram whose samples are derived from `hist_seed` (the
    /// vendored proptest has no collection strategies, so an LCG stands
    /// in for an arbitrary sample vector).
    fn snapshot(c: u64, labeled: u64, g: i64, hist_seed: u64) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.counter("t_counter_total", "c", c);
        m.counter_labeled("t_labeled_total", "l", &[("k", "a")], labeled);
        m.gauge("t_gauge", "g", g as f64);
        let mut h = HistogramSnapshot::default();
        let mut x = hist_seed;
        for _ in 0..(hist_seed % 8) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 48);
        }
        m.histogram("t_hist", "h", h);
        m
    }

    proptest! {
        /// merge(merge(a, b), c) == merge(a, merge(b, c)) — compared on
        /// the wire format, so sample ordering and float rendering are
        /// covered too. Gauges are right-biased in both groupings, so
        /// associativity holds for every kind.
        #[test]
        fn merge_is_associative(
            a in (any::<u64>(), any::<u64>(), -1000i64..1000, any::<u64>()),
            b in (any::<u64>(), any::<u64>(), -1000i64..1000, any::<u64>()),
            c in (any::<u64>(), any::<u64>(), -1000i64..1000, any::<u64>()),
        ) {
            // Keep counters small enough that three-way sums cannot wrap.
            let mk = |t: &(u64, u64, i64, u64)| {
                snapshot(t.0 % (1 << 40), t.1 % (1 << 40), t.2, t.3)
            };
            let (sa, sb, sc) = (mk(&a), mk(&b), mk(&c));

            let mut left = sa.clone();
            left.merge(&sb);
            left.merge(&sc);

            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);

            prop_assert_eq!(left.to_prometheus(), right.to_prometheus());
        }
    }
}
