//! 11 nm per-component constants.
//!
//! These values are synthesized to DSENT-like proportions for an 11 nm
//! process (the paper's node): SRAM buffer cells dominate both area and
//! leakage; crossbar wiring is cheaper per bit; allocator/control logic is
//! small. Only *ratios* matter for the paper's normalized results; the
//! absolute scale is indicative.
//!
//! If you have a calibrated DSENT run for your process, substitute your
//! numbers here — every model in this crate reads only these constants.

/// SRAM cell + peripheral area per buffer bit (µm²).
pub const SRAM_AREA_PER_BIT_UM2: f64 = 0.35;
/// SRAM leakage per buffer bit (mW).
pub const SRAM_LEAK_PER_BIT_MW: f64 = 3.6e-5;
/// SRAM write energy per bit (pJ).
pub const SRAM_WRITE_PJ_PER_BIT: f64 = 0.004;
/// SRAM read energy per bit (pJ).
pub const SRAM_READ_PJ_PER_BIT: f64 = 0.003;

/// Crossbar area per bit-port-pair (µm²) — wire-dominated, cheaper than
/// SRAM.
pub const XBAR_AREA_PER_BIT_UM2: f64 = 0.12;
/// Crossbar leakage per bit-port-pair (mW).
pub const XBAR_LEAK_PER_BIT_MW: f64 = 0.4e-5;
/// Crossbar traversal energy per bit (pJ).
pub const XBAR_TRAVERSE_PJ_PER_BIT: f64 = 0.003;

/// Allocator/arbiter area per port×VC unit (µm²).
pub const ALLOC_AREA_PER_UNIT_UM2: f64 = 18.0;
/// Allocator leakage per port×VC unit (mW).
pub const ALLOC_LEAK_PER_UNIT_MW: f64 = 3.0e-4;
/// Energy per allocation decision (pJ).
pub const ALLOC_ENERGY_PJ: f64 = 0.15;
/// Fixed router control area (routing logic, pipeline registers) (µm²).
pub const CONTROL_BASE_AREA_UM2: f64 = 420.0;
/// Fixed router control leakage (mW).
pub const CONTROL_BASE_LEAK_MW: f64 = 8.0e-3;

/// SPIN's probe generation/coordination logic, charged as a fraction of
/// baseline control+crossbar (paper §V-A: ~15%).
pub const SPIN_CONTROL_FRACTION: f64 = 0.15;

/// DRAIN turn-table bits per port (an output-port index plus valid bit).
pub const DRAIN_CONTROL_BITS: f64 = 8.0;
/// DRAIN epoch register + full-drain counter area (µm²).
pub const DRAIN_EPOCH_REGISTER_AREA_UM2: f64 = 60.0;

/// Clock/precharge power per buffer bit while the buffer is powered
/// (mW) — burned whether or not a flit is present; the dominant "wasted"
/// term of Fig 4.
pub const SRAM_CLOCK_PER_BIT_MW: f64 = 1.0e-4;

/// Link leakage per unidirectional link (mW), 1 mm 128-bit link.
pub const LINK_LEAK_MW: f64 = 0.012;
/// Link traversal energy per bit (pJ/bit/mm).
pub const LINK_TRAVERSE_PJ_PER_BIT: f64 = 0.008;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn sram_leak_dominates_xbar_per_bit() {
        assert!(SRAM_LEAK_PER_BIT_MW > XBAR_LEAK_PER_BIT_MW);
        assert!(SRAM_AREA_PER_BIT_UM2 > XBAR_AREA_PER_BIT_UM2);
    }

    #[test]
    fn constants_are_positive() {
        for v in [
            SRAM_AREA_PER_BIT_UM2,
            SRAM_LEAK_PER_BIT_MW,
            SRAM_WRITE_PJ_PER_BIT,
            SRAM_READ_PJ_PER_BIT,
            XBAR_AREA_PER_BIT_UM2,
            XBAR_LEAK_PER_BIT_MW,
            XBAR_TRAVERSE_PJ_PER_BIT,
            ALLOC_AREA_PER_UNIT_UM2,
            ALLOC_LEAK_PER_UNIT_MW,
            ALLOC_ENERGY_PJ,
            CONTROL_BASE_AREA_UM2,
            CONTROL_BASE_LEAK_MW,
            SPIN_CONTROL_FRACTION,
            DRAIN_CONTROL_BITS,
            DRAIN_EPOCH_REGISTER_AREA_UM2,
            LINK_LEAK_MW,
            LINK_TRAVERSE_PJ_PER_BIT,
        ] {
            assert!(v > 0.0);
        }
    }
}
