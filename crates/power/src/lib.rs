//! Analytical router/network power and area model (DSENT substitute).
//!
//! The paper models power and area with DSENT at 11 nm. DSENT itself is a
//! large circuit-level estimator; what Figs 4 and 9 actually depend on is
//! the *structural* composition of a router — VC buffers dominate both
//! area and static power, so removing virtual networks (DRAIN) removes
//! most of the router. This crate reproduces that structure with
//! documented per-component constants (see [`constants`]) synthesized to
//! DSENT-like 11 nm proportions:
//!
//! * input buffers: SRAM bits = ports × VNs × VCs × depth × flit width;
//! * crossbar: wire/mux area ∝ ports² × flit width;
//! * allocators + routing control: ∝ ports × total VCs;
//! * mechanism extras: SPIN's detection/coordination logic is charged at
//!   ~15% of baseline control (paper §V-A); DRAIN's epoch register +
//!   turn-table is a few hundred bits per router.
//!
//! Outputs are meaningful as *ratios* (everything the paper reports is
//! normalized to the escape-VC baseline); absolute µm²/mW are indicative
//! only.
//!
//! # Examples
//!
//! ```
//! use drain_power::{RouterParams, MechanismKind, router_model};
//!
//! // Escape-VC baseline: 3 VNs x 2 VCs. DRAIN: 1 VN x 1 VC.
//! let esc = router_model(&RouterParams::new(5, 3, 2), MechanismKind::EscapeVc);
//! let drain = router_model(&RouterParams::new(5, 1, 1), MechanismKind::Drain);
//! let area_saving = 1.0 - drain.area_um2 / esc.area_um2;
//! assert!(area_saving > 0.6, "DRAIN saves most of the router: {area_saving}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;

use constants::*;

/// Structural router parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterParams {
    /// Ports (neighbors + local).
    pub ports: usize,
    /// Virtual networks.
    pub vns: usize,
    /// VCs per virtual network.
    pub vcs_per_vn: usize,
    /// Buffer depth per VC in flits (single packet per VC: 5).
    pub depth_flits: usize,
    /// Flit width in bits.
    pub flit_bits: usize,
}

impl RouterParams {
    /// Common case: `ports` ports, Table II depth (5 flits) and width
    /// (128 bits).
    pub fn new(ports: usize, vns: usize, vcs_per_vn: usize) -> Self {
        RouterParams {
            ports,
            vns,
            vcs_per_vn,
            depth_flits: 5,
            flit_bits: 128,
        }
    }

    /// Total VC buffers per input port.
    pub fn vcs_total(&self) -> usize {
        self.vns * self.vcs_per_vn
    }

    /// Total buffer bits in the router.
    pub fn buffer_bits(&self) -> usize {
        self.ports * self.vcs_total() * self.depth_flits * self.flit_bits
    }
}

/// Which deadlock-freedom scheme's control hardware to charge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MechanismKind {
    /// Turn-restricted escape VC: no extra control beyond the baseline.
    EscapeVc,
    /// SPIN: probes + coordination, ~15% control overhead (paper §V-A).
    Spin,
    /// DRAIN: epoch register + drain turn-table per router.
    Drain,
    /// Bare router (no deadlock hardware).
    None,
}

/// Per-router area/power breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RouterPower {
    /// Total area in µm².
    pub area_um2: f64,
    /// Buffer share of the area.
    pub buffer_area_um2: f64,
    /// Static (leakage + idle clock) power in mW.
    pub static_mw: f64,
    /// Buffer share of static power.
    pub buffer_static_mw: f64,
    /// Dynamic energy per flit-hop in pJ.
    pub energy_per_flit_pj: f64,
}

/// Computes the per-router model.
pub fn router_model(p: &RouterParams, mech: MechanismKind) -> RouterPower {
    let buffer_bits = p.buffer_bits() as f64;
    let xbar_bits = (p.ports * p.ports * p.flit_bits) as f64;
    let alloc_units = (p.ports * p.vcs_total()) as f64;

    let buffer_area = buffer_bits * SRAM_AREA_PER_BIT_UM2;
    let xbar_area = xbar_bits * XBAR_AREA_PER_BIT_UM2;
    let alloc_area = alloc_units * ALLOC_AREA_PER_UNIT_UM2 + CONTROL_BASE_AREA_UM2;
    let control_area = xbar_area * 0.0 + alloc_area;

    // SPIN's ~15% (paper §V-A) is quoted against a basic single-VC DoR
    // router; charge the same absolute overhead regardless of VC count.
    let basic = RouterParams {
        vns: 1,
        vcs_per_vn: 1,
        ..*p
    };
    let basic_area = basic.buffer_bits() as f64 * SRAM_AREA_PER_BIT_UM2
        + xbar_bits * XBAR_AREA_PER_BIT_UM2
        + (basic.ports * basic.vcs_total()) as f64 * ALLOC_AREA_PER_UNIT_UM2
        + CONTROL_BASE_AREA_UM2;
    let basic_static = basic.buffer_bits() as f64 * SRAM_LEAK_PER_BIT_MW
        + xbar_bits * XBAR_LEAK_PER_BIT_MW
        + (basic.ports * basic.vcs_total()) as f64 * ALLOC_LEAK_PER_UNIT_MW
        + CONTROL_BASE_LEAK_MW;

    let mech_area = match mech {
        MechanismKind::EscapeVc | MechanismKind::None => 0.0,
        MechanismKind::Spin => SPIN_CONTROL_FRACTION * basic_area,
        MechanismKind::Drain => {
            // Epoch register + full-drain counter + one turn-table entry
            // per port (an output-port index, a few bits each).
            DRAIN_CONTROL_BITS * SRAM_AREA_PER_BIT_UM2 * (p.ports as f64)
                + DRAIN_EPOCH_REGISTER_AREA_UM2
        }
    };
    let area = buffer_area + xbar_area + control_area + mech_area;

    let buffer_static = buffer_bits * SRAM_LEAK_PER_BIT_MW;
    let xbar_static = xbar_bits * XBAR_LEAK_PER_BIT_MW;
    let alloc_static = alloc_units * ALLOC_LEAK_PER_UNIT_MW + CONTROL_BASE_LEAK_MW;
    let mech_static = match mech {
        MechanismKind::EscapeVc | MechanismKind::None => 0.0,
        MechanismKind::Spin => SPIN_CONTROL_FRACTION * basic_static,
        MechanismKind::Drain => DRAIN_CONTROL_BITS * SRAM_LEAK_PER_BIT_MW * (p.ports as f64),
    };
    let static_mw = buffer_static + xbar_static + alloc_static + mech_static;

    // Per-flit dynamic energy: buffer write + read, crossbar traversal,
    // allocation.
    let energy_per_flit = (p.flit_bits as f64)
        * (SRAM_WRITE_PJ_PER_BIT + SRAM_READ_PJ_PER_BIT + XBAR_TRAVERSE_PJ_PER_BIT)
        + ALLOC_ENERGY_PJ;

    RouterPower {
        area_um2: area,
        buffer_area_um2: buffer_area,
        static_mw,
        buffer_static_mw: buffer_static,
        energy_per_flit_pj: energy_per_flit,
    }
}

/// Whole-network aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetworkPower {
    /// Sum of router areas, µm².
    pub router_area_um2: f64,
    /// Sum of router static power, mW.
    pub router_static_mw: f64,
    /// Link static power, mW.
    pub link_static_mw: f64,
    /// Clock/precharge power of the VC buffers, mW (burned regardless of
    /// traffic — the dominant wasted term).
    pub clock_mw: f64,
    /// Dynamic power over the measured window, mW.
    pub dynamic_mw: f64,
    /// Active power (dynamic, moving real flits), mW.
    pub active_mw: f64,
    /// Wasted power (static burned while buffers sit idle), mW.
    pub wasted_mw: f64,
}

/// Sums the model over a topology and attributes a simulation's measured
/// activity.
///
/// `flit_hops` is the simulator's count of flit-link traversals over
/// `cycles` at `freq_ghz`. Utilization (for the active/wasted split of
/// Fig 4) is the fraction of buffer-cycles actually holding flits,
/// approximated from flit-hops and total buffering.
pub fn network_model(
    topo: &drain_topology::Topology,
    vns: usize,
    vcs_per_vn: usize,
    mech: MechanismKind,
    flit_hops: u64,
    cycles: u64,
    freq_ghz: f64,
) -> NetworkPower {
    let mut router_area = 0.0;
    let mut router_static = 0.0;
    let mut energy_per_flit = 0.0;
    for n in topo.nodes() {
        let ports = topo.degree(n) + 1; // + local port
        let rp = RouterParams::new(ports, vns, vcs_per_vn);
        let m = router_model(&rp, mech);
        router_area += m.area_um2;
        router_static += m.static_mw;
        energy_per_flit = m.energy_per_flit_pj; // same per-flit cost everywhere
    }
    let links = topo.num_unidirectional_links() as f64;
    let link_static = links * LINK_LEAK_MW;
    let dynamic_mw = if cycles == 0 {
        0.0
    } else {
        // pJ/flit * flits / (cycles / f) => mW
        (energy_per_flit + LINK_TRAVERSE_PJ_PER_BIT * 128.0) * flit_hops as f64 * freq_ghz
            / cycles as f64
    };
    // Buffer occupancy estimate: each flit-hop occupies one buffer slot
    // for ~1 cycle of write + 1 of read.
    let total_buffer_slots: f64 = topo
        .nodes()
        .map(|n| ((topo.degree(n) + 1) * vns * vcs_per_vn * 5) as f64)
        .sum();
    let utilization = if cycles == 0 || total_buffer_slots == 0.0 {
        0.0
    } else {
        ((flit_hops as f64 * 2.0) / (total_buffer_slots * cycles as f64)).min(1.0)
    };
    let total_buffer_bits: f64 = topo
        .nodes()
        .map(|n| ((topo.degree(n) + 1) * vns * vcs_per_vn * 5 * 128) as f64)
        .sum();
    let clock_mw = total_buffer_bits * SRAM_CLOCK_PER_BIT_MW;
    let static_total = router_static + link_static + clock_mw;
    NetworkPower {
        router_area_um2: router_area,
        router_static_mw: router_static,
        link_static_mw: link_static,
        clock_mw,
        dynamic_mw,
        active_mw: dynamic_mw + static_total * utilization,
        wasted_mw: static_total * (1.0 - utilization),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_topology::Topology;

    fn mesh_network(vns: usize, vcs: usize, mech: MechanismKind) -> NetworkPower {
        let topo = Topology::mesh(8, 8);
        network_model(&topo, vns, vcs, mech, 1_000_000, 100_000, 1.0)
    }

    #[test]
    fn fig9_area_shape() {
        // Escape VC: 3VN x 2VC. SPIN: 3VN x 1VC (+15% control).
        // DRAIN: 1VN x 1VC (paper §V-A).
        let esc = mesh_network(3, 2, MechanismKind::EscapeVc);
        let spin = mesh_network(3, 1, MechanismKind::Spin);
        let drain = mesh_network(1, 1, MechanismKind::Drain);
        let spin_ratio = spin.router_area_um2 / esc.router_area_um2;
        let drain_ratio = drain.router_area_um2 / esc.router_area_um2;
        assert!(
            (0.35..0.75).contains(&spin_ratio),
            "spin area ratio {spin_ratio}"
        );
        // Paper: ~72% reduction => ratio ~0.28.
        assert!(
            (0.15..0.40).contains(&drain_ratio),
            "drain area ratio {drain_ratio}"
        );
    }

    #[test]
    fn fig9_power_shape() {
        let esc = mesh_network(3, 2, MechanismKind::EscapeVc);
        let drain = mesh_network(1, 1, MechanismKind::Drain);
        let ratio = drain.router_static_mw / esc.router_static_mw;
        // Paper: ~77% reduction => ratio ~0.23.
        assert!((0.10..0.35).contains(&ratio), "drain power ratio {ratio}");
    }

    #[test]
    fn buffers_dominate() {
        let p = RouterParams::new(5, 3, 2);
        let m = router_model(&p, MechanismKind::EscapeVc);
        assert!(m.buffer_area_um2 / m.area_um2 > 0.6);
        assert!(m.buffer_static_mw / m.static_mw > 0.6);
    }

    #[test]
    fn spin_control_overhead_visible() {
        let p = RouterParams::new(5, 3, 1);
        let base = router_model(&p, MechanismKind::None);
        let spin = router_model(&p, MechanismKind::Spin);
        let overhead = spin.area_um2 / base.area_um2 - 1.0;
        assert!(
            (0.005..0.10).contains(&overhead),
            "spin adds modest control area: {overhead}"
        );
    }

    #[test]
    fn drain_control_is_tiny() {
        let p = RouterParams::new(5, 1, 1);
        let none = router_model(&p, MechanismKind::None);
        let drain = router_model(&p, MechanismKind::Drain);
        let overhead = drain.area_um2 / none.area_um2 - 1.0;
        assert!(overhead < 0.05, "drain control overhead {overhead}");
    }

    #[test]
    fn wasted_power_dominates_at_low_utilization(){
        // Fig 4's takeaway: most VN power is wasted.
        let topo = Topology::mesh(8, 8);
        let low = network_model(&topo, 3, 2, MechanismKind::EscapeVc, 50_000, 1_000_000, 1.0);
        assert!(low.wasted_mw > low.active_mw);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let topo = Topology::mesh(2, 2);
        let m = network_model(&topo, 1, 1, MechanismKind::None, 0, 0, 1.0);
        assert_eq!(m.dynamic_mw, 0.0);
        assert_eq!(m.active_mw, 0.0);
    }
}
