//! One-stop assembly of a DRAIN-protected network simulation.

use std::fmt;

use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{Endpoints, SyntheticPattern, SyntheticTraffic};
use drain_netsim::{Sim, SimConfig};
use drain_path::{DrainPath, DrainPathError};
use drain_topology::Topology;

use crate::{DrainConfig, DrainMechanism};

/// Errors from [`DrainNetworkBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DrainBuildError {
    /// The drain path could not be computed.
    Path(DrainPathError),
}

impl fmt::Display for DrainBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainBuildError::Path(e) => write!(f, "drain path construction failed: {e}"),
        }
    }
}

impl std::error::Error for DrainBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrainBuildError::Path(e) => Some(e),
        }
    }
}

impl From<DrainPathError> for DrainBuildError {
    fn from(e: DrainPathError) -> Self {
        DrainBuildError::Path(e)
    }
}

/// Builder for a [`Sim`] protected by DRAIN: fully adaptive routing, the
/// paper's default VN-1/VC-2 configuration, and an offline-computed drain
/// path.
///
/// # Examples
///
/// ```
/// use drain_topology::{Topology, faults::FaultInjector};
/// use drain_core::builder::DrainNetworkBuilder;
///
/// let topo = FaultInjector::new(3).remove_links(&Topology::mesh(8, 8), 8).unwrap();
/// let sim = DrainNetworkBuilder::new(topo)
///     .epoch(4096)
///     .injection_rate(0.02)
///     .build()?;
/// assert_eq!(sim.mechanism_name(), "drain");
/// # Ok::<(), drain_core::DrainBuildError>(())
/// ```
pub struct DrainNetworkBuilder {
    topo: Topology,
    sim_config: SimConfig,
    drain_config: DrainConfig,
    endpoints: Option<Box<dyn Endpoints>>,
    injection_rate: f64,
    pattern: SyntheticPattern,
    seed: u64,
}

impl fmt::Debug for DrainNetworkBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DrainNetworkBuilder")
            .field("topology", &self.topo.name())
            .field("sim_config", &self.sim_config)
            .field("drain_config", &self.drain_config)
            .field(
                "endpoints",
                &self.endpoints.as_ref().map(|e| e.name().to_string()),
            )
            .field("injection_rate", &self.injection_rate)
            .field("seed", &self.seed)
            .finish()
    }
}

impl DrainNetworkBuilder {
    /// Starts a builder for `topo` with the paper's defaults (VN-1, VC-2,
    /// 64K epoch, uniform-random traffic at 2%).
    pub fn new(topo: Topology) -> Self {
        DrainNetworkBuilder {
            topo,
            sim_config: SimConfig {
                num_classes: 1,
                ..SimConfig::drain_default()
            },
            drain_config: DrainConfig::default(),
            endpoints: None,
            injection_rate: 0.02,
            pattern: SyntheticPattern::UniformRandom,
            seed: 1,
        }
    }

    /// Overrides the full simulator configuration.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim_config = cfg;
        self
    }

    /// Overrides the full DRAIN configuration.
    pub fn drain_config(mut self, cfg: DrainConfig) -> Self {
        self.drain_config = cfg;
        self
    }

    /// Sets the drain epoch (cycles between drain windows).
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.drain_config.epoch = epoch;
        self
    }

    /// Uses a custom endpoint model instead of synthetic traffic.
    pub fn endpoints(mut self, endpoints: Box<dyn Endpoints>) -> Self {
        self.endpoints = Some(endpoints);
        self
    }

    /// Synthetic traffic injection rate (ignored when custom endpoints are
    /// set).
    pub fn injection_rate(mut self, rate: f64) -> Self {
        self.injection_rate = rate;
        self
    }

    /// Synthetic traffic pattern (ignored when custom endpoints are set).
    pub fn pattern(mut self, pattern: SyntheticPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Seed for traffic and allocation randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Computes the drain path and assembles the simulation.
    ///
    /// # Errors
    ///
    /// [`DrainBuildError::Path`] if the topology admits no drain path
    /// (disconnected or linkless).
    pub fn build(self) -> Result<Sim, DrainBuildError> {
        // One shared topology: the drain path reads it, the routing holds
        // a reference, and the core takes the same allocation.
        let topo = std::sync::Arc::new(self.topo);
        let path = DrainPath::compute(&topo)?;
        let mech = DrainMechanism::new(path, self.drain_config);
        let routing = FullyAdaptive::new(&topo);
        let mut sim_config = self.sim_config;
        sim_config.seed = self.seed;
        let endpoints = self.endpoints.unwrap_or_else(|| {
            Box::new(SyntheticTraffic::new(
                self.pattern,
                self.injection_rate,
                1,
                self.seed ^ 0x5EED,
            ))
        });
        Ok(Sim::new(
            topo,
            sim_config,
            Box::new(routing),
            Box::new(mech),
            endpoints,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_run() {
        let mut sim = DrainNetworkBuilder::new(Topology::mesh(4, 4))
            .epoch(512)
            .build()
            .unwrap();
        sim.run(2_000);
        assert!(sim.stats().ejected > 0);
        assert_eq!(sim.core().config().vns, 1);
        assert_eq!(sim.core().config().vcs_per_vn, 2);
    }

    #[test]
    fn builder_rejects_disconnected() {
        let topo = Topology::from_edges("dis", 4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            DrainNetworkBuilder::new(topo).build(),
            Err(DrainBuildError::Path(DrainPathError::Disconnected))
        ));
    }

    #[test]
    fn builder_seed_is_deterministic() {
        let run = |seed| {
            let mut sim = DrainNetworkBuilder::new(Topology::mesh(4, 4))
                .epoch(256)
                .seed(seed)
                .injection_rate(0.1)
                .build()
                .unwrap();
            sim.run(2_000);
            (sim.stats().injected, sim.stats().ejected)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
