//! Packet truncation for flit-based (wormhole) flow control — paper
//! §III-C3.
//!
//! Under wormhole flow control a packet's flits may straddle several
//! routers when a drain fires, so forcing turns obliviously can cut a
//! packet in two: some flits continue in the original direction while the
//! rest are turned along the drain path. The paper adopts the truncation
//! mechanism of deflection-routing work [24, 25]:
//!
//! 1. the router *encodes the last downstream flit as a tail* so the
//!    downstream fragment becomes a complete, self-describing packet;
//! 2. it *embeds header information into the first upstream flit* so the
//!    remainder can be routed independently;
//! 3. all fragments are buffered at the destination's MSHRs and the
//!    original packet is *reassembled once every flit has arrived*.
//!
//! This module implements that mechanism at the flit level with full
//! tests: [`flitize`], [`truncate`], and [`Reassembler`]. The repository's
//! timing simulator models virtual cut-through (a packet never straddles
//! routers — Table II: single packet per VC), matching the configuration
//! the paper evaluates; truncation is exercised by unit and property tests
//! rather than by the timing model.

use std::collections::HashMap;

use drain_netsim::MessageClass;
use drain_topology::NodeId;

/// Routing header carried by every head flit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct FlitHeader {
    /// Original source.
    pub src: NodeId,
    /// Destination (all fragments go here).
    pub dest: NodeId,
    /// Message class of the original packet.
    pub class: MessageClass,
    /// Id of the original packet (reassembly key).
    pub packet_id: u64,
    /// Total flits of the original packet.
    pub total_flits: u32,
}

/// One flit on a wormhole link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Flit {
    /// Carries the routing header plus its payload sequence number.
    Head {
        /// The embedded header.
        header: FlitHeader,
        /// Sequence number of this flit within the original packet.
        seq: u32,
    },
    /// Payload only.
    Body {
        /// Reassembly key.
        packet_id: u64,
        /// Sequence number within the original packet.
        seq: u32,
    },
    /// Last flit of a (possibly truncated) packet.
    Tail {
        /// Reassembly key.
        packet_id: u64,
        /// Sequence number within the original packet.
        seq: u32,
    },
}

impl Flit {
    /// The original packet this flit belongs to.
    pub fn packet_id(&self) -> u64 {
        match *self {
            Flit::Head { header, .. } => header.packet_id,
            Flit::Body { packet_id, .. } | Flit::Tail { packet_id, .. } => packet_id,
        }
    }

    /// The flit's sequence number within the original packet.
    pub fn seq(&self) -> u32 {
        match *self {
            Flit::Head { seq, .. } => seq,
            Flit::Body { seq, .. } | Flit::Tail { seq, .. } => seq,
        }
    }
}

/// Serializes a packet into its wormhole flit stream: a head, bodies and a
/// tail (a 1-flit packet is a head that is also recognized by position).
pub fn flitize(header: FlitHeader) -> Vec<Flit> {
    let n = header.total_flits.max(1);
    (0..n)
        .map(|seq| {
            if seq == 0 {
                Flit::Head { header, seq }
            } else if seq == n - 1 {
                Flit::Tail {
                    packet_id: header.packet_id,
                    seq,
                }
            } else {
                Flit::Body {
                    packet_id: header.packet_id,
                    seq,
                }
            }
        })
        .collect()
}

/// Truncates an in-flight flit stream after `downstream_len` flits (the
/// flits that already left the router when the drain forced a turn).
///
/// Returns `(downstream, upstream)`: the downstream fragment's last flit is
/// re-encoded as a tail, and the upstream fragment's first flit is
/// re-encoded as a head carrying the embedded header — both fragments are
/// now complete, independently routable packets (paper §III-C3 steps 1-2).
///
/// # Panics
///
/// Panics if `downstream_len` is 0 or ≥ the stream length (nothing to
/// truncate), or if the stream does not start with a head flit.
pub fn truncate(flits: &[Flit], downstream_len: usize) -> (Vec<Flit>, Vec<Flit>) {
    assert!(
        downstream_len > 0 && downstream_len < flits.len(),
        "truncation point must split the packet"
    );
    let Flit::Head { header, .. } = flits[0] else {
        panic!("flit stream must start with a head");
    };
    let mut down: Vec<Flit> = flits[..downstream_len].to_vec();
    // 1) Encode the last downstream flit as a tail — unless the fragment
    //    is a single head flit, which is already a complete one-flit
    //    packet (head doubles as tail by position).
    let last = down.last_mut().expect("non-empty downstream fragment");
    if !matches!(last, Flit::Head { .. }) {
        *last = Flit::Tail {
            packet_id: last.packet_id(),
            seq: last.seq(),
        };
    }
    // 2) Embed header information into the first upstream flit.
    let mut up: Vec<Flit> = flits[downstream_len..].to_vec();
    let first = up.first_mut().expect("non-empty upstream fragment");
    *first = Flit::Head {
        header,
        seq: first.seq(),
    };
    (down, up)
}

/// Reassembles truncated fragments at the destination's MSHRs (paper
/// §III-C3 step 3): "when all flits have been ejected, the full packet is
/// reassembled and processed as usual."
#[derive(Clone, Debug, Default)]
pub struct Reassembler {
    pending: HashMap<u64, Pending>,
}

#[derive(Clone, Debug)]
struct Pending {
    header: FlitHeader,
    received: Vec<bool>,
    count: u32,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts one ejected fragment. Returns the original packet's header
    /// when its last missing flit arrives.
    ///
    /// # Panics
    ///
    /// Panics if a fragment does not start with a head flit, carries an
    /// out-of-range sequence number, or duplicates a flit.
    pub fn accept(&mut self, fragment: &[Flit]) -> Option<FlitHeader> {
        let Some(&Flit::Head { header, .. }) = fragment.first() else {
            panic!("fragments start with a (possibly re-encoded) head flit");
        };
        let entry = self.pending.entry(header.packet_id).or_insert_with(|| Pending {
            header,
            received: vec![false; header.total_flits as usize],
            count: 0,
        });
        for f in fragment {
            let seq = f.seq() as usize;
            assert!(seq < entry.received.len(), "sequence out of range");
            assert!(!entry.received[seq], "duplicate flit {seq}");
            entry.received[seq] = true;
            entry.count += 1;
        }
        if entry.count == entry.header.total_flits {
            let done = self.pending.remove(&header.packet_id).expect("present");
            Some(done.header)
        } else {
            None
        }
    }

    /// Packets with fragments still outstanding.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(id: u64, total: u32) -> FlitHeader {
        FlitHeader {
            src: NodeId(1),
            dest: NodeId(7),
            class: MessageClass::RESPONSE,
            packet_id: id,
            total_flits: total,
        }
    }

    #[test]
    fn flitize_shapes() {
        let f = flitize(header(1, 5));
        assert_eq!(f.len(), 5);
        assert!(matches!(f[0], Flit::Head { .. }));
        assert!(matches!(f[1], Flit::Body { .. }));
        assert!(matches!(f[4], Flit::Tail { .. }));
        let single = flitize(header(2, 1));
        assert_eq!(single.len(), 1);
        assert!(matches!(single[0], Flit::Head { .. }));
    }

    #[test]
    fn truncate_re_encodes_boundary_flits() {
        let f = flitize(header(3, 5));
        let (down, up) = truncate(&f, 2);
        assert_eq!(down.len(), 2);
        assert_eq!(up.len(), 3);
        assert!(matches!(down[1], Flit::Tail { seq: 1, .. }), "downstream tail");
        assert!(
            matches!(up[0], Flit::Head { seq: 2, .. }),
            "upstream head embeds the header"
        );
        // Sequence numbers are preserved for reassembly.
        let seqs: Vec<u32> = down.iter().chain(&up).map(Flit::seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "split the packet")]
    fn truncate_rejects_degenerate_points() {
        let f = flitize(header(4, 3));
        let _ = truncate(&f, 3);
    }

    #[test]
    fn reassembly_from_two_fragments() {
        let f = flitize(header(5, 5));
        let (down, up) = truncate(&f, 3);
        let mut r = Reassembler::new();
        assert_eq!(r.accept(&down), None);
        assert_eq!(r.outstanding(), 1);
        assert_eq!(r.accept(&up), Some(header(5, 5)));
        assert_eq!(r.outstanding(), 0);
    }

    #[test]
    fn reassembly_out_of_order_and_nested_truncation() {
        // Truncate twice: the upstream remainder is itself truncated.
        let f = flitize(header(6, 5));
        let (down, up) = truncate(&f, 2);
        let (up_a, up_b) = truncate(&up, 1);
        let mut r = Reassembler::new();
        assert_eq!(r.accept(&up_b), None);
        assert_eq!(r.accept(&down), None);
        assert_eq!(r.accept(&up_a), Some(header(6, 5)));
    }

    #[test]
    fn interleaved_packets_reassemble_independently() {
        let fa = flitize(header(7, 4));
        let fb = flitize(header(8, 3));
        let (da, ua) = truncate(&fa, 1);
        let (db, ub) = truncate(&fb, 2);
        let mut r = Reassembler::new();
        assert_eq!(r.accept(&da), None);
        assert_eq!(r.accept(&db), None);
        assert_eq!(r.outstanding(), 2);
        assert_eq!(r.accept(&ua), Some(header(7, 4)));
        assert_eq!(r.accept(&ub), Some(header(8, 3)));
        assert_eq!(r.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate flit")]
    fn duplicate_fragment_detected() {
        let f = flitize(header(9, 4));
        let (down, _up) = truncate(&f, 2);
        let mut r = Reassembler::new();
        r.accept(&down);
        r.accept(&down);
    }
}
