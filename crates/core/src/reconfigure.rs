//! Fault-event reconfiguration (paper §II-D, §III-B).
//!
//! When a link wears out, the paper reruns the offline drain-path algorithm
//! and reloads the turn-tables ("turn-tables can be configured at boot
//! time, which will permit a new drain path to be computed ... in the event
//! of a link fault"). [`FaultTolerantNetwork`] models that flow on top of
//! the simulator: on a fault event the network stops accepting traffic,
//! flushes in-flight packets, the topology loses the link, the drain path
//! and routing tables are recomputed, and service resumes on the degraded
//! network.

use std::sync::Arc;

use drain_netsim::routing::FullyAdaptive;
use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
use drain_netsim::{RunOutcome, Sim, SimConfig};
use drain_path::DrainPath;
use drain_topology::{LinkId, Topology, TopologyError};

use crate::{DrainBuildError, DrainConfig, DrainMechanism};

/// Cumulative service record across fault events.
#[derive(Clone, Debug, Default)]
pub struct ServiceRecord {
    /// Fault events survived.
    pub faults_survived: usize,
    /// Total packets delivered across all epochs of service.
    pub total_delivered: u64,
    /// Total cycles of service.
    pub total_cycles: u64,
    /// Cycles spent flushing + reconfiguring at fault events.
    pub reconfiguration_cycles: u64,
}

/// A DRAIN network that survives link wear-out by recomputing its drain
/// path.
pub struct FaultTolerantNetwork {
    topo: Topology,
    sim: Sim,
    sim_config: SimConfig,
    drain_config: DrainConfig,
    pattern: SyntheticPattern,
    injection_rate: f64,
    seed: u64,
    record: ServiceRecord,
}

impl FaultTolerantNetwork {
    /// Brings up the network on `topo` with synthetic traffic.
    ///
    /// # Errors
    ///
    /// [`DrainBuildError`] if no drain path exists for `topo`.
    pub fn new(
        topo: Topology,
        sim_config: SimConfig,
        drain_config: DrainConfig,
        pattern: SyntheticPattern,
        injection_rate: f64,
        seed: u64,
    ) -> Result<Self, DrainBuildError> {
        let sim = Self::assemble(
            &topo,
            &sim_config,
            &drain_config,
            &pattern,
            injection_rate,
            seed,
            None,
        )?;
        Ok(FaultTolerantNetwork {
            topo,
            sim,
            sim_config,
            drain_config,
            pattern,
            injection_rate,
            seed,
            record: ServiceRecord::default(),
        })
    }

    fn assemble(
        topo: &Topology,
        sim_config: &SimConfig,
        drain_config: &DrainConfig,
        pattern: &SyntheticPattern,
        injection_rate: f64,
        seed: u64,
        stop_injection_at: Option<u64>,
    ) -> Result<Sim, DrainBuildError> {
        let path = DrainPath::compute(topo)?;
        let mech = DrainMechanism::new(path, drain_config.clone());
        let mut traffic = SyntheticTraffic::new(pattern.clone(), injection_rate, 1, seed ^ 0xFA17);
        if let Some(c) = stop_injection_at {
            traffic = traffic.stop_injection_at(c);
        }
        // One clone of the (per-epoch) topology, shared between routing
        // and core.
        let topo = std::sync::Arc::new(topo.clone());
        Ok(Sim::new(
            Arc::clone(&topo),
            sim_config.clone(),
            Box::new(FullyAdaptive::new(topo)),
            Box::new(mech),
            Box::new(traffic),
        ))
    }

    /// Current topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The underlying simulation for the current service epoch.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Service record so far.
    pub fn record(&self) -> &ServiceRecord {
        &self.record
    }

    /// Runs normal service for `cycles`.
    pub fn serve(&mut self, cycles: u64) {
        self.sim.run(cycles);
        self.record.total_cycles += cycles;
    }

    /// A link wears out: flush traffic, drop the link, recompute the drain
    /// path + routing, resume. Returns the flush duration in cycles.
    ///
    /// # Errors
    ///
    /// [`TopologyError::WouldDisconnect`] when the failed link was a bridge
    /// (service cannot continue — the paper's connectivity assumption), or
    /// a [`DrainBuildError`] wrapped in `Ok(Err(..))` is impossible since
    /// connectivity was just verified; path errors become panics.
    pub fn fault_link(&mut self, link: LinkId) -> Result<u64, TopologyError> {
        let new_topo = self.topo.without_link(link)?;
        // Flush in-flight traffic on the old topology (in hardware the
        // packets drain in place; full drains bound the tail).
        let flushed = self.flush_in_place();
        self.record.reconfiguration_cycles += flushed;
        // Reconfigure on the degraded topology.
        self.record.total_delivered += self.sim.stats().ejected;
        self.seed = self.seed.wrapping_add(0x9E37_79B9);
        self.topo = new_topo;
        self.sim = Self::assemble(
            &self.topo,
            &self.sim_config,
            &self.drain_config,
            &self.pattern,
            self.injection_rate,
            self.seed,
            None,
        )
        .expect("degraded topology is connected, so a drain path exists");
        self.record.faults_survived += 1;
        Ok(flushed)
    }

    /// Runs the current simulation in short slices until the network is
    /// empty or a generous budget is spent. Injection keeps running in the
    /// old simulation; at fault-tolerance traffic rates delivery outpaces
    /// injection, and full drains bound the tail.
    fn flush_in_place(&mut self) -> u64 {
        let start = self.sim.core().cycle();
        let mut waited = 0u64;
        while self.sim.core().live_packets() > 0 && waited < 500_000 {
            let before = self.sim.core().live_packets();
            self.sim.run(256);
            waited += 256;
            if self.sim.core().live_packets() >= before && waited > 8_192 {
                break;
            }
        }
        self.sim.core().cycle() - start
    }

    /// Total packets delivered including the current service epoch.
    pub fn delivered(&self) -> u64 {
        self.record.total_delivered + self.sim.stats().ejected
    }

    /// Convenience: run a full wear-out scenario — serve, fail a random
    /// removable link, repeat `faults` times. Returns the outcome of the
    /// final service period.
    pub fn wear_out_scenario(
        &mut self,
        serve_cycles: u64,
        faults: usize,
        fault_seed: u64,
    ) -> RunOutcome {
        use drain_topology::faults::FaultInjector;
        for i in 0..faults {
            self.serve(serve_cycles);
            if let Some(link) =
                FaultInjector::new(fault_seed).pick_removable_link(&self.topo, i as u64)
            {
                self.fault_link(link).expect("picked a removable link");
            }
        }
        self.serve(serve_cycles);
        RunOutcome::BudgetExhausted
    }
}

impl std::fmt::Debug for FaultTolerantNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultTolerantNetwork")
            .field("topology", &self.topo.name())
            .field("record", &self.record)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network() -> FaultTolerantNetwork {
        FaultTolerantNetwork::new(
            Topology::mesh(4, 4),
            SimConfig {
                num_classes: 1,
                ..SimConfig::drain_default()
            },
            DrainConfig {
                epoch: 512,
                full_drain_period: 8,
                ..DrainConfig::default()
            },
            SyntheticPattern::UniformRandom,
            0.05,
            3,
        )
        .unwrap()
    }

    #[test]
    fn survives_sequential_faults() {
        let mut net = network();
        net.wear_out_scenario(2_000, 3, 42);
        assert_eq!(net.record().faults_survived, 3);
        assert!(net.delivered() > 0);
        assert!(net.topology().is_connected());
        assert_eq!(
            net.topology().num_bidirectional_links(),
            Topology::mesh(4, 4).num_bidirectional_links() - 3
        );
    }

    #[test]
    fn bridge_fault_rejected() {
        // Shrink to a tree-ish topology where some link is a bridge.
        let topo = Topology::from_edges("t", 4, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]).unwrap();
        let mut net = FaultTolerantNetwork::new(
            topo.clone(),
            SimConfig {
                num_classes: 1,
                ..SimConfig::drain_default()
            },
            DrainConfig {
                epoch: 256,
                ..DrainConfig::default()
            },
            SyntheticPattern::UniformRandom,
            0.02,
            1,
        )
        .unwrap();
        // Fail links until one becomes a bridge.
        let mut rejected = false;
        for _ in 0..5 {
            let l = LinkId(0);
            match net.fault_link(l) {
                Ok(_) => {}
                Err(TopologyError::WouldDisconnect { .. }) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected, "a bridge failure must be rejected");
    }
}
