//! DRAIN: the paper's subactive deadlock-freedom mechanism.
//!
//! DRAIN neither avoids deadlocks (like turn restrictions / escape VCs /
//! virtual networks) nor detects them (like SPIN). It obliviously and
//! periodically *drains* the network: every `epoch` cycles, after a short
//! pre-drain credit freeze, each router forces the packet in every escape
//! VC one hop along a precomputed [`DrainPath`] covering every link. Any
//! routing-level or protocol-level deadlock is eventually swept away; when
//! no deadlock exists, the only cost is the occasional misroute.
//!
//! This crate provides:
//!
//! * [`DrainConfig`] — epoch, pre-drain window, hops per drain, full-drain
//!   period (paper §III-C).
//! * [`DrainMechanism`] — the runtime controller implementing the epoch
//!   register, credit freeze and turn-table-forced movement as a
//!   [`drain_netsim::mechanism::Mechanism`].
//! * [`builder::DrainNetworkBuilder`] — one-stop assembly of a DRAIN-protected
//!   simulation.
//! * [`reconfigure`] — the fault-event flow: drain traffic, recompute the
//!   drain path offline, resume on the degraded topology.
//! * [`truncation`] — the paper's §III-C3 packet-truncation mechanism for
//!   flit-based (wormhole) flow control, implemented and tested at the
//!   flit level.
//!
//! # Examples
//!
//! ```
//! use drain_topology::Topology;
//! use drain_core::builder::DrainNetworkBuilder;
//! use drain_netsim::traffic::{SyntheticTraffic, SyntheticPattern};
//!
//! let topo = Topology::mesh(4, 4);
//! let mut sim = DrainNetworkBuilder::new(topo)
//!     .epoch(1024)
//!     .endpoints(Box::new(SyntheticTraffic::new(
//!         SyntheticPattern::UniformRandom, 0.05, 1, 9)))
//!     .build()?;
//! sim.run(5_000);
//! assert!(sim.stats().ejected > 0);
//! # Ok::<(), drain_core::DrainBuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod reconfigure;
pub mod truncation;

use drain_netsim::mechanism::{ControlAction, ForcedKind, ForcedMove, Mechanism};
use drain_netsim::{SimCore, TraceEvent, VcRef};
use drain_path::DrainPath;

pub use builder::DrainBuildError;

/// DRAIN runtime parameters (paper §III-C, Table defaults §IV).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainConfig {
    /// Cycles between drain windows (paper default: 64K).
    pub epoch: u64,
    /// Pre-drain credit-freeze length in cycles; must cover the largest
    /// packet's serialization (paper: 5 cycles).
    pub predrain_window: u64,
    /// Hops each drain window forces (paper footnote: 1 always wins).
    pub hops_per_drain: u32,
    /// A full drain (the whole path) runs every `full_drain_period` drain
    /// windows; 0 disables full drains (paper: "very large N").
    pub full_drain_period: u64,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            epoch: 65_536,
            predrain_window: 5,
            hops_per_drain: 1,
            full_drain_period: 1024,
        }
    }
}

impl DrainConfig {
    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero epoch or zero hops per drain.
    pub fn validate(&self) {
        assert!(self.epoch > 0, "epoch must be positive");
        assert!(self.hops_per_drain > 0, "must drain at least one hop");
    }
}

#[derive(Clone, Debug)]
enum Phase {
    /// Normal operation; counts down to the next pre-drain.
    Running { epoch_left: u64 },
    /// Credit freeze before the drain window.
    PreDrain { left: u64 },
    /// Forced movement, `steps_left` hops to go; `freeze_left` covers the
    /// serialization of the hop in progress.
    Draining {
        steps_left: u64,
        freeze_left: u64,
        full: bool,
    },
}

/// The DRAIN controller: epoch register, credit freeze and turn-table
/// drains, implemented as a simulator [`Mechanism`].
#[derive(Clone, Debug)]
pub struct DrainMechanism {
    path: DrainPath,
    config: DrainConfig,
    phase: Phase,
    windows_done: u64,
    /// Forced moves executed in the drain window in progress (reported in
    /// the window's `DrainEpochEnd` trace event).
    moved_this_window: u64,
}

impl DrainMechanism {
    /// Creates the controller from a verified drain path.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(path: DrainPath, config: DrainConfig) -> Self {
        config.validate();
        DrainMechanism {
            path,
            phase: Phase::Running {
                epoch_left: config.epoch,
            },
            config,
            windows_done: 0,
            moved_this_window: 0,
        }
    }

    /// The drain path in use.
    pub fn path(&self) -> &DrainPath {
        &self.path
    }

    /// The configuration.
    pub fn config(&self) -> &DrainConfig {
        &self.config
    }

    /// Drain windows completed so far.
    pub fn windows_done(&self) -> u64 {
        self.windows_done
    }

    /// Installs a freshly computed drain path (after a fault event) and
    /// restarts the epoch.
    pub fn set_path(&mut self, path: DrainPath) {
        self.path = path;
        self.phase = Phase::Running {
            epoch_left: self.config.epoch,
        };
    }

    /// Builds the forced moves for one drain hop: every occupied escape VC
    /// (VC 0 of each VN) shifts to the next link on the path.
    fn drain_moves(&self, core: &SimCore) -> Vec<ForcedMove> {
        let vns = core.config().vns as u8;
        let mut moves = Vec::new();
        for &link in self.path.circuit() {
            for vn in 0..vns {
                let from = VcRef { link, vn, vc: 0 };
                if core.vc(from).occ.is_some() {
                    moves.push(ForcedMove {
                        from,
                        to: VcRef {
                            link: self.path.next_link(link),
                            vn,
                            vc: 0,
                        },
                    });
                }
            }
        }
        moves
    }
}

impl Mechanism for DrainMechanism {
    fn name(&self) -> &str {
        "drain"
    }

    fn control(&mut self, core: &mut SimCore) -> ControlAction {
        match self.phase {
            Phase::Running { ref mut epoch_left } => {
                if *epoch_left > 0 {
                    *epoch_left -= 1;
                    return ControlAction::Normal;
                }
                self.phase = Phase::PreDrain {
                    left: self.config.predrain_window,
                };
                self.moved_this_window = 0;
                if core.trace_enabled() {
                    let full = self.config.full_drain_period > 0
                        && (self.windows_done + 1).is_multiple_of(self.config.full_drain_period);
                    core.trace_emit(TraceEvent::DrainEpochStart {
                        cycle: core.cycle(),
                        window: self.windows_done + 1,
                        full,
                    });
                }
                ControlAction::Freeze
            }
            Phase::PreDrain { ref mut left } => {
                if *left > 0 {
                    *left -= 1;
                    return ControlAction::Freeze;
                }
                let full = self.config.full_drain_period > 0
                    && (self.windows_done + 1).is_multiple_of(self.config.full_drain_period);
                let steps = if full {
                    self.path.len() as u64
                } else {
                    self.config.hops_per_drain as u64
                };
                self.phase = Phase::Draining {
                    steps_left: steps,
                    freeze_left: 0,
                    full,
                };
                // Fall through to the draining phase on this same cycle.
                self.control(core)
            }
            Phase::Draining {
                ref mut steps_left,
                ref mut freeze_left,
                full,
            } => {
                if *freeze_left > 0 {
                    *freeze_left -= 1;
                    return ControlAction::Freeze;
                }
                if *steps_left == 0 {
                    self.windows_done += 1;
                    if core.trace_enabled() {
                        core.trace_emit(TraceEvent::DrainEpochEnd {
                            cycle: core.cycle(),
                            window: self.windows_done,
                            moved: self.moved_this_window,
                        });
                    }
                    self.phase = Phase::Running {
                        epoch_left: self.config.epoch,
                    };
                    return ControlAction::Normal;
                }
                *steps_left -= 1;
                // Serialization gap before the next step or the restart.
                *freeze_left = core.config().max_packet_flits() as u64;
                let moves = self.drain_moves(core);
                self.moved_this_window += moves.len() as u64;
                let kind = if full {
                    ForcedKind::FullDrain
                } else {
                    ForcedKind::Drain
                };
                ControlAction::Forced(moves, kind)
            }
        }
    }

    fn idle_until(&self, core: &SimCore) -> u64 {
        match self.phase {
            // With `epoch_left = k` at clock `c`, the control calls at
            // cycles `c .. c+k-1` each just decrement the register and
            // return `Normal`; the call at `c+k` opens the pre-drain
            // freeze. Every cycle strictly before `c+k` is therefore a
            // mechanism no-op (the elided decrements are rebased in
            // [`Mechanism::on_cycles_skipped`]), so the freeze lands on
            // exactly the same cycle as per-cycle stepping.
            Phase::Running { epoch_left } => core.cycle() + epoch_left,
            // Pre-drain and drain windows freeze or force moves every
            // cycle: nothing may be skipped.
            Phase::PreDrain { .. } | Phase::Draining { .. } => core.cycle(),
        }
    }

    fn on_cycles_skipped(&mut self, cycles: u64) {
        match self.phase {
            Phase::Running { ref mut epoch_left } => {
                debug_assert!(
                    cycles <= *epoch_left,
                    "fast-forward skipped {cycles} cycles past the epoch \
                     boundary ({} left)",
                    *epoch_left
                );
                *epoch_left -= cycles.min(*epoch_left);
            }
            // `idle_until` pins the horizon to the current cycle in these
            // phases, so the driver never skips while in them.
            Phase::PreDrain { .. } | Phase::Draining { .. } => {
                debug_assert!(false, "fast-forward during a drain window");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_netsim::routing::FullyAdaptive;
    use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
    use drain_netsim::{Sim, SimConfig};
    use drain_topology::Topology;

    fn drain_sim(epoch: u64, rate: f64) -> Sim {
        let topo = Topology::mesh(4, 4);
        let path = DrainPath::compute(&topo).unwrap();
        let mech = DrainMechanism::new(
            path,
            DrainConfig {
                epoch,
                predrain_window: 5,
                hops_per_drain: 1,
                full_drain_period: 0,
            },
        );
        Sim::new(
            topo.clone(),
            SimConfig {
                num_classes: 1,
                // Tests exercise the drain machinery directly, so let
                // packets use the escape VC freely.
                escape_entry_patience: 0,
                ..SimConfig::drain_default()
            },
            Box::new(FullyAdaptive::new(&topo)),
            Box::new(mech),
            Box::new(SyntheticTraffic::new(
                SyntheticPattern::UniformRandom,
                rate,
                1,
                11,
            )),
        )
    }

    #[test]
    fn drains_happen_on_schedule() {
        let mut sim = drain_sim(100, 0.1);
        sim.run(1_000);
        // With epoch=100 we expect ~9 windows in 1000 cycles (each window
        // also spends predrain + serialization cycles).
        assert!(sim.stats().drains >= 5, "drains: {}", sim.stats().drains);
        assert!(sim.stats().forced_hops > 0);
    }

    #[test]
    fn no_drain_movement_when_network_empty() {
        let mut sim = drain_sim(50, 0.0);
        sim.run(500);
        assert_eq!(sim.stats().forced_hops, 0);
        assert!(sim.stats().drains >= 1, "windows still tick over");
    }

    #[test]
    fn traffic_still_delivered_with_aggressive_draining() {
        let mut sim = drain_sim(16, 0.1);
        sim.run(5_000);
        let s = sim.stats();
        assert!(s.ejected > 500, "ejected: {}", s.ejected);
        // Frequent drains must misroute some packets.
        assert!(s.forced_hops > 0);
    }

    #[test]
    fn full_drain_flushes_everything() {
        let topo = Topology::mesh(3, 3);
        let path = DrainPath::compute(&topo).unwrap();
        let mech = DrainMechanism::new(
            path,
            DrainConfig {
                epoch: 64,
                predrain_window: 5,
                hops_per_drain: 1,
                full_drain_period: 1, // every window is a full drain
            },
        );
        let mut sim = Sim::new(
            topo.clone(),
            SimConfig {
                num_classes: 1,
                escape_entry_patience: 0,
                ..SimConfig::drain_default()
            },
            Box::new(FullyAdaptive::new(&topo)),
            Box::new(mech),
            Box::new(
                SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.1, 1, 4)
                    .stop_injection_at(1_500),
            ),
        );
        sim.run(60_000);
        let s = sim.stats();
        assert!(s.full_drains > 0, "full drains: {}", s.full_drains);
        assert_eq!(
            sim.core().packets_in_network(),
            0,
            "full drains must flush all in-network packets"
        );
        assert_eq!(s.injected, s.ejected);
    }

    #[test]
    fn packet_conservation() {
        let mut sim = drain_sim(64, 0.15);
        sim.run(4_000);
        let s = sim.stats();
        assert_eq!(
            s.injected as usize,
            s.ejected as usize + sim.core().packets_in_network(),
            "every injected packet is either delivered or still in a VC"
        );
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn zero_epoch_rejected() {
        DrainConfig {
            epoch: 0,
            ..DrainConfig::default()
        }
        .validate();
    }
}
