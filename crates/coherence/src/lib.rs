//! MESI-lite directory cache coherence on top of the NoC simulator.
//!
//! The paper's protocol-level deadlock story (Fig 2) needs a real
//! multi-message-class protocol whose dependency chains run *through the
//! endpoints*: consuming a request at the directory injects forwards and
//! responses, consuming an invalidation at a core injects an ack. When all
//! classes share one virtual network, those chains can close into cycles
//! through the network's buffers — the deadlock DRAIN removes and the
//! baselines spend whole virtual networks to avoid.
//!
//! The implementation is a blocking-directory MESI protocol in the style of
//! the Sorin/Hill/Wood primer, with three message classes mapped exactly to
//! the paper's virtual-network setup:
//!
//! | class | messages | consumption rule |
//! |---|---|---|
//! | `REQUEST` | GetS, GetM, PutM | needs a free TBE, a non-busy address and forward/response injection space |
//! | `FORWARD` | FwdGetS, FwdGetM, Inv | needs response injection space |
//! | `RESPONSE` | Data, DataE, InvAck, WBAck, AckToHome | always consumable (the sink class) |
//!
//! Cores have finite MSHRs and a finite cache; directories have finite
//! TBEs; every queue is bounded — satisfying the paper's assumptions
//! (§III-A) that bound in-flight packets per class.
//!
//! # Examples
//!
//! ```
//! use drain_topology::Topology;
//! use drain_netsim::{Sim, SimConfig};
//! use drain_netsim::routing::FullyAdaptive;
//! use drain_netsim::mechanism::NoMechanism;
//! use drain_coherence::{CoherenceConfig, CoherenceEngine, SyntheticMemTrace};
//!
//! let topo = Topology::mesh(4, 4);
//! let engine = CoherenceEngine::new(
//!     &topo,
//!     CoherenceConfig::default(),
//!     Box::new(SyntheticMemTrace::uniform(0.05, 0.3, 256, 42)),
//! );
//! // 3 virtual networks: the proactive (deadlock-free) configuration.
//! let mut sim = Sim::new(
//!     topo.clone(),
//!     SimConfig::default(),
//!     Box::new(FullyAdaptive::new(&topo)),
//!     Box::new(NoMechanism),
//!     Box::new(engine),
//! );
//! sim.run(5_000);
//! assert!(sim.stats().ejected > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod msg;
pub mod node;
mod trace;

pub use engine::{CoherenceConfig, CoherenceEngine, CoherenceStats, Protocol};
pub use node::{DirState, LineState, MissKind};
pub use msg::{Addr, CohMsg, MsgType};
pub use trace::{MemOp, MemoryTrace, ScriptedTrace, SyntheticMemTrace};

#[cfg(test)]
mod fsm_tests;
