//! Message-level protocol FSM tests: scripted transactions on a tiny
//! system, checking the stable states the MESI tables prescribe.

use crate::{
    CoherenceConfig, CoherenceEngine, DirState, LineState, ScriptedTrace,
};
use drain_netsim::mechanism::NoMechanism;
use drain_netsim::routing::EscapeVcRouting;
use drain_netsim::{Sim, SimConfig};
use drain_topology::{NodeId, Topology};

/// 2x2 mesh, deadlock-free escape-VC network, scripted ops.
fn scripted_sim(script: ScriptedTrace) -> Sim {
    let topo = Topology::mesh(2, 2);
    let engine = CoherenceEngine::new(&topo, CoherenceConfig::default(), Box::new(script));
    Sim::new(
        topo.clone(),
        SimConfig {
            inj_queue_capacity: 64,
            escape_sticky: true,
            watchdog_threshold: 10_000,
            ..SimConfig::escape_vc_baseline()
        },
        Box::new(EscapeVcRouting::with_dor(&topo)),
        Box::new(NoMechanism),
        Box::new(engine),
    )
}

fn engine(sim: &Sim) -> &CoherenceEngine {
    sim.endpoints_as::<CoherenceEngine>()
        .expect("endpoint is the coherence engine")
}

// Address 1 is homed at node 1; cores 0/2/3 are remote requesters.
const A: u32 = 1;

#[test]
fn load_miss_grants_exclusive_from_idle() {
    let mut sim = scripted_sim(ScriptedTrace::new(4).op(0, 0, A, false));
    sim.run(200);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(0), A), Some(LineState::E), "DataE grant");
    assert_eq!(e.dir_state(A), DirState::EM(NodeId(0)));
    assert_eq!(e.outstanding(NodeId(0)), 0, "MSHR retired");
    assert_eq!(e.stats().completed, 1);
}

#[test]
fn store_miss_grants_modified() {
    let mut sim = scripted_sim(ScriptedTrace::new(4).op(2, 0, A, true));
    sim.run(200);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(2), A), Some(LineState::M));
    assert_eq!(e.dir_state(A), DirState::EM(NodeId(2)));
}

#[test]
fn read_after_remote_write_downgrades_owner() {
    // Core 2 writes, then core 3 reads: FwdGetS path; owner ends S, reader
    // ends S, directory ends S.
    let mut sim = scripted_sim(
        ScriptedTrace::new(4)
            .op(2, 0, A, true)
            .op(3, 300, A, false),
    );
    sim.run(1_000);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(2), A), Some(LineState::S), "owner downgraded");
    assert_eq!(e.line_state(NodeId(3), A), Some(LineState::S), "reader shares");
    assert_eq!(e.dir_state(A), DirState::S);
    assert_eq!(e.stats().completed, 2);
}

#[test]
fn write_after_sharers_invalidates_them() {
    // Cores 0 and 3 read (sharers), then core 2 writes: Inv + InvAck path.
    let mut sim = scripted_sim(
        ScriptedTrace::new(4)
            .op(0, 0, A, false)
            .op(3, 300, A, false)
            .op(2, 600, A, true),
    );
    sim.run(2_000);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(2), A), Some(LineState::M), "writer owns");
    assert_eq!(e.line_state(NodeId(0), A), None, "sharer invalidated");
    assert_eq!(e.line_state(NodeId(3), A), None, "sharer invalidated");
    assert_eq!(e.dir_state(A), DirState::EM(NodeId(2)));
    e.check_single_writer();
    assert_eq!(e.stats().completed, 3);
}

#[test]
fn write_after_remote_write_transfers_ownership() {
    // Core 0 writes, core 3 writes: FwdGetM path.
    let mut sim = scripted_sim(
        ScriptedTrace::new(4)
            .op(0, 0, A, true)
            .op(3, 300, A, true),
    );
    sim.run(1_000);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(3), A), Some(LineState::M));
    assert_eq!(e.line_state(NodeId(0), A), None, "old owner invalidated");
    assert_eq!(e.dir_state(A), DirState::EM(NodeId(3)));
    e.check_single_writer();
}

#[test]
fn silent_store_upgrade_on_exclusive() {
    // Load then store by the same core: E -> M silently, one transaction.
    let mut sim = scripted_sim(
        ScriptedTrace::new(4)
            .op(0, 0, A, false)
            .op(0, 300, A, true),
    );
    sim.run(1_000);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(0), A), Some(LineState::M));
    assert_eq!(e.stats().completed, 1, "the store was a silent hit");
    assert_eq!(e.stats().hits, 1);
}

#[test]
fn store_upgrade_from_shared_needs_getm() {
    // Two readers, then one of them writes: upgrade GetM with one Inv.
    let mut sim = scripted_sim(
        ScriptedTrace::new(4)
            .op(0, 0, A, false)
            .op(3, 300, A, false)
            .op(0, 600, A, true),
    );
    sim.run(2_000);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(0), A), Some(LineState::M));
    assert_eq!(e.line_state(NodeId(3), A), None);
    assert_eq!(e.dir_state(A), DirState::EM(NodeId(0)));
    assert_eq!(e.stats().completed, 3);
}

#[test]
fn many_addresses_home_distribution() {
    // Touch several addresses; each ends owned at its requester with the
    // directory of its own home tracking it.
    let mut script = ScriptedTrace::new(4);
    for a in 0..8u32 {
        script = script.op((a % 4) as u16, (a as u64) * 150, 100 + a, true);
    }
    let mut sim = scripted_sim(script);
    sim.run(4_000);
    let e = engine(&sim);
    for a in 0..8u32 {
        let owner = NodeId((a % 4) as u16);
        assert_eq!(e.line_state(owner, 100 + a), Some(LineState::M));
        assert_eq!(e.dir_state(100 + a), DirState::EM(owner));
    }
    e.check_single_writer();
}

// ---------------------------------------------------------------------
// MOESI (dirty sharing) variants
// ---------------------------------------------------------------------

fn scripted_moesi_sim(script: ScriptedTrace) -> Sim {
    let topo = Topology::mesh(2, 2);
    let engine = CoherenceEngine::new(
        &topo,
        CoherenceConfig {
            protocol: crate::Protocol::Moesi,
            ..CoherenceConfig::default()
        },
        Box::new(script),
    );
    Sim::new(
        topo.clone(),
        SimConfig {
            inj_queue_capacity: 64,
            escape_sticky: true,
            watchdog_threshold: 10_000,
            ..SimConfig::escape_vc_baseline()
        },
        Box::new(EscapeVcRouting::with_dor(&topo)),
        Box::new(NoMechanism),
        Box::new(engine),
    )
}

#[test]
fn moesi_read_after_write_leaves_owner_owned() {
    let mut sim = scripted_moesi_sim(
        ScriptedTrace::new(4)
            .op(2, 0, A, true)
            .op(3, 300, A, false),
    );
    sim.run(1_000);
    let e = engine(&sim);
    assert_eq!(
        e.line_state(NodeId(2), A),
        Some(LineState::O),
        "writer keeps dirty ownership"
    );
    assert_eq!(e.line_state(NodeId(3), A), Some(LineState::S));
    assert_eq!(e.dir_state(A), DirState::EM(NodeId(2)), "directory keeps the owner");
    e.check_single_writer();
}

#[test]
fn moesi_owner_answers_second_reader() {
    let mut sim = scripted_moesi_sim(
        ScriptedTrace::new(4)
            .op(2, 0, A, true)
            .op(3, 300, A, false)
            .op(0, 600, A, false),
    );
    sim.run(2_000);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(2), A), Some(LineState::O));
    assert_eq!(e.line_state(NodeId(3), A), Some(LineState::S));
    assert_eq!(e.line_state(NodeId(0), A), Some(LineState::S));
    assert_eq!(e.stats().completed, 3);
}

#[test]
fn moesi_owner_upgrade_invalidates_dirty_sharers() {
    // Owner in O with two sharers writes again: O -> M, sharers gone.
    let mut sim = scripted_moesi_sim(
        ScriptedTrace::new(4)
            .op(2, 0, A, true)
            .op(3, 300, A, false)
            .op(0, 600, A, false)
            .op(2, 900, A, true),
    );
    sim.run(3_000);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(2), A), Some(LineState::M));
    assert_eq!(e.line_state(NodeId(3), A), None);
    assert_eq!(e.line_state(NodeId(0), A), None);
    assert_eq!(e.dir_state(A), DirState::EM(NodeId(2)));
    e.check_single_writer();
}

#[test]
fn moesi_foreign_write_collects_owner_and_sharer_acks() {
    // Owner in O + one sharer; a third core writes: FwdGetM to the owner
    // carries the ack count, Inv goes to the sharer.
    let mut sim = scripted_moesi_sim(
        ScriptedTrace::new(4)
            .op(2, 0, A, true)
            .op(3, 300, A, false)
            .op(0, 600, A, true),
    );
    sim.run(3_000);
    let e = engine(&sim);
    assert_eq!(e.line_state(NodeId(0), A), Some(LineState::M));
    assert_eq!(e.line_state(NodeId(2), A), None, "old owner invalidated");
    assert_eq!(e.line_state(NodeId(3), A), None, "sharer invalidated");
    assert_eq!(e.dir_state(A), DirState::EM(NodeId(0)));
    e.check_single_writer();
    assert_eq!(e.stats().completed, 3);
}

#[test]
fn moesi_random_load_stays_coherent() {
    // Randomized torture on the deadlock-free network: invariant holds
    // throughout and the system stays live.
    let topo = Topology::mesh(2, 2);
    let engine = CoherenceEngine::new(
        &topo,
        CoherenceConfig {
            protocol: crate::Protocol::Moesi,
            l1_capacity: 16,
            ..CoherenceConfig::default()
        },
        Box::new(crate::SyntheticMemTrace::uniform(0.3, 0.5, 24, 9)),
    );
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            inj_queue_capacity: 64,
            escape_sticky: true,
            watchdog_threshold: 10_000,
            ..SimConfig::escape_vc_baseline()
        },
        Box::new(EscapeVcRouting::with_dor(&topo)),
        Box::new(NoMechanism),
        Box::new(engine),
    );
    for _ in 0..40 {
        sim.run(500);
        sim.endpoints_as::<CoherenceEngine>()
            .unwrap()
            .check_single_writer();
    }
    assert!(!sim.stats().deadlocked());
    assert!(sim.stats().ejected > 1_000);
}
