//! Per-node protocol state: private L1 cache + directory/LLC slice.

use std::collections::HashMap;

use drain_topology::NodeId;

use crate::msg::Addr;

/// Stable L1 line states (transient states live in the MSHR).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineState {
    /// Shared, clean, read-only.
    S,
    /// Exclusive, clean (silent upgrade to M on store).
    E,
    /// Modified, dirty.
    M,
    /// Owned (MOESI only): dirty but shared; this copy answers forwards.
    O,
}

impl LineState {
    /// Whether the line may be written without a request.
    pub fn writable(self) -> bool {
        matches!(self, LineState::E | LineState::M)
    }

    /// Whether this copy is responsible for supplying data (and for the
    /// writeback on eviction).
    pub fn owns_data(self) -> bool {
        matches!(self, LineState::E | LineState::M | LineState::O)
    }
}

/// The memory operation a miss is waiting to complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissKind {
    /// Load miss (GetS outstanding).
    Load,
    /// Store miss / upgrade (GetM outstanding).
    Store,
    /// Dirty eviction (PutM outstanding).
    Writeback,
}

/// An MSHR entry: one outstanding transaction of this core.
#[derive(Clone, Debug)]
pub struct Mshr {
    /// What kind of miss this is.
    pub kind: MissKind,
    /// Data received yet? (GetM completes when data AND all acks arrived.)
    pub have_data: bool,
    /// InvAcks still needed (valid once data arrived; counts may go
    /// negative transiently if acks beat the data, hence signed).
    pub acks_needed: i32,
    /// Cycle the transaction started (for latency stats).
    pub started_at: u64,
    /// A forward raced with our PutM and was answered from the MSHR.
    pub fwd_handled: bool,
}

/// Directory entry stable states.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DirState {
    /// Not cached anywhere (or silently dropped by sharers).
    #[default]
    I,
    /// Cached read-only by the sharer set.
    S,
    /// Owned (E or M) by one core.
    EM(NodeId),
}

/// A directory entry: stable state plus sharer bitmap.
#[derive(Clone, Debug, Default)]
pub struct DirEntry {
    /// Stable state.
    pub state: DirState,
    /// Sharer bitmap (indexed by node id; used in state `S`).
    pub sharers: u64,
}

impl DirEntry {
    /// Fresh entry in state I.
    pub fn new() -> Self {
        DirEntry::default()
    }

    /// Number of sharers excluding `but`.
    pub fn sharer_count_excluding(&self, but: NodeId) -> u32 {
        (self.sharers & !(1u64 << but.index())).count_ones()
    }

    /// Iterator over sharer node ids excluding `but`.
    pub fn sharers_excluding(&self, but: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mask = self.sharers & !(1u64 << but.index());
        (0..64u16).filter_map(move |i| {
            if mask & (1u64 << i) != 0 {
                Some(NodeId(i))
            } else {
                None
            }
        })
    }
}

/// What the directory commits when the requester's Unblock arrives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirCommit {
    /// A read grant from I (or a write grant): the requester becomes the
    /// exclusive owner.
    ExclusiveTo(NodeId),
    /// A read grant from S: the requester joins the sharer set.
    AddSharer(NodeId),
    /// A read transfer from an owner. MESI: owner and requester end up
    /// sharing (state S); MOESI: the owner keeps the line in O and the
    /// requester joins the sharers.
    TransferRead {
        /// The owner the forward was sent to.
        old: NodeId,
        /// The reader.
        new: NodeId,
    },
}

/// A directory TBE: the blocking directory's record of the in-flight
/// transaction for an address — every GetS/GetM blocks the address until
/// the requester's Unblock commits the new stable state.
#[derive(Clone, Copy, Debug)]
pub struct Tbe {
    /// The requester whose Unblock will clear this entry.
    pub requester: NodeId,
    /// The state to commit at Unblock.
    pub commit: DirCommit,
}

/// Everything one node owns: L1 lines, MSHRs, its directory slice and TBEs.
#[derive(Clone, Debug, Default)]
pub struct NodeState {
    /// L1 cache lines.
    pub lines: HashMap<Addr, LineState>,
    /// Outstanding transactions.
    pub mshrs: HashMap<Addr, Mshr>,
    /// Directory entries for addresses homed here.
    pub dir: HashMap<Addr, DirEntry>,
    /// Busy directory transactions (blocking per address).
    pub tbes: HashMap<Addr, Tbe>,
    /// Completed transactions (loads + stores, not writebacks).
    pub completed: u64,
    /// Sum of transaction latencies (for averages).
    pub latency_sum: u64,
    /// L1 hits (no traffic).
    pub hits: u64,
}

impl NodeState {
    /// Whether a new MSHR may be allocated under the given bound.
    pub fn mshr_available(&self, max: usize) -> bool {
        self.mshrs.len() < max
    }

    /// Whether the directory can start a blocking transaction.
    pub fn tbe_available(&self, max: usize) -> bool {
        self.tbes.len() < max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_bitmap_ops() {
        let mut e = DirEntry::new();
        e.sharers = 0b1011;
        assert_eq!(e.sharer_count_excluding(NodeId(0)), 2);
        assert_eq!(e.sharer_count_excluding(NodeId(5)), 3);
        let sharers: Vec<NodeId> = e.sharers_excluding(NodeId(1)).collect();
        assert_eq!(sharers, vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn line_writability() {
        assert!(!LineState::S.writable());
        assert!(LineState::E.writable());
        assert!(LineState::M.writable());
    }

    #[test]
    fn bounds_checks() {
        let mut n = NodeState::default();
        assert!(n.mshr_available(1));
        n.mshrs.insert(
            1,
            Mshr {
                kind: MissKind::Load,
                have_data: false,
                acks_needed: 0,
                started_at: 0,
                fwd_handled: false,
            },
        );
        assert!(!n.mshr_available(1));
        assert!(n.tbe_available(1));
    }
}
