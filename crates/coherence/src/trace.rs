//! Memory-reference streams driving the coherence engine.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use drain_topology::NodeId;

use crate::msg::Addr;

/// One memory operation issued by a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemOp {
    /// Cache-line address.
    pub addr: Addr,
    /// Store (true) or load (false).
    pub is_write: bool,
}

/// A per-core memory-reference stream.
///
/// The workloads crate implements application-shaped models on this trait;
/// [`SyntheticMemTrace`] is the plain stochastic version used in tests.
pub trait MemoryTrace: Send {
    /// The operation core `core` wants to issue at `cycle`, if any. The
    /// engine calls this at most once per core per cycle and only when the
    /// core is able to issue (free MSHR + queue space); returning `None`
    /// means the core is idle this cycle.
    fn next_op(&mut self, core: NodeId, cycle: u64) -> Option<MemOp>;

    /// Short name for reports.
    fn name(&self) -> &str {
        "trace"
    }

    /// Optional per-core operation quota; `None` = open-ended.
    fn quota(&self) -> Option<u64> {
        None
    }
}

/// Bernoulli issue, uniform address pool with a shared region: each op
/// targets the shared pool with probability `sharing`, else the core's
/// private slice.
#[derive(Clone, Debug)]
pub struct SyntheticMemTrace {
    issue_rate: f64,
    write_frac: f64,
    pool_size: u32,
    sharing: f64,
    quota: Option<u64>,
    rng: ChaCha8Rng,
}

impl SyntheticMemTrace {
    /// Uniform trace: `issue_rate` ops/cycle/core, `write_frac` stores,
    /// `pool_size` shared lines, all-shared addressing.
    pub fn uniform(issue_rate: f64, write_frac: f64, pool_size: u32, seed: u64) -> Self {
        SyntheticMemTrace {
            issue_rate,
            write_frac,
            pool_size,
            sharing: 1.0,
            quota: None,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Fraction of accesses that hit the shared pool (the rest go to a
    /// per-core private region).
    pub fn with_sharing(mut self, sharing: f64) -> Self {
        self.sharing = sharing;
        self
    }

    /// Stops each core after `ops` operations (closed-loop runtime runs).
    pub fn with_quota(mut self, ops: u64) -> Self {
        self.quota = Some(ops);
        self
    }
}

impl MemoryTrace for SyntheticMemTrace {
    fn next_op(&mut self, core: NodeId, _cycle: u64) -> Option<MemOp> {
        if self.rng.gen::<f64>() >= self.issue_rate {
            return None;
        }
        let shared = self.rng.gen::<f64>() < self.sharing;
        let addr = if shared {
            self.rng.gen_range(0..self.pool_size)
        } else {
            // Private region: high bits carry the core id.
            self.pool_size + (core.0 as u32) * 4096 + self.rng.gen_range(0..256)
        };
        Some(MemOp {
            addr,
            is_write: self.rng.gen::<f64>() < self.write_frac,
        })
    }

    fn name(&self) -> &str {
        "synthetic-mem"
    }

    fn quota(&self) -> Option<u64> {
        self.quota
    }
}

/// Fully scripted per-core operation queues — protocol FSM tests drive
/// exact transaction interleavings with this.
#[derive(Clone, Debug, Default)]
pub struct ScriptedTrace {
    /// Per-core queues of `(earliest_cycle, op)`.
    queues: Vec<std::collections::VecDeque<(u64, MemOp)>>,
}

impl ScriptedTrace {
    /// Creates an empty script for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        ScriptedTrace {
            queues: vec![std::collections::VecDeque::new(); num_cores],
        }
    }

    /// Appends an operation for `core`, issued no earlier than `cycle`
    /// (builder style).
    pub fn op(mut self, core: u16, cycle: u64, addr: Addr, is_write: bool) -> Self {
        self.queues[core as usize].push_back((cycle, MemOp { addr, is_write }));
        self
    }

    /// Operations not yet issued.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

impl MemoryTrace for ScriptedTrace {
    fn next_op(&mut self, core: NodeId, cycle: u64) -> Option<MemOp> {
        let q = self.queues.get_mut(core.index())?;
        match q.front() {
            Some(&(at, op)) if at <= cycle => {
                q.pop_front();
                Some(op)
            }
            _ => None,
        }
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_trace_orders_and_times_ops() {
        let mut t = ScriptedTrace::new(2)
            .op(0, 5, 100, false)
            .op(0, 5, 101, true)
            .op(1, 0, 200, false);
        assert_eq!(t.remaining(), 3);
        assert_eq!(t.next_op(NodeId(0), 0), None, "not before cycle 5");
        assert_eq!(
            t.next_op(NodeId(1), 0),
            Some(MemOp {
                addr: 200,
                is_write: false
            })
        );
        assert_eq!(
            t.next_op(NodeId(0), 6),
            Some(MemOp {
                addr: 100,
                is_write: false
            })
        );
        assert_eq!(
            t.next_op(NodeId(0), 6),
            Some(MemOp {
                addr: 101,
                is_write: true
            })
        );
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn issue_rate_respected() {
        let mut t = SyntheticMemTrace::uniform(0.5, 0.3, 64, 1);
        let issued = (0..10_000)
            .filter(|&c| t.next_op(NodeId(0), c).is_some())
            .count();
        assert!((3_500..6_500).contains(&issued), "issued {issued}");
    }

    #[test]
    fn private_addresses_disjoint() {
        let mut t = SyntheticMemTrace::uniform(1.0, 0.5, 64, 2).with_sharing(0.0);
        let a = t.next_op(NodeId(1), 0).unwrap().addr;
        let b = t.next_op(NodeId(2), 0).unwrap().addr;
        assert_ne!(a / 4096, b / 4096);
    }

    #[test]
    fn quota_plumbs_through() {
        let t = SyntheticMemTrace::uniform(0.1, 0.1, 8, 3).with_quota(100);
        assert_eq!(t.quota(), Some(100));
    }
}
