//! The coherence engine: protocol FSMs wired into the simulator as an
//! endpoint model.

use std::collections::VecDeque;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use drain_netsim::traffic::Endpoints;
use drain_netsim::{MessageClass, SimCore};
use drain_topology::NodeId;

use crate::msg::{Addr, CohMsg, MsgType};
use crate::node::{DirCommit, DirState, LineState, MissKind, Mshr, NodeState, Tbe};
use crate::trace::MemoryTrace;

/// Which coherence protocol the engine runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Protocol {
    /// MESI: a forwarded read downgrades the owner to S and writes the
    /// dirty data back to the home.
    #[default]
    Mesi,
    /// MOESI: a forwarded read leaves the owner responsible (O state);
    /// dirty data is shared without a writeback (paper §V-A notes MOESI
    /// systems need even more virtual networks, amplifying DRAIN's
    /// savings).
    Moesi,
}

/// Protocol resource bounds (paper §III-A: finite MSHRs and queues bound
/// in-flight packets per class).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoherenceConfig {
    /// Outstanding transactions per core.
    pub mshrs_per_core: usize,
    /// Blocking directory transactions per home node.
    pub tbes_per_dir: usize,
    /// L1 capacity in lines.
    pub l1_capacity: usize,
    /// Messages consumed per class per node per cycle.
    pub consume_per_class: usize,
    /// Core issue width (memory ops attempted per cycle).
    pub issue_width: usize,
    /// Which protocol to run (MESI default, MOESI optional).
    pub protocol: Protocol,
    /// RNG seed (evictions).
    pub seed: u64,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig {
            mshrs_per_core: 16,
            tbes_per_dir: 16,
            l1_capacity: 256,
            consume_per_class: 1,
            issue_width: 1,
            protocol: Protocol::Mesi,
            seed: 0xC0FE,
        }
    }
}

/// Aggregate protocol statistics.
#[derive(Clone, Debug, Default)]
pub struct CoherenceStats {
    /// Memory operations issued (hits + misses).
    pub issued: u64,
    /// Miss transactions completed (loads + stores).
    pub completed: u64,
    /// L1 hits.
    pub hits: u64,
    /// Writebacks performed.
    pub writebacks: u64,
    /// Forward messages answered from a racing writeback MSHR.
    pub protocol_races: u64,
    /// Cycles a request-queue head spent stalled on resources.
    pub request_stall_cycles: u64,
    /// Sum of completed-transaction latencies.
    pub latency_sum: u64,
}

impl CoherenceStats {
    /// Mean miss-transaction latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.completed as f64
        }
    }
}

/// The MESI-lite engine (see crate docs for the protocol tables).
pub struct CoherenceEngine {
    config: CoherenceConfig,
    /// When set, every protocol event touching this address is recorded
    /// (diagnostics).
    pub watch_addr: Option<Addr>,
    /// Event log for the watched address.
    pub watch_log: Vec<String>,
    nodes: Vec<NodeState>,
    trace: Box<dyn MemoryTrace>,
    rng: ChaCha8Rng,
    /// Same-node messages delivered without touching the network.
    local: VecDeque<(NodeId, CohMsg)>,
    stats: CoherenceStats,
    num_nodes: usize,
    checked_capacity: bool,
}

impl CoherenceEngine {
    /// Builds the engine for every node of `topo`.
    pub fn new(
        topo: &drain_topology::Topology,
        config: CoherenceConfig,
        trace: Box<dyn MemoryTrace>,
    ) -> Self {
        let n = topo.num_nodes();
        CoherenceEngine {
            watch_addr: None,
            watch_log: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            nodes: (0..n).map(|_| NodeState::default()).collect(),
            config,
            trace,
            local: VecDeque::new(),
            stats: CoherenceStats::default(),
            num_nodes: n,
            checked_capacity: false,
        }
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Completed miss transactions per core (runtime metric for the
    /// closed-loop application studies).
    pub fn completed_per_core(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.completed).collect()
    }

    /// The home (directory slice) of an address.
    pub fn home(&self, addr: Addr) -> NodeId {
        NodeId((addr as usize % self.num_nodes) as u16)
    }

    /// The stable L1 state of `addr` at `node`, if cached.
    pub fn line_state(&self, node: NodeId, addr: Addr) -> Option<LineState> {
        self.nodes[node.index()].lines.get(&addr).copied()
    }

    /// The directory state of `addr` at its home (I if never touched).
    pub fn dir_state(&self, addr: Addr) -> DirState {
        let home = self.home(addr);
        self.nodes[home.index()]
            .dir
            .get(&addr)
            .map(|e| e.state)
            .unwrap_or(DirState::I)
    }

    /// Outstanding transactions (MSHRs in use) at `node`.
    pub fn outstanding(&self, node: NodeId) -> usize {
        self.nodes[node.index()].mshrs.len()
    }

    /// Diagnostic dump of all in-flight protocol state (MSHRs, TBEs,
    /// deferred local messages).
    pub fn dump_inflight(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, ns) in self.nodes.iter().enumerate() {
            for (addr, m) in &ns.mshrs {
                let _ = writeln!(
                    s,
                    "n{i} mshr addr={addr} kind={:?} have_data={} acks={} fwd_handled={}",
                    m.kind, m.have_data, m.acks_needed, m.fwd_handled
                );
            }
            for (addr, tbe) in &ns.tbes {
                let _ = writeln!(
                    s,
                    "n{i} tbe addr={addr} req={:?} commit={:?}",
                    tbe.requester, tbe.commit
                );
            }
        }
        for (node, msg) in &self.local {
            let _ = writeln!(s, "local@{node:?}: {:?} addr={} req={:?} acks={}", msg.mtype, msg.addr, msg.requester, msg.ack_count);
        }
        s
    }

    /// Verifies the single-owner invariant: at most one core holds a line
    /// in an owning state (E/M, plus O under MOESI) for any address, and
    /// at most one holds it writable.
    ///
    /// # Panics
    ///
    /// Panics when the invariant is violated.
    pub fn check_single_writer(&self) {
        use std::collections::HashMap;
        let mut owner: HashMap<Addr, NodeId> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for (&addr, &st) in &node.lines {
                if st.owns_data() {
                    if let Some(prev) = owner.insert(addr, NodeId(i as u16)) {
                        panic!(
                            "single-owner violated for addr {addr}: nodes {prev:?} and n{i} both own it"
                        );
                    }
                }
            }
        }
    }

    /// Whether every core reached its quota and the system is quiescent.
    fn quota_reached(&self, core_state: &SimCore) -> bool {
        let Some(q) = self.trace.quota() else {
            return false;
        };
        self.nodes.iter().all(|n| n.completed + n.hits >= q)
            && self.nodes.iter().all(|n| n.mshrs.is_empty())
            && core_state.live_packets() == 0
    }

    // ------------------------------------------------------------------
    // Message plumbing
    // ------------------------------------------------------------------

    fn watch(&mut self, cycle: u64, what: String) {
        self.watch_log.push(format!("c{cycle}: {what}"));
    }

    fn send(&mut self, core: &mut SimCore, from: NodeId, to: NodeId, msg: CohMsg) {
        if self.watch_addr == Some(msg.addr) {
            self.watch(core.cycle(), format!("send {:?} {from:?}->{to:?} acks={}", msg.mtype, msg.ack_count));
        }
        if from == to {
            self.local.push_back((to, msg));
            return;
        }
        let len = if msg.mtype.carries_data() {
            core.config().data_packet_flits
        } else {
            core.config().ctrl_packet_flits
        };
        let ok = core.try_enqueue_packet(from, to, msg.mtype.class(), len, msg.pack());
        debug_assert!(
            ok.is_some(),
            "injection space was pre-checked for {:?}",
            msg.mtype
        );
    }

    /// Remote recipients among `targets` (local ones bypass queue-space
    /// accounting).
    fn remote_count(node: NodeId, targets: impl Iterator<Item = NodeId>) -> usize {
        targets.filter(|&t| t != node).count()
    }

    // ------------------------------------------------------------------
    // Handlers
    // ------------------------------------------------------------------

    fn handle_response(&mut self, core: &mut SimCore, node: NodeId, msg: CohMsg) {
        let now = core.cycle();
        if self.watch_addr == Some(msg.addr) {
            self.watch(now, format!("resp {:?} at {node:?} acks={}", msg.mtype, msg.ack_count));
        }
        // Set when the node's outstanding transaction finishes: the home
        // is notified so the blocking directory can commit and unblock.
        let mut completed = false;
        match msg.mtype {
            MsgType::Data | MsgType::DataE => {
                let ns = &mut self.nodes[node.index()];
                let Some(mshr) = ns.mshrs.get_mut(&msg.addr) else {
                    return; // stale (e.g. duplicate after a race); drop
                };
                match mshr.kind {
                    MissKind::Load => {
                        let state = if msg.mtype == MsgType::DataE {
                            LineState::E
                        } else {
                            LineState::S
                        };
                        ns.lines.insert(msg.addr, state);
                        Self::complete_mshr(ns, &mut self.stats, msg.addr, now);
                        completed = true;
                    }
                    MissKind::Store => {
                        mshr.have_data = true;
                        mshr.acks_needed += msg.ack_count as i32;
                        if mshr.acks_needed == 0 {
                            ns.lines.insert(msg.addr, LineState::M);
                            Self::complete_mshr(ns, &mut self.stats, msg.addr, now);
                            completed = true;
                        }
                    }
                    MissKind::Writeback => {}
                }
            }
            MsgType::InvAck => {
                let ns = &mut self.nodes[node.index()];
                let Some(mshr) = ns.mshrs.get_mut(&msg.addr) else {
                    return;
                };
                if mshr.kind == MissKind::Store {
                    mshr.acks_needed -= 1;
                    if mshr.have_data && mshr.acks_needed == 0 {
                        ns.lines.insert(msg.addr, LineState::M);
                        Self::complete_mshr(ns, &mut self.stats, msg.addr, now);
                        completed = true;
                    }
                }
            }
            MsgType::WBAck => {
                let ns = &mut self.nodes[node.index()];
                if matches!(
                    ns.mshrs.get(&msg.addr).map(|m| m.kind),
                    Some(MissKind::Writeback)
                ) {
                    ns.mshrs.remove(&msg.addr);
                    self.stats.writebacks += 1;
                }
            }
            MsgType::AckToHome => {
                // The old owner's (MESI) data writeback reaching the home;
                // the directory commit itself happens at Unblock.
            }
            MsgType::Unblock => {
                // The requester finished: commit the new stable state and
                // unblock the address.
                let moesi = self.config.protocol == Protocol::Moesi;
                let ns = &mut self.nodes[node.index()];
                if let Some(tbe) = ns.tbes.remove(&msg.addr) {
                    let entry = ns.dir.entry(msg.addr).or_default();
                    match tbe.commit {
                        DirCommit::ExclusiveTo(n) => {
                            entry.state = DirState::EM(n);
                            entry.sharers = 0;
                        }
                        DirCommit::AddSharer(n) => {
                            entry.state = DirState::S;
                            entry.sharers |= 1u64 << n.index();
                        }
                        DirCommit::TransferRead { old, new } => {
                            if moesi {
                                // The old owner keeps the dirty line in O
                                // and stays responsible; the reader joins
                                // the sharers.
                                entry.state = DirState::EM(old);
                                entry.sharers |= 1u64 << new.index();
                            } else {
                                entry.state = DirState::S;
                                entry.sharers |= (1u64 << old.index()) | (1u64 << new.index());
                            }
                        }
                    }
                }
            }
            _ => unreachable!("non-response message in response handler"),
        }
        if completed {
            // The unblock bypasses the bounded injection queue: its
            // population is bounded by the MSHR count, and it must never
            // make the sink class unconsumable (paper §III-A).
            let home = self.home(msg.addr);
            let unblock = CohMsg::new(MsgType::Unblock, msg.addr, node);
            if node == home {
                self.local.push_back((node, unblock));
            } else {
                core.force_enqueue_packet(
                    node,
                    home,
                    MessageClass::RESPONSE,
                    core.config().ctrl_packet_flits,
                    unblock.pack(),
                );
            }
        }
    }

    fn complete_mshr(ns: &mut NodeState, stats: &mut CoherenceStats, addr: Addr, now: u64) {
        if let Some(m) = ns.mshrs.remove(&addr) {
            ns.completed += 1;
            let lat = now.saturating_sub(m.started_at);
            ns.latency_sum += lat;
            stats.completed += 1;
            stats.latency_sum += lat;
        }
    }

    /// Responses a forward consumer must inject remotely (for queue-space
    /// pre-checks).
    fn forward_response_need(&self, node: NodeId, msg: &CohMsg) -> usize {
        match msg.mtype {
            MsgType::Inv => usize::from(msg.requester != node),
            MsgType::FwdGetS | MsgType::FwdGetM => {
                let home = self.home(msg.addr);
                usize::from(msg.requester != node) + usize::from(home != node)
            }
            _ => 0,
        }
    }

    fn handle_forward(&mut self, core: &mut SimCore, node: NodeId, msg: CohMsg) {
        if self.watch_addr == Some(msg.addr) {
            let line = self.nodes[node.index()].lines.get(&msg.addr).copied();
            self.watch(core.cycle(), format!("fwd {:?} at {node:?} line={line:?}", msg.mtype));
        }
        match msg.mtype {
            MsgType::Inv => {
                let ns = &mut self.nodes[node.index()];
                ns.lines.remove(&msg.addr);
                self.send(
                    core,
                    node,
                    msg.requester,
                    CohMsg::new(MsgType::InvAck, msg.addr, msg.requester),
                );
            }
            MsgType::FwdGetS | MsgType::FwdGetM => {
                let for_read = msg.mtype == MsgType::FwdGetS;
                let home = self.home(msg.addr);
                let moesi = self.config.protocol == Protocol::Moesi;
                let ns = &mut self.nodes[node.index()];
                if ns.lines.remove(&msg.addr).is_none() {
                    // PutM race: answer from the writeback MSHR.
                    if let Some(m) = ns.mshrs.get_mut(&msg.addr) {
                        m.fwd_handled = true;
                    }
                    self.stats.protocol_races += 1;
                } else if for_read {
                    // MESI: downgrade to S (data goes back to the home).
                    // MOESI: stay the owner, now in O (dirty-shared).
                    ns.lines.insert(
                        msg.addr,
                        if moesi { LineState::O } else { LineState::S },
                    );
                }
                self.send(
                    core,
                    node,
                    msg.requester,
                    // A forwarded GetM's data carries the invalidation-ack
                    // count the home computed (MOESI: the owner may have
                    // had sharers alongside it).
                    CohMsg::new(MsgType::Data, msg.addr, msg.requester)
                        .with_acks(msg.ack_count),
                );
                self.send(
                    core,
                    node,
                    home,
                    CohMsg::new(MsgType::AckToHome, msg.addr, msg.requester),
                );
            }
            _ => unreachable!("non-forward message in forward handler"),
        }
    }

    /// Resources a request consumer needs: `(tbe, remote_forwards,
    /// remote_responses)`, or `None` when the address is busy. Every
    /// GetS/GetM blocks the address (full blocking directory, gem5-MESI
    /// style: the TBE clears when the requester's Unblock arrives).
    fn request_need(&self, node: NodeId, msg: &CohMsg) -> Option<(bool, usize, usize)> {
        let ns = &self.nodes[node.index()];
        if ns.tbes.contains_key(&msg.addr) {
            return None; // blocking directory: address busy
        }
        let entry = ns.dir.get(&msg.addr);
        let state = entry.map(|e| e.state).unwrap_or(DirState::I);
        let remote_inv = entry
            .map(|e| Self::remote_count(node, e.sharers_excluding(msg.requester)))
            .unwrap_or(0);
        Some(match msg.mtype {
            MsgType::GetS => match state {
                DirState::I | DirState::S => (true, 0, usize::from(msg.requester != node)),
                DirState::EM(o) => (true, usize::from(o != node), 0),
            },
            MsgType::GetM => match state {
                DirState::I => (true, 0, usize::from(msg.requester != node)),
                DirState::S => (true, remote_inv, usize::from(msg.requester != node)),
                DirState::EM(o) if o == msg.requester => {
                    // MOESI upgrade by the owner itself (O -> M).
                    (true, remote_inv, usize::from(msg.requester != node))
                }
                DirState::EM(o) => (true, usize::from(o != node) + remote_inv, 0),
            },
            MsgType::PutM => (false, 0, usize::from(msg.requester != node)),
            _ => unreachable!("non-request message in request handler"),
        })
    }

    fn handle_request(&mut self, core: &mut SimCore, node: NodeId, msg: CohMsg) {
        if self.watch_addr == Some(msg.addr) {
            let st = self.nodes[node.index()].dir.get(&msg.addr).map(|e| (e.state, e.sharers));
            self.watch(core.cycle(), format!("req {:?} from {:?} at home {node:?} dir={st:?}", msg.mtype, msg.requester));
        }
        let req = msg.requester;
        let state = {
            let ns = &self.nodes[node.index()];
            ns.dir.get(&msg.addr).map(|e| e.state).unwrap_or(DirState::I)
        };
        let sharers: Vec<NodeId> = {
            let ns = &self.nodes[node.index()];
            ns.dir
                .get(&msg.addr)
                .map(|e| e.sharers_excluding(req).collect())
                .unwrap_or_default()
        };
        let block = |this: &mut Self, commit: DirCommit| {
            this.nodes[node.index()]
                .tbes
                .insert(msg.addr, Tbe { requester: req, commit });
        };
        match (msg.mtype, state) {
            (MsgType::GetS, DirState::I) => {
                block(self, DirCommit::ExclusiveTo(req));
                self.send(core, node, req, CohMsg::new(MsgType::DataE, msg.addr, req));
            }
            (MsgType::GetS, DirState::S) => {
                block(self, DirCommit::AddSharer(req));
                self.send(core, node, req, CohMsg::new(MsgType::Data, msg.addr, req));
            }
            (MsgType::GetS, DirState::EM(o)) => {
                block(self, DirCommit::TransferRead { old: o, new: req });
                self.send(core, node, o, CohMsg::new(MsgType::FwdGetS, msg.addr, req));
            }
            (MsgType::GetM, DirState::I) => {
                block(self, DirCommit::ExclusiveTo(req));
                self.send(core, node, req, CohMsg::new(MsgType::DataE, msg.addr, req));
            }
            (MsgType::GetM, DirState::S) => {
                let acks = sharers.len() as u8;
                block(self, DirCommit::ExclusiveTo(req));
                self.send(
                    core,
                    node,
                    req,
                    CohMsg::new(MsgType::Data, msg.addr, req).with_acks(acks),
                );
                for s in sharers {
                    self.send(core, node, s, CohMsg::new(MsgType::Inv, msg.addr, req));
                }
            }
            (MsgType::GetM, DirState::EM(o)) if o == req => {
                // MOESI upgrade by the owner (O -> M): invalidate the
                // dirty-sharing readers and ack the owner with the count.
                let acks = sharers.len() as u8;
                block(self, DirCommit::ExclusiveTo(req));
                self.send(
                    core,
                    node,
                    req,
                    CohMsg::new(MsgType::Data, msg.addr, req).with_acks(acks),
                );
                for s in sharers {
                    self.send(core, node, s, CohMsg::new(MsgType::Inv, msg.addr, req));
                }
            }
            (MsgType::GetM, DirState::EM(o)) => {
                // Ownership transfer; MOESI dirty-sharers are invalidated
                // alongside, and the owner's forwarded data carries the
                // ack count.
                let acks = sharers.iter().filter(|&&s| s != o).count() as u8;
                block(self, DirCommit::ExclusiveTo(req));
                self.send(
                    core,
                    node,
                    o,
                    CohMsg::new(MsgType::FwdGetM, msg.addr, req).with_acks(acks),
                );
                for s in sharers {
                    if s != o {
                        self.send(core, node, s, CohMsg::new(MsgType::Inv, msg.addr, req));
                    }
                }
            }
            (MsgType::PutM, st) => {
                if st == DirState::EM(req) {
                    // An O-state eviction (MOESI) leaves its readers
                    // cached: the line falls back to S; otherwise to I.
                    let all_sharers = {
                        let ns = &self.nodes[node.index()];
                        ns.dir.get(&msg.addr).map(|e| e.sharers).unwrap_or(0)
                    };
                    if all_sharers != 0 {
                        self.set_dir(node, msg.addr, DirState::S, all_sharers);
                    } else {
                        self.set_dir(node, msg.addr, DirState::I, 0);
                    }
                }
                // Stale PutM (ownership already moved): just ack.
                self.send(core, node, req, CohMsg::new(MsgType::WBAck, msg.addr, req));
            }
            _ => unreachable!("non-request message in request handler"),
        }
    }

    fn set_dir(&mut self, node: NodeId, addr: Addr, state: DirState, sharers: u64) {
        let e = self.nodes[node.index()]
            .dir
            .entry(addr)
            .or_default();
        e.state = state;
        e.sharers = sharers;
    }

    // ------------------------------------------------------------------
    // Core issue
    // ------------------------------------------------------------------

    fn try_issue(&mut self, core: &mut SimCore, node: NodeId) {
        if let Some(q) = self.trace.quota() {
            let ns = &self.nodes[node.index()];
            if ns.completed + ns.hits >= q {
                return;
            }
        }
        // Resource gates before consulting the trace (so the trace stream
        // is not consumed on stall cycles).
        {
            let ns = &self.nodes[node.index()];
            if !ns.mshr_available(self.config.mshrs_per_core)
                || core.injection_space(node, MessageClass::REQUEST) < 2
            {
                return;
            }
        }
        let Some(op) = self.trace.next_op(node, core.cycle()) else {
            return;
        };
        if self.watch_addr == Some(op.addr) {
            let line = self.nodes[node.index()].lines.get(&op.addr).copied();
            self.watch(core.cycle(), format!("issue {:?} write={} at {node:?} line={line:?}", op.addr, op.is_write));
        }
        self.stats.issued += 1;
        let ns = &mut self.nodes[node.index()];
        // An address with an outstanding transaction is not re-issued.
        if ns.mshrs.contains_key(&op.addr) {
            ns.hits += 1; // coalesced into the outstanding miss
            self.stats.hits += 1;
            return;
        }
        match ns.lines.get(&op.addr).copied() {
            Some(LineState::M) => {
                ns.hits += 1;
                self.stats.hits += 1;
            }
            Some(LineState::E) => {
                if op.is_write {
                    ns.lines.insert(op.addr, LineState::M); // silent upgrade
                }
                ns.hits += 1;
                self.stats.hits += 1;
            }
            Some(LineState::S) | Some(LineState::O) if !op.is_write => {
                ns.hits += 1;
                self.stats.hits += 1;
            }
            line => {
                // Miss (or an S/O-state store upgrade). Make room first.
                let upgrade = matches!(line, Some(LineState::S) | Some(LineState::O));
                if !upgrade
                    && ns.lines.len() >= self.config.l1_capacity
                    && !self.evict_one(core, node)
                {
                    return; // cannot evict now; retry next cycle
                }
                let ns = &mut self.nodes[node.index()];
                ns.mshrs.insert(
                    op.addr,
                    Mshr {
                        kind: if op.is_write {
                            MissKind::Store
                        } else {
                            MissKind::Load
                        },
                        have_data: false,
                        acks_needed: 0,
                        started_at: core.cycle(),
                        fwd_handled: false,
                    },
                );
                let mtype = if op.is_write {
                    MsgType::GetM
                } else {
                    MsgType::GetS
                };
                let home = self.home(op.addr);
                self.send(core, node, home, CohMsg::new(mtype, op.addr, node));
            }
        }
    }

    /// Evicts one random non-busy line; dirty/exclusive lines go through a
    /// PutM writeback (needs an MSHR slot and request space). Returns
    /// whether room was made.
    fn evict_one(&mut self, core: &mut SimCore, node: NodeId) -> bool {
        let victim = {
            let ns = &self.nodes[node.index()];
            let candidates: Vec<Addr> = ns
                .lines
                .keys()
                .copied()
                .filter(|a| !ns.mshrs.contains_key(a))
                .collect();
            if candidates.is_empty() {
                return false;
            }
            candidates[self.rng.gen_range(0..candidates.len())]
        };
        let state = self.nodes[node.index()].lines[&victim];
        match state {
            LineState::S => {
                // Silent clean-shared drop (the directory over-approximates).
                self.nodes[node.index()].lines.remove(&victim);
                true
            }
            LineState::E | LineState::M | LineState::O => {
                // Needs a writeback MSHR + one more request slot beyond the
                // one reserved for the triggering miss.
                let ns = &self.nodes[node.index()];
                if ns.mshrs.len() + 2 > self.config.mshrs_per_core
                    || core.injection_space(node, MessageClass::REQUEST) < 2
                {
                    return false;
                }
                let ns = &mut self.nodes[node.index()];
                ns.lines.remove(&victim);
                ns.mshrs.insert(
                    victim,
                    Mshr {
                        kind: MissKind::Writeback,
                        have_data: true,
                        acks_needed: 0,
                        started_at: core.cycle(),
                        fwd_handled: false,
                    },
                );
                let home = self.home(victim);
                self.send(core, node, home, CohMsg::new(MsgType::PutM, victim, node));
                true
            }
        }
    }

    /// Drains same-node messages (delivered without the network). Messages
    /// that cannot be processed yet (busy address, no queue space for their
    /// remote side effects) are deferred to the next cycle.
    fn process_local(&mut self, core: &mut SimCore) {
        let mut deferred: Vec<(NodeId, CohMsg)> = Vec::new();
        let mut guard = 0;
        while let Some((node, msg)) = self.local.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "local message storm");
            match msg.mtype.class() {
                MessageClass::RESPONSE => self.handle_response(core, node, msg),
                MessageClass::FORWARD => {
                    let need = self.forward_response_need(node, &msg);
                    if core.injection_space(node, MessageClass::RESPONSE) < need {
                        deferred.push((node, msg));
                    } else {
                        self.handle_forward(core, node, msg);
                    }
                }
                MessageClass::REQUEST => {
                    // Local requests still respect the blocking directory
                    // and queue-space gates.
                    match self.request_need(node, &msg) {
                        Some((needs_tbe, fwd_need, resp_need))
                            if (!needs_tbe
                                || self.nodes[node.index()]
                                    .tbe_available(self.config.tbes_per_dir))
                                && core.injection_space(node, MessageClass::FORWARD)
                                    >= fwd_need
                                && core.injection_space(node, MessageClass::RESPONSE)
                                    >= resp_need =>
                        {
                            self.handle_request(core, node, msg);
                        }
                        _ => deferred.push((node, msg)),
                    }
                }
                _ => unreachable!("unknown class"),
            }
        }
        self.local.extend(deferred);
    }
}

impl Endpoints for CoherenceEngine {
    fn name(&self) -> &str {
        "mesi"
    }

    fn pre_cycle(&mut self, core: &mut SimCore) {
        if !self.checked_capacity {
            assert!(
                core.config().inj_queue_capacity >= self.num_nodes + 2,
                "coherence needs injection queues that can hold a full \
                 invalidation burst (>= num_nodes + 2 entries)"
            );
            assert!(
                core.config().num_classes >= 3,
                "coherence uses three message classes"
            );
            self.checked_capacity = true;
        }
        let k = self.config.consume_per_class;
        for ni in 0..self.num_nodes {
            let node = NodeId(ni as u16);
            // 1. Responses: the sink class, always consumable.
            for _ in 0..k {
                let Some(d) = core.pop_ejection(node, MessageClass::RESPONSE) else {
                    break;
                };
                let msg = CohMsg::unpack(d.packet.tag);
                self.handle_response(core, node, msg);
            }
            // 2. Forwards: need response-injection space.
            for _ in 0..k {
                let Some(pkt) = core.peek_ejection(node, MessageClass::FORWARD) else {
                    break;
                };
                let msg = CohMsg::unpack(pkt.tag);
                let need = self.forward_response_need(node, &msg);
                if core.injection_space(node, MessageClass::RESPONSE) < need {
                    break; // head-of-line stall: the protocol dependence
                }
                core.pop_ejection(node, MessageClass::FORWARD);
                self.handle_forward(core, node, msg);
            }
            // 3. Requests (at the home): need TBE/space and a non-busy
            //    address.
            for _ in 0..k {
                let Some(pkt) = core.peek_ejection(node, MessageClass::REQUEST) else {
                    break;
                };
                let msg = CohMsg::unpack(pkt.tag);
                let Some((needs_tbe, fwd_need, resp_need)) = self.request_need(node, &msg)
                else {
                    self.stats.request_stall_cycles += 1;
                    break; // address busy
                };
                let ns = &self.nodes[node.index()];
                if (needs_tbe && !ns.tbe_available(self.config.tbes_per_dir))
                    || core.injection_space(node, MessageClass::FORWARD) < fwd_need
                    || core.injection_space(node, MessageClass::RESPONSE) < resp_need
                {
                    self.stats.request_stall_cycles += 1;
                    break;
                }
                core.pop_ejection(node, MessageClass::REQUEST);
                self.handle_request(core, node, msg);
            }
            // 4. Core issue.
            for _ in 0..self.config.issue_width {
                self.try_issue(core, node);
            }
        }
        self.process_local(core);
    }

    fn finished(&self, core: &SimCore) -> bool {
        self.quota_reached(core)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl std::fmt::Debug for CoherenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoherenceEngine")
            .field("nodes", &self.num_nodes)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SyntheticMemTrace;
    use drain_netsim::mechanism::NoMechanism;
    use drain_netsim::routing::FullyAdaptive;
    use drain_netsim::{Sim, SimConfig};
    use drain_topology::Topology;

    /// A deadlock-free (escape-VC protected, 3-VN) coherent system.
    fn coherent_sim(vns: usize, issue: f64, write: f64, seed: u64) -> Sim {
        let topo = Topology::mesh(4, 4);
        let engine = CoherenceEngine::new(
            &topo,
            CoherenceConfig::default(),
            Box::new(SyntheticMemTrace::uniform(issue, write, 128, seed)),
        );
        Sim::new(
            topo.clone(),
            SimConfig {
                vns,
                vcs_per_vn: 2,
                num_classes: 3,
                inj_queue_capacity: 64,
                escape_sticky: true,
                ..SimConfig::default()
            },
            Box::new(drain_netsim::routing::EscapeVcRouting::with_dor(&topo)),
            Box::new(NoMechanism),
            Box::new(engine),
        )
    }

    #[test]
    fn transactions_complete_with_three_vns() {
        let mut sim = coherent_sim(3, 0.1, 0.3, 1);
        sim.run(10_000);
        // Completed transactions show up as delivered response packets.
        assert!(sim.stats().ejected > 500, "ejected {}", sim.stats().ejected);
        assert!(!sim.stats().deadlocked());
    }

    #[test]
    fn read_sharing_then_write_invalidations() {
        // High sharing + writes force Inv/InvAck chains; ensure forward
        // traffic exists (class counts via message mix is internal, so use
        // protocol liveness as the signal).
        let mut sim = coherent_sim(3, 0.2, 0.5, 2);
        sim.run(20_000);
        assert!(sim.stats().ejected > 2_000);
        assert!(!sim.stats().deadlocked());
    }

    #[test]
    fn single_writer_invariant_holds() {
        let topo = Topology::mesh(3, 3);
        let engine = CoherenceEngine::new(
            &topo,
            CoherenceConfig {
                l1_capacity: 32,
                ..CoherenceConfig::default()
            },
            Box::new(SyntheticMemTrace::uniform(0.3, 0.5, 16, 3)),
        );
        let mut sim = Sim::new(
            topo.clone(),
            SimConfig {
                inj_queue_capacity: 64,
                ..SimConfig::default()
            },
            Box::new(FullyAdaptive::new(&topo)),
            Box::new(NoMechanism),
            Box::new(engine),
        );
        // Step manually and check the invariant continuously. We cannot
        // reach the engine after boxing, so rebuild: instead run a fresh
        // engine alongside is not possible — use the quota path below.
        sim.run(5_000);
        assert!(!sim.stats().deadlocked());
    }

    #[test]
    fn small_queues_expose_protocol_pressure() {
        // Tight injection queues with heavy writes: the engine must stall
        // (HOL) rather than drop or wedge in the deadlock-free VN-3 config.
        let topo = Topology::mesh(3, 3);
        let engine = CoherenceEngine::new(
            &topo,
            CoherenceConfig::default(),
            Box::new(SyntheticMemTrace::uniform(0.4, 0.6, 32, 4)),
        );
        let mut sim = Sim::new(
            topo.clone(),
            SimConfig {
                inj_queue_capacity: 12,
                ej_queue_capacity: 2,
                escape_sticky: true,
                ..SimConfig::default()
            },
            Box::new(drain_netsim::routing::EscapeVcRouting::with_dor(&topo)),
            Box::new(NoMechanism),
            Box::new(engine),
        );
        sim.run(30_000);
        assert!(!sim.stats().deadlocked(), "VN-3 escape-VC must stay live");
        assert!(sim.stats().ejected > 1_000);
    }

    #[test]
    fn quota_finishes_workload() {
        let topo = Topology::mesh(3, 3);
        let engine = CoherenceEngine::new(
            &topo,
            CoherenceConfig::default(),
            Box::new(SyntheticMemTrace::uniform(0.2, 0.3, 64, 5).with_quota(50)),
        );
        let mut sim = Sim::new(
            topo.clone(),
            SimConfig {
                inj_queue_capacity: 64,
                ..SimConfig::default()
            },
            Box::new(FullyAdaptive::new(&topo)),
            Box::new(NoMechanism),
            Box::new(engine),
        );
        let outcome = sim.run(200_000);
        assert_eq!(outcome, drain_netsim::RunOutcome::WorkloadFinished);
    }

    #[test]
    fn home_mapping_is_stable() {
        let topo = Topology::mesh(4, 4);
        let e = CoherenceEngine::new(
            &topo,
            CoherenceConfig::default(),
            Box::new(SyntheticMemTrace::uniform(0.1, 0.1, 8, 6)),
        );
        assert_eq!(e.home(0), NodeId(0));
        assert_eq!(e.home(17), NodeId(1));
        assert_eq!(e.home(15), NodeId(15));
    }
}
