//! Coherence messages and their packing into packet tags.

use drain_netsim::MessageClass;
use drain_topology::NodeId;

/// A cache-line address (already line-granular).
pub type Addr = u32;

/// Coherence message types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum MsgType {
    /// Read request (core → home).
    GetS = 0,
    /// Write/ownership request (core → home).
    GetM = 1,
    /// Dirty writeback (owner → home).
    PutM = 2,
    /// Forwarded read (home → owner).
    FwdGetS = 3,
    /// Forwarded write (home → owner).
    FwdGetM = 4,
    /// Invalidate (home → sharer).
    Inv = 5,
    /// Shared data (→ requester).
    Data = 6,
    /// Exclusive data (→ requester; grants E).
    DataE = 7,
    /// Invalidation ack (sharer → requester).
    InvAck = 8,
    /// Writeback ack (home → owner).
    WBAck = 9,
    /// Ownership-transfer completion (old owner → home; MESI read
    /// transfers carry the dirty data back with it).
    AckToHome = 10,
    /// Transaction-complete notification (requester → home): unblocks the
    /// address at the blocking directory.
    Unblock = 11,
}

impl MsgType {
    /// The message class (virtual network) this type travels on.
    pub fn class(self) -> MessageClass {
        match self {
            MsgType::GetS | MsgType::GetM | MsgType::PutM => MessageClass::REQUEST,
            MsgType::FwdGetS | MsgType::FwdGetM | MsgType::Inv => MessageClass::FORWARD,
            MsgType::Data
            | MsgType::DataE
            | MsgType::InvAck
            | MsgType::WBAck
            | MsgType::AckToHome
            | MsgType::Unblock => MessageClass::RESPONSE,
        }
    }

    /// Whether the message carries a data payload (data-packet length).
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MsgType::Data | MsgType::DataE | MsgType::PutM | MsgType::AckToHome
        )
    }

    fn from_u8(v: u8) -> MsgType {
        match v {
            0 => MsgType::GetS,
            1 => MsgType::GetM,
            2 => MsgType::PutM,
            3 => MsgType::FwdGetS,
            4 => MsgType::FwdGetM,
            5 => MsgType::Inv,
            6 => MsgType::Data,
            7 => MsgType::DataE,
            8 => MsgType::InvAck,
            9 => MsgType::WBAck,
            10 => MsgType::AckToHome,
            11 => MsgType::Unblock,
            _ => panic!("invalid MsgType encoding: {v}"),
        }
    }
}

/// A coherence message, packed into a packet's 64-bit tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CohMsg {
    /// Message type.
    pub mtype: MsgType,
    /// The cache-line address.
    pub addr: Addr,
    /// The original requester of the transaction this message belongs to.
    pub requester: NodeId,
    /// For `Data`/`DataE` on a GetM: how many InvAcks the requester must
    /// collect.
    pub ack_count: u8,
}

impl CohMsg {
    /// Creates a message with zero ack count.
    pub fn new(mtype: MsgType, addr: Addr, requester: NodeId) -> Self {
        CohMsg {
            mtype,
            addr,
            requester,
            ack_count: 0,
        }
    }

    /// Sets the ack count (builder style).
    pub fn with_acks(mut self, acks: u8) -> Self {
        self.ack_count = acks;
        self
    }

    /// Packs into a packet tag: `addr` in bits 0..32, type in 32..40,
    /// requester in 40..56, ack count in 56..64.
    pub fn pack(self) -> u64 {
        (self.addr as u64)
            | ((self.mtype as u64) << 32)
            | ((self.requester.0 as u64) << 40)
            | ((self.ack_count as u64) << 56)
    }

    /// Unpacks from a packet tag.
    ///
    /// # Panics
    ///
    /// Panics if the tag's type field is not a valid [`MsgType`].
    pub fn unpack(tag: u64) -> Self {
        CohMsg {
            addr: (tag & 0xFFFF_FFFF) as Addr,
            mtype: MsgType::from_u8(((tag >> 32) & 0xFF) as u8),
            requester: NodeId(((tag >> 40) & 0xFFFF) as u16),
            ack_count: ((tag >> 56) & 0xFF) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for mtype in [
            MsgType::GetS,
            MsgType::GetM,
            MsgType::PutM,
            MsgType::FwdGetS,
            MsgType::FwdGetM,
            MsgType::Inv,
            MsgType::Data,
            MsgType::DataE,
            MsgType::InvAck,
            MsgType::WBAck,
            MsgType::AckToHome,
            MsgType::Unblock,
        ] {
            let m = CohMsg {
                mtype,
                addr: 0xDEAD_BEEF,
                requester: NodeId(63),
                ack_count: 17,
            };
            assert_eq!(CohMsg::unpack(m.pack()), m);
        }
    }

    #[test]
    fn class_mapping_matches_paper() {
        assert_eq!(MsgType::GetS.class(), MessageClass::REQUEST);
        assert_eq!(MsgType::Inv.class(), MessageClass::FORWARD);
        assert_eq!(MsgType::InvAck.class(), MessageClass::RESPONSE);
        assert_eq!(MsgType::PutM.class(), MessageClass::REQUEST);
        assert_eq!(MsgType::AckToHome.class(), MessageClass::RESPONSE);
    }

    #[test]
    fn data_messages_are_long() {
        assert!(MsgType::Data.carries_data());
        assert!(MsgType::PutM.carries_data());
        assert!(!MsgType::GetS.carries_data());
        assert!(!MsgType::InvAck.carries_data());
    }
}
