//! Baseline deadlock-freedom schemes the paper compares DRAIN against.
//!
//! * [`spin::SpinMechanism`] — a reimplementation of SPIN (paper ref \[5\]): per-VC
//!   timeout counters suspect a deadlock, a probe walks the chain of
//!   blocked packets, and a confirmed cycle performs a coordinated
//!   one-hop *spin*. Reactive; needs per-class virtual networks for
//!   protocol-level deadlock freedom.
//! * Escape VCs — proactive; implemented entirely by
//!   [`drain_netsim::routing::EscapeVcRouting`] plus a sticky escape VC, so
//!   its "mechanism" is [`drain_netsim::mechanism::NoMechanism`]. The
//!   [`assemble`] helpers wire it correctly.
//! * [`ideal::IdealMechanism`] — the zero-cost deadlock-free oracle used as
//!   the "ideal fully adaptive" reference in Fig 5: structural deadlocks
//!   are resolved by teleporting a blocked packet to its destination.
//!
//! # Examples
//!
//! ```
//! use drain_topology::Topology;
//! use drain_baselines::assemble::{baseline_sim, Baseline};
//! use drain_netsim::traffic::{SyntheticTraffic, SyntheticPattern};
//!
//! let topo = Topology::mesh(4, 4);
//! let mut sim = baseline_sim(
//!     &topo,
//!     Baseline::Spin,
//!     true,
//!     Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.05, 1, 3)),
//!     1,
//! );
//! sim.run(2_000);
//! assert!(sim.stats().ejected > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod ideal;
pub mod spin;

pub use assemble::{baseline_sim, Baseline};
pub use ideal::IdealMechanism;
pub use spin::{SpinConfig, SpinMechanism};
