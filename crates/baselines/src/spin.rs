//! SPIN-style reactive deadlock detection and recovery.
//!
//! SPIN (Parasar et al., HPCA 2018) detects potential deadlocks with
//! per-router timeout counters, confirms them by sending a *probe* that
//! walks the chain of blocked packets, and resolves a confirmed cycle with
//! a coordinated forward movement of every packet in it (a *spin*). No
//! extra buffers and no routing restrictions are needed — at the price of
//! detection/coordination hardware, which the paper's Fig 9 charges as a
//! ~15% router-control overhead.
//!
//! This reimplementation reproduces the externally visible behaviour at the
//! simulator's abstraction level:
//!
//! * a VC whose head packet has been blocked for `timeout` cycles
//!   (default 1024, the paper's SPIN setting) launches a probe;
//! * the probe advances one hop per cycle along the wait-for chain (each
//!   hop is counted for the power model), following the occupied candidate
//!   buffer of the currently blocked packet;
//! * if the walk closes a cycle, the packets on the cycle perform a
//!   one-hop spin (forced, atomic, like a drain step but along the
//!   discovered cycle instead of a precomputed path);
//! * if the walk reaches a packet that can move, the probe aborts.
//!
//! Like real SPIN, protocol-level deadlocks are *not* resolved — the
//! scheme relies on per-class virtual networks for those.

use drain_netsim::mechanism::{ControlAction, ForcedKind, ForcedMove, Mechanism};
use drain_netsim::routing::{Candidate, RouteCtx};
use drain_netsim::{SimCore, TraceEvent, VcRef};

/// SPIN parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpinConfig {
    /// Blocked cycles before a VC is suspected (paper: 1024).
    pub timeout: u64,
    /// Probe abandons after this many hops (bounds hardware walk length).
    pub max_probe_len: usize,
    /// Cycles per probe hop (dedicated control wires; 1 in SPIN).
    pub probe_hop_latency: u64,
}

impl Default for SpinConfig {
    fn default() -> Self {
        SpinConfig {
            timeout: 1024,
            max_probe_len: 4096,
            probe_hop_latency: 1,
        }
    }
}

#[derive(Clone, Debug)]
struct Probe {
    /// Walked VCs; `path[i+1]` is the buffer `path[i]`'s packet waits on.
    path: Vec<VcRef>,
    /// Packet ids observed at each path entry (abort if any moved).
    pids: Vec<drain_netsim::PacketId>,
    next_advance_at: u64,
}

/// The SPIN mechanism.
#[derive(Clone, Debug)]
pub struct SpinMechanism {
    config: SpinConfig,
    probe: Option<Probe>,
    /// Freeze cycles left after an emitted spin (serialization).
    freeze_left: u64,
    /// Rotates scan/choice starting points for fairness.
    rotation: u64,
    /// Lower bound on `max(entered_at, ready_at)` over every occupied VC,
    /// learned as a byproduct of each suspect scan that comes up empty.
    /// No VC can time out before `suspect_floor + timeout`, so until then
    /// the per-cycle occupancy sweep is skipped outright. Sound because a
    /// buffer's timestamps are written only when a packet enters it, and
    /// every entry stamps them at or after the current cycle — newcomers
    /// can only raise the true minimum, never undercut the bound.
    suspect_floor: u64,
    /// Probe-walk scratch (reused across hops — a probe hop allocates
    /// nothing).
    cands: Vec<Candidate>,
    targets: Vec<VcRef>,
    occupied: Vec<VcRef>,
}

impl SpinMechanism {
    /// Creates the mechanism.
    pub fn new(config: SpinConfig) -> Self {
        SpinMechanism {
            config,
            probe: None,
            freeze_left: 0,
            rotation: 0,
            suspect_floor: 0,
            cands: Vec::new(),
            targets: Vec::new(),
            occupied: Vec::new(),
        }
    }

    /// Creates the mechanism with the paper's defaults.
    pub fn with_defaults() -> Self {
        Self::new(SpinConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &SpinConfig {
        &self.config
    }

    /// The concrete occupied buffer `vc`'s packet is waiting on, or `None`
    /// if the packet can move / eject (no deadlock through this VC).
    fn wait_target(&mut self, core: &SimCore, vc: VcRef, choice: u64) -> Option<VcRef> {
        let st = core.vc(vc);
        let pid = st.occ?;
        let p = core.packet(pid);
        let here = core.topology().link(vc.link).dst;
        if p.dest == here {
            // Waiting on the ejection queue, not on a buffer.
            return None;
        }
        // Like the detector, probes must consider every buffer the packet
        // could eventually claim, including deflection targets.
        let ctx = RouteCtx {
            cur: here,
            dest: p.dest,
            arrived_via: Some(vc.link),
            in_escape: core.config().escape_sticky && vc.vc == 0,
            blocked_for: u64::MAX,
            sample: 0,
        };
        self.cands.clear();
        core.route_candidates(&ctx, &mut self.cands);
        let vn = core.config().vn_of_class(p.class) as u8;
        self.occupied.clear();
        for i in 0..self.cands.len() {
            let c = self.cands[i];
            self.targets.clear();
            core.concrete_targets(c, vn, &mut self.targets);
            for &t in &self.targets {
                // A free (unoccupied) buffer means the packet is merely
                // waiting on link arbitration, not deadlocked.
                core.vc(t).occ?;
                self.occupied.push(t);
            }
        }
        if self.occupied.is_empty() {
            return None;
        }
        Some(self.occupied[(choice % self.occupied.len() as u64) as usize])
    }

    /// Scans for a VC blocked longer than the timeout.
    ///
    /// Walks the core's occupancy bitmap: iterating set bits ascending
    /// from `rotation % total_slots` and wrapping reproduces the original
    /// dense circular sweep (which skipped empty VCs anyway) at
    /// O(total VCs / 64) words plus one two-field gather per occupied VC —
    /// no copying, no sorting, no allocation. An empty-handed sweep has
    /// seen every occupied buffer's timestamp, so it additionally learns
    /// the earliest cycle at which *any* buffer could next time out
    /// (`suspect_floor + timeout`); until that cycle later sweeps return
    /// `None` without touching the arena at all. Skipped sweeps have no
    /// observable effect (a sweep that finds nothing has none either), so
    /// the probe-launch schedule — and every downstream trace event — is
    /// bit-identical to the ungated scan.
    fn find_suspect(&mut self, core: &SimCore) -> Option<VcRef> {
        let now = core.cycle();
        let timeout = self.config.timeout;
        if now.saturating_sub(timeout) < self.suspect_floor {
            return None;
        }
        let cfg = core.config();
        let total_slots =
            (core.topology().num_unidirectional_links() * cfg.vns * cfg.vcs_per_vn) as u64;
        if total_slots == 0 {
            return None;
        }
        let bits = core.occupied_vc_bitmap();
        let start = (self.rotation % total_slots) as usize;
        let mut min_key = u64::MAX;
        let mut scan_word = |wi: usize, mask: u64| -> Option<VcRef> {
            let mut w = bits[wi] & mask;
            while w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let st = core.vc_state_of_index(idx);
                let key = st.entered_at.max(st.ready_at);
                if now.saturating_sub(key) >= timeout {
                    return Some(core.vc_ref_of_index(idx));
                }
                min_key = min_key.min(key);
            }
            None
        };
        let sw = start / 64;
        let sb = start % 64;
        // [start, end), then wrap to [0, start).
        let mut found = scan_word(sw, !0u64 << sb);
        if found.is_none() {
            found = (sw + 1..bits.len())
                .chain(0..sw)
                .find_map(|wi| scan_word(wi, !0))
                .or_else(|| scan_word(sw, (1u64 << sb) - 1));
        }
        if found.is_none() {
            // Every occupied buffer was inspected; packets entering later
            // stamp timestamps at or after `now`, so this minimum (capped
            // at `now`) lower-bounds all future keys.
            self.suspect_floor = min_key.min(now);
        }
        found
    }

    /// Builds the spin moves for a discovered cycle `cycle[0] -> cycle[1]
    /// -> ... -> cycle[0]`.
    fn spin_moves(cycle: &[VcRef]) -> Vec<ForcedMove> {
        (0..cycle.len())
            .map(|i| ForcedMove {
                from: cycle[i],
                to: cycle[(i + 1) % cycle.len()],
            })
            .collect()
    }
}

impl Mechanism for SpinMechanism {
    fn name(&self) -> &str {
        "spin"
    }

    fn idle_until(&self, core: &SimCore) -> u64 {
        // With no probe in flight and no post-spin freeze, an idle-network
        // control call only advances the fairness rotation — and the
        // network's own certificate (every occupied VC still in pipeline
        // delay) guarantees no suspect can mature mid-jump: a timeout
        // needs `blocked_for >= timeout`, which requires a VC ready in the
        // past, and such a VC pins the clock anyway. The elided rotation
        // increments are rebased in `on_cycles_skipped`.
        if self.probe.is_none() && self.freeze_left == 0 {
            u64::MAX
        } else {
            core.cycle()
        }
    }

    fn on_cycles_skipped(&mut self, cycles: u64) {
        // One elided control call per skipped cycle; each would have
        // incremented the rotation exactly once.
        self.rotation = self.rotation.wrapping_add(cycles);
    }

    fn control(&mut self, core: &mut SimCore) -> ControlAction {
        self.rotation = self.rotation.wrapping_add(1);
        if self.freeze_left > 0 {
            self.freeze_left -= 1;
            return ControlAction::Freeze;
        }
        let now = core.cycle();
        // Advance or initiate the probe.
        if self.probe.is_none() {
            if let Some(suspect) = self.find_suspect(core) {
                let pid = core.vc(suspect).occ.expect("suspect is occupied");
                self.probe = Some(Probe {
                    path: vec![suspect],
                    pids: vec![pid],
                    next_advance_at: now + self.config.probe_hop_latency,
                });
            }
            return ControlAction::Normal;
        }
        {
            let probe = self.probe.as_ref().expect("checked above");
            if now < probe.next_advance_at {
                return ControlAction::Normal;
            }
            // Verify nothing on the walked path has moved.
            for (r, pid) in probe.path.iter().zip(&probe.pids) {
                if core.vc(*r).occ != Some(*pid) {
                    self.probe = None;
                    return ControlAction::Normal;
                }
            }
        }
        let cur = *self
            .probe
            .as_ref()
            .expect("checked above")
            .path
            .last()
            .expect("probe path is never empty");
        let choice = self.rotation;
        core.stats.probe_hops += 1;
        if core.trace_enabled() {
            let router = core.topology().link(cur.link).dst.0;
            let len = self.probe.as_ref().expect("checked above").path.len() as u32;
            core.trace_emit(TraceEvent::Probe {
                cycle: now,
                router,
                len,
            });
        }
        let Some(next) = self.wait_target(core, cur, choice) else {
            // The chain can progress: no deadlock here.
            self.probe = None;
            return ControlAction::Normal;
        };
        let probe = self.probe.as_mut().expect("checked above");
        if let Some(pos) = probe.path.iter().position(|&r| r == next) {
            // Cycle closed: spin the packets on path[pos..].
            let cycle: Vec<VcRef> = probe.path[pos..].to_vec();
            self.probe = None;
            self.freeze_left = core.config().max_packet_flits() as u64;
            let moves = Self::spin_moves(&cycle);
            if core.trace_enabled() {
                core.trace_emit(TraceEvent::Spin {
                    cycle: now,
                    moves: moves.len() as u32,
                });
            }
            return ControlAction::Forced(moves, ForcedKind::Spin);
        }
        if probe.path.len() >= self.config.max_probe_len {
            self.probe = None;
            return ControlAction::Normal;
        }
        let next_pid = core.vc(next).occ.expect("wait target is occupied");
        probe.path.push(next);
        probe.pids.push(next_pid);
        probe.next_advance_at = now + self.config.probe_hop_latency;
        ControlAction::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_netsim::routing::FullyAdaptive;
    use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
    use drain_netsim::{Sim, SimConfig};
    use drain_topology::Topology;

    /// A 4-ring with a single VC and heavy cross traffic deadlocks quickly;
    /// SPIN must detect and resolve every deadlock so that all packets are
    /// eventually delivered after injection stops.
    #[test]
    fn spin_resolves_ring_deadlocks() {
        let topo = Topology::ring(4);
        let mut sim = Sim::new(
            topo.clone(),
            SimConfig {
                vns: 1,
                vcs_per_vn: 1,
                num_classes: 1,
                watchdog_threshold: 50_000,
                ..SimConfig::default()
            },
            Box::new(FullyAdaptive::new(&topo)),
            Box::new(SpinMechanism::new(SpinConfig {
                timeout: 64,
                ..SpinConfig::default()
            })),
            Box::new(
                SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.5, 1, 5)
                    .stop_injection_at(2_000),
            ),
        );
        let outcome = sim.run(60_000);
        assert_eq!(outcome, drain_netsim::RunOutcome::WorkloadFinished);
        let s = sim.stats();
        assert!(s.spins > 0, "expected spins, got {}", s.spins);
        assert!(s.probe_hops > 0);
        assert_eq!(s.injected, s.ejected);
        assert!(!s.watchdog_deadlock);
    }

    #[test]
    fn no_probes_at_low_load() {
        let topo = Topology::mesh(4, 4);
        let mut sim = Sim::new(
            topo.clone(),
            SimConfig {
                num_classes: 1,
                ..SimConfig::spin_baseline()
            },
            Box::new(FullyAdaptive::new(&topo)),
            Box::new(SpinMechanism::with_defaults()),
            Box::new(SyntheticTraffic::new(
                SyntheticPattern::UniformRandom,
                0.02,
                1,
                6,
            )),
        );
        sim.run(5_000);
        let s = sim.stats();
        assert_eq!(s.spins, 0, "no deadlocks expected at 2% load");
        assert!(s.ejected > 200);
    }

    #[test]
    fn default_timeout_matches_paper() {
        assert_eq!(SpinConfig::default().timeout, 1024);
    }
}
