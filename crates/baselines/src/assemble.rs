//! Correctly wired baseline simulations.
//!
//! Each baseline is a (configuration, routing, mechanism) triple; getting
//! the combination right matters (e.g. escape VCs are useless without a
//! sticky escape and restricted escape routing). These helpers encode the
//! paper's Table II setups.

use drain_netsim::mechanism::NoMechanism;
use drain_netsim::routing::{EscapeVcRouting, FullyAdaptive, Routing, UpDownAll};
use drain_netsim::traffic::Endpoints;
use drain_netsim::{Sim, SimConfig};
use drain_topology::IntoSharedTopology;

use crate::ideal::IdealMechanism;
use crate::spin::SpinMechanism;

/// Baseline selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Baseline {
    /// Escape VCs: 3 VNs × 2 VCs, sticky escape with DoR (full mesh) or
    /// up*/down* (irregular) escape routing, adaptive elsewhere.
    EscapeVc,
    /// SPIN: 3 VNs × 2 VCs, fully adaptive, probes + spins.
    Spin,
    /// Pure up*/down* on all VCs (Fig 5's restricted baseline).
    UpDown,
    /// Ideal deadlock-free fully adaptive (Fig 5's oracle reference).
    Ideal,
    /// Fully adaptive with no protection at all (Fig 3's deadlock-prone
    /// network).
    Unprotected,
}

impl Baseline {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::EscapeVc => "escape-vc",
            Baseline::Spin => "spin",
            Baseline::UpDown => "updown",
            Baseline::Ideal => "ideal",
            Baseline::Unprotected => "none",
        }
    }

    /// The scheme's default simulator configuration (Table II).
    pub fn default_config(self) -> SimConfig {
        match self {
            Baseline::EscapeVc => SimConfig::escape_vc_baseline(),
            Baseline::Spin => SimConfig::spin_baseline(),
            Baseline::UpDown | Baseline::Ideal | Baseline::Unprotected => SimConfig::default(),
        }
    }
}

/// Builds a baseline simulation on `topo`.
///
/// `full_mesh` selects the escape-VC escape routing (DoR on an intact mesh,
/// up*/down* otherwise, per the paper's §V-B setup). `seed` drives all
/// stochastic choices.
pub fn baseline_sim(
    topo: impl IntoSharedTopology,
    baseline: Baseline,
    full_mesh: bool,
    endpoints: Box<dyn Endpoints>,
    seed: u64,
) -> Sim {
    let mut config = baseline.default_config();
    config.seed = seed;
    baseline_sim_with_config(topo, baseline, full_mesh, endpoints, config)
}

/// Builds a baseline simulation with an explicit configuration (used by the
/// sensitivity studies that vary VC counts).
pub fn baseline_sim_with_config(
    topo: impl IntoSharedTopology,
    baseline: Baseline,
    full_mesh: bool,
    endpoints: Box<dyn Endpoints>,
    config: SimConfig,
) -> Sim {
    // One shared topology for the routing function and the core.
    let topo = topo.into_shared();
    let routing: Box<dyn Routing> = match baseline {
        Baseline::EscapeVc => Box::new(EscapeVcRouting::auto(&topo, full_mesh)),
        Baseline::UpDown => Box::new(UpDownAll::new(&topo)),
        Baseline::Spin | Baseline::Ideal | Baseline::Unprotected => {
            Box::new(FullyAdaptive::new(&topo))
        }
    };
    let mechanism: Box<dyn drain_netsim::mechanism::Mechanism> = match baseline {
        Baseline::Spin => Box::new(SpinMechanism::with_defaults()),
        Baseline::Ideal => Box::new(IdealMechanism::default()),
        Baseline::EscapeVc | Baseline::UpDown | Baseline::Unprotected => Box::new(NoMechanism),
    };
    Sim::new(topo, config, routing, mechanism, endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
    use drain_topology::faults::FaultInjector;
    use drain_topology::Topology;

    fn traffic(rate: f64, seed: u64) -> Box<dyn Endpoints> {
        Box::new(SyntheticTraffic::new(
            SyntheticPattern::UniformRandom,
            rate,
            1,
            seed,
        ))
    }

    #[test]
    fn all_baselines_deliver_on_mesh() {
        let topo = Topology::mesh(4, 4);
        for b in [
            Baseline::EscapeVc,
            Baseline::Spin,
            Baseline::UpDown,
            Baseline::Ideal,
            Baseline::Unprotected,
        ] {
            let mut sim = baseline_sim(&topo, b, true, traffic(0.05, 2), 2);
            sim.run(3_000);
            assert!(
                sim.stats().ejected > 100,
                "{} delivered {}",
                b.name(),
                sim.stats().ejected
            );
        }
    }

    #[test]
    fn escape_vc_deadlock_free_on_faulty_mesh() {
        // Moderate load, faulty topology, long run: the escape-VC baseline
        // must never trip the watchdog.
        let topo = FaultInjector::new(9)
            .remove_links(&Topology::mesh(6, 6), 8)
            .unwrap();
        let mut sim = baseline_sim(&topo, Baseline::EscapeVc, false, traffic(0.1, 3), 3);
        sim.run(30_000);
        assert!(!sim.stats().deadlocked());
        assert!(sim.stats().ejected > 1_000);
    }

    #[test]
    fn updown_latency_worse_than_ideal() {
        // Fig 5's qualitative shape at low load: up*/down* pays extra hops.
        let topo = FaultInjector::new(5)
            .remove_links(&Topology::mesh(8, 8), 8)
            .unwrap();
        let mut ud = baseline_sim(&topo, Baseline::UpDown, false, traffic(0.02, 4), 4);
        ud.warmup_and_measure(3_000, 10_000);
        let mut ideal = baseline_sim(&topo, Baseline::Ideal, false, traffic(0.02, 4), 4);
        ideal.warmup_and_measure(3_000, 10_000);
        let l_ud = ud.stats().net_latency.mean();
        let l_id = ideal.stats().net_latency.mean();
        assert!(
            l_ud > l_id,
            "up*/down* ({l_ud:.2}) should be slower than ideal ({l_id:.2})"
        );
    }
}
