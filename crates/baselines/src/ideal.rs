//! The ideal deadlock-free fully-adaptive reference (Fig 5).
//!
//! An oracle that lets packets route fully adaptively with no restrictions
//! and no extra buffers, and — should a structural deadlock ever form —
//! resolves it at zero cost by teleporting one blocked packet to its
//! destination. This is not implementable hardware; it is the upper bound
//! the paper plots up*/down* against ("ideal deadlock-free fully adaptive
//! routing").

use drain_netsim::deadlock;
use drain_netsim::mechanism::{ControlAction, Mechanism};
use drain_netsim::SimCore;

/// The oracle mechanism.
#[derive(Clone, Debug)]
pub struct IdealMechanism {
    /// Cycles between oracle sweeps.
    check_interval: u64,
}

impl IdealMechanism {
    /// Creates the oracle, sweeping every `check_interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `check_interval` is zero.
    pub fn new(check_interval: u64) -> Self {
        assert!(check_interval > 0, "check interval must be positive");
        IdealMechanism { check_interval }
    }
}

impl Default for IdealMechanism {
    fn default() -> Self {
        IdealMechanism::new(32)
    }
}

impl Mechanism for IdealMechanism {
    fn name(&self) -> &str {
        "ideal"
    }

    fn control(&mut self, core: &mut SimCore) -> ControlAction {
        if core.cycle() % self.check_interval == self.check_interval - 1 {
            let report = deadlock::detect(core);
            if let Some(&victim) = report.deadlocked.first() {
                core.oracle_deliver(victim);
            }
        }
        ControlAction::Normal
    }

    fn idle_until(&self, core: &SimCore) -> u64 {
        // On an empty network the oracle's sweeps find nothing and mutate
        // nothing, so any stretch of cycles may be skipped; its schedule is
        // keyed to the absolute clock (`cycle % interval`), not a
        // countdown, so no rebasing is needed either. With packets in
        // flight every sweep boundary matters.
        if core.packets_in_network() == 0 {
            u64::MAX
        } else {
            core.cycle()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_netsim::routing::FullyAdaptive;
    use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
    use drain_netsim::{Sim, SimConfig};
    use drain_topology::Topology;

    #[test]
    fn oracle_keeps_saturated_ring_alive() {
        let topo = Topology::ring(4);
        let mut sim = Sim::new(
            topo.clone(),
            SimConfig {
                vns: 1,
                vcs_per_vn: 1,
                num_classes: 1,
                watchdog_threshold: 20_000,
                ..SimConfig::default()
            },
            Box::new(FullyAdaptive::new(&topo)),
            Box::new(IdealMechanism::new(16)),
            Box::new(
                SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.6, 1, 8)
                    .stop_injection_at(3_000),
            ),
        );
        let outcome = sim.run(40_000);
        assert_eq!(outcome, drain_netsim::RunOutcome::WorkloadFinished);
        assert!(!sim.stats().watchdog_deadlock);
        assert_eq!(sim.stats().injected, sim.stats().ejected);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        IdealMechanism::new(0);
    }
}
