//! Hierholzer's Eulerian-circuit construction.
//!
//! The symmetric digraph induced by a connected bidirectional topology is
//! always Eulerian (in-degree equals out-degree at every node), so a circuit
//! using every unidirectional link exactly once exists and Hierholzer's
//! algorithm finds one in O(E).

use drain_topology::{LinkId, NodeId, Topology};

use crate::DrainPathError;

/// Computes an Eulerian circuit of `topo` as a link sequence.
///
/// The returned sequence `c` satisfies `topo.link(c[i]).dst ==
/// topo.link(c[i+1]).src` (cyclically) and contains every unidirectional
/// link exactly once.
///
/// # Errors
///
/// [`DrainPathError::NoLinks`] for a linkless topology and
/// [`DrainPathError::Disconnected`] when the circuit cannot cover all links
/// (disconnected input).
pub fn hierholzer_circuit(topo: &Topology) -> Result<Vec<LinkId>, DrainPathError> {
    let m = topo.num_unidirectional_links();
    if m == 0 {
        return Err(DrainPathError::NoLinks);
    }
    // next_out[n]: cursor into topo.out_links(n) of the next unused link.
    let mut next_out = vec![0usize; topo.num_nodes()];
    let start: NodeId = topo.link(LinkId(0)).src;

    // Iterative Hierholzer: walk until stuck (back at a node with no unused
    // out-links), then backtrack and splice sub-tours.
    let mut stack: Vec<NodeId> = vec![start];
    let mut link_stack: Vec<LinkId> = Vec::new();
    let mut circuit_rev: Vec<LinkId> = Vec::with_capacity(m);
    while let Some(&v) = stack.last() {
        let outs = topo.out_links(v);
        if next_out[v.index()] < outs.len() {
            let l = outs[next_out[v.index()]];
            next_out[v.index()] += 1;
            stack.push(topo.link(l).dst);
            link_stack.push(l);
        } else {
            stack.pop();
            if let Some(l) = link_stack.pop() {
                circuit_rev.push(l);
            }
        }
    }
    if circuit_rev.len() != m {
        // Some links were unreachable: the graph is disconnected.
        return Err(DrainPathError::Disconnected);
    }
    circuit_rev.reverse();
    Ok(circuit_rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_topology::depgraph::DependencyGraph;
    use drain_topology::faults::FaultInjector;

    fn assert_euler(topo: &Topology) {
        let c = hierholzer_circuit(topo).unwrap();
        assert_eq!(c.len(), topo.num_unidirectional_links());
        let mut seen = vec![false; c.len()];
        for &l in &c {
            assert!(!seen[l.index()], "link used twice");
            seen[l.index()] = true;
        }
        for i in 0..c.len() {
            let a = topo.link(c[i]);
            let b = topo.link(c[(i + 1) % c.len()]);
            assert_eq!(a.dst, b.src, "circuit breaks at position {i}");
        }
        assert!(DependencyGraph::new(topo).is_closed_walk(&c));
    }

    #[test]
    fn meshes() {
        assert_euler(&Topology::mesh(2, 2));
        assert_euler(&Topology::mesh(8, 8));
        assert_euler(&Topology::mesh(1, 5));
    }

    #[test]
    fn tori_and_rings() {
        assert_euler(&Topology::torus(4, 4));
        assert_euler(&Topology::ring(3));
        assert_euler(&Topology::ring(16));
    }

    #[test]
    fn faulty_meshes() {
        for seed in 0..10 {
            let t = FaultInjector::new(seed)
                .remove_links(&Topology::mesh(8, 8), 12)
                .unwrap();
            assert_euler(&t);
        }
    }

    #[test]
    fn random_topologies() {
        for seed in 0..10 {
            assert_euler(&drain_topology::chiplet::random_connected(20, 3.0, seed));
        }
    }

    #[test]
    fn disconnected_fails() {
        let t = Topology::from_edges("dis", 4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(hierholzer_circuit(&t), Err(DrainPathError::Disconnected));
    }
}
