//! Hawick–James-style circuit search over the channel-dependency graph.
//!
//! The paper (§III-B) builds on the elementary-circuit enumeration of
//! Hawick and James — a recursive tree search with vertex blocking, in the
//! family of Johnson's algorithm — "augmented to terminate early as soon as
//! a single cycle is found that covers all links".
//!
//! A cycle in the dependency graph covering every link is a Hamiltonian
//! cycle of that graph, so a naive enumeration order can backtrack
//! exponentially. Our early-terminating search therefore orders successors
//! with **Fleury's bridge rule** on the remaining-unvisited-link multigraph:
//! prefer moves that keep the remaining links reachable. With that ordering
//! the first root-to-leaf branch of the recursive search already yields a
//! covering cycle on every Eulerian input, while the search remains a
//! faithful backtracking enumeration (it would still explore alternatives
//! if a prefix dead-ended).
//!
//! [`enumerate_circuits`] additionally exposes a bounded version of the
//! plain Hawick–James enumeration (no covering requirement) that tests use
//! on small graphs to cross-check circuit counts.

use drain_topology::{depgraph::DependencyGraph, LinkId, Topology};

use crate::DrainPathError;

/// Finds a single elementary cycle in the dependency graph of `topo` that
/// covers every unidirectional link, terminating as soon as one is found.
///
/// # Errors
///
/// [`DrainPathError::NoLinks`] / [`DrainPathError::Disconnected`] for
/// degenerate inputs, [`DrainPathError::SearchExhausted`] if the bounded
/// backtracking budget runs out (not observed for valid inputs thanks to
/// the bridge-avoidance ordering).
pub fn find_covering_cycle(topo: &Topology) -> Result<Vec<LinkId>, DrainPathError> {
    let m = topo.num_unidirectional_links();
    if m == 0 {
        return Err(DrainPathError::NoLinks);
    }
    if !topo.is_connected() {
        return Err(DrainPathError::Disconnected);
    }
    let mut search = CoveringSearch {
        topo,
        used: vec![false; m],
        path: Vec::with_capacity(m),
        // Generous budget: the bridge heuristic makes backtracking rare, but
        // the search stays a genuine backtracker.
        budget: 64 * (m as u64 + 4) * (m as u64 + 4),
    };
    let start = LinkId(0);
    search.used[start.index()] = true;
    search.path.push(start);
    if search.extend(start, start) {
        Ok(search.path)
    } else if search.budget == 0 {
        Err(DrainPathError::SearchExhausted)
    } else {
        // Connected bidirectional graphs are Eulerian, so this is
        // unreachable in practice; report as exhausted regardless.
        Err(DrainPathError::SearchExhausted)
    }
}

struct CoveringSearch<'a> {
    topo: &'a Topology,
    used: Vec<bool>,
    path: Vec<LinkId>,
    budget: u64,
}

impl CoveringSearch<'_> {
    /// Recursive tree search: extend the elementary path of links; succeed
    /// when all links are used and the last link turns back onto the first.
    fn extend(&mut self, first: LinkId, cur: LinkId) -> bool {
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        if self.path.len() == self.used.len() {
            // All links used; need a closing turn back to `first`.
            return self.topo.link(cur).dst == self.topo.link(first).src;
        }
        let pivot = self.topo.link(cur).dst;
        // Candidate next links: unused out-links of the pivot, ordered by
        // Fleury's rule (non-bridges of the remaining multigraph first).
        let mut candidates: Vec<LinkId> = self
            .topo
            .out_links(pivot)
            .iter()
            .copied()
            .filter(|l| !self.used[l.index()])
            .collect();
        if candidates.len() > 1 {
            let scores: Vec<bool> = candidates
                .iter()
                .map(|&l| self.is_safe_move(l))
                .collect();
            let mut ordered: Vec<LinkId> = Vec::with_capacity(candidates.len());
            for (i, &l) in candidates.iter().enumerate() {
                if scores[i] {
                    ordered.push(l);
                }
            }
            for (i, &l) in candidates.iter().enumerate() {
                if !scores[i] {
                    ordered.push(l);
                }
            }
            candidates = ordered;
        }
        for l in candidates {
            self.used[l.index()] = true;
            self.path.push(l);
            if self.extend(first, l) {
                return true;
            }
            self.path.pop();
            self.used[l.index()] = false;
        }
        false
    }

    /// Fleury-style safety check: after taking `l`, are all remaining unused
    /// links still reachable from `l`'s endpoint through unused links?
    fn is_safe_move(&self, l: LinkId) -> bool {
        let m = self.used.len();
        let remaining = m - self.path.len();
        if remaining <= 1 {
            return true;
        }
        // BFS over nodes through unused links (excluding `l`).
        let start = self.topo.link(l).dst;
        let mut seen_node = vec![false; self.topo.num_nodes()];
        let mut reached_links = 0usize;
        let mut queue = std::collections::VecDeque::new();
        seen_node[start.index()] = true;
        queue.push_back(start);
        let mut counted = vec![false; m];
        counted[l.index()] = true;
        while let Some(v) = queue.pop_front() {
            for &ol in self.topo.out_links(v) {
                if self.used[ol.index()] || ol == l || counted[ol.index()] {
                    continue;
                }
                counted[ol.index()] = true;
                reached_links += 1;
                let d = self.topo.link(ol).dst;
                if !seen_node[d.index()] {
                    seen_node[d.index()] = true;
                    queue.push_back(d);
                }
            }
            // Also traverse unused in-links backwards: reachability for
            // Eulerian purposes is over the underlying undirected structure.
            for &il in self.topo.in_links(v) {
                if self.used[il.index()] || il == l {
                    continue;
                }
                if !counted[il.index()] {
                    counted[il.index()] = true;
                    reached_links += 1;
                }
                let s = self.topo.link(il).src;
                if !seen_node[s.index()] {
                    seen_node[s.index()] = true;
                    queue.push_back(s);
                }
            }
        }
        reached_links == remaining - 1
    }
}

/// Enumerates elementary circuits of the dependency graph (each circuit is
/// returned in canonical rotation: smallest link id first), stopping at
/// `max_circuits` circuits or `max_len` links per circuit.
///
/// This is the bounded form of the Hawick–James enumeration used for
/// cross-checks on small graphs; it is exponential in general — do not call
/// it on large topologies with large bounds.
pub fn enumerate_circuits(
    topo: &Topology,
    max_circuits: usize,
    max_len: usize,
) -> Vec<Vec<LinkId>> {
    let dep = DependencyGraph::new(topo);
    let m = topo.num_unidirectional_links();
    let mut results = Vec::new();
    let mut on_path = vec![false; m];
    let mut path = Vec::new();
    // Johnson/Hawick–James style: only circuits whose smallest link is the
    // root are emitted at that root, so each circuit is found once.
    for root in 0..m as u32 {
        if results.len() >= max_circuits {
            break;
        }
        let root = LinkId(root);
        path.push(root);
        on_path[root.index()] = true;
        dfs_circuits(
            &dep,
            root,
            root,
            &mut path,
            &mut on_path,
            &mut results,
            max_circuits,
            max_len,
        );
        on_path[root.index()] = false;
        path.pop();
    }
    results
}

#[allow(clippy::too_many_arguments)]
fn dfs_circuits(
    dep: &DependencyGraph,
    root: LinkId,
    cur: LinkId,
    path: &mut Vec<LinkId>,
    on_path: &mut [bool],
    results: &mut Vec<Vec<LinkId>>,
    max_circuits: usize,
    max_len: usize,
) {
    if results.len() >= max_circuits {
        return;
    }
    for &next in dep.successors(cur) {
        if results.len() >= max_circuits {
            return;
        }
        if next == root {
            results.push(path.clone());
            continue;
        }
        // Canonicality: only links greater than the root may appear.
        if next.0 < root.0 || on_path[next.index()] || path.len() >= max_len {
            continue;
        }
        on_path[next.index()] = true;
        path.push(next);
        dfs_circuits(dep, root, next, path, on_path, results, max_circuits, max_len);
        path.pop();
        on_path[next.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_topology::faults::FaultInjector;

    #[test]
    fn covering_cycle_on_meshes() {
        for (w, h) in [(2, 2), (3, 3), (4, 4), (8, 8)] {
            let t = Topology::mesh(w, h);
            let c = find_covering_cycle(&t).unwrap();
            assert_eq!(c.len(), t.num_unidirectional_links());
        }
    }

    #[test]
    fn covering_cycle_on_faulty_mesh() {
        for seed in 0..5 {
            let t = FaultInjector::new(seed)
                .remove_links(&Topology::mesh(6, 6), 8)
                .unwrap();
            let c = find_covering_cycle(&t).unwrap();
            assert_eq!(c.len(), t.num_unidirectional_links());
            let dep = DependencyGraph::new(&t);
            assert!(dep.is_closed_walk(&c));
        }
    }

    #[test]
    fn matches_hierholzer_coverage() {
        let t = Topology::mesh(5, 5);
        let hj = find_covering_cycle(&t).unwrap();
        let eu = crate::euler::hierholzer_circuit(&t).unwrap();
        let mut a: Vec<u32> = hj.iter().map(|l| l.0).collect();
        let mut b: Vec<u32> = eu.iter().map(|l| l.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "both algorithms must cover the same link set");
    }

    #[test]
    fn enumerate_small_graph_circuits() {
        // Two nodes, one bidirectional link: the only elementary circuits in
        // the dependency graph are the 1-hop U-turn pairs and the 2-cycle.
        let t = Topology::from_edges("pair", 2, &[(0, 1)]).unwrap();
        let circuits = enumerate_circuits(&t, 100, 10);
        // Circuits: [l0, l1] (the covering one) plus... l0 -> l1 is a turn,
        // l1 -> l0 is a turn, so [l0, l1] is the only elementary circuit
        // through both; no self-loop turns exist.
        assert_eq!(circuits.len(), 1);
        assert_eq!(circuits[0].len(), 2);
    }

    #[test]
    fn enumerate_respects_bounds() {
        let t = Topology::mesh(3, 3);
        let circuits = enumerate_circuits(&t, 50, 6);
        assert!(circuits.len() <= 50);
        assert!(circuits.iter().all(|c| c.len() <= 6));
        // Every returned circuit is a genuine closed walk.
        let dep = DependencyGraph::new(&t);
        for c in &circuits {
            assert!(dep.is_closed_walk(c));
        }
    }

    #[test]
    fn enumeration_finds_covering_cycle_on_tiny_graph() {
        // On a 3-ring (6 unidirectional links), ask for long circuits and
        // check at least one covers all links — cross-validating the
        // covering search.
        let t = Topology::ring(3);
        let m = t.num_unidirectional_links();
        let circuits = enumerate_circuits(&t, 100_000, m);
        assert!(circuits.iter().any(|c| c.len() == m));
        let cover = find_covering_cycle(&t).unwrap();
        assert_eq!(cover.len(), m);
    }
}
